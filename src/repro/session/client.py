"""The client half of the wire protocol: a remote ``Session`` look-alike.

:class:`RemoteSession` exposes the same ``execute(sql) -> Result`` /
``query(sql)`` surface as an embedded session, so the SQL CLI
(:class:`repro.baselines.sql_cli.SqlCli`) and the forms runtime can run
against a server without knowing: ``SqlCli(RemoteSession(...))`` works
as-is.

Error frames are rebuilt into the *same exception classes* the engine
raises (looked up by name in :mod:`repro.errors`), retryable flag and
all; a busy server (admission control) is retried at connect time with
jittered backoff, mirroring :meth:`Session.execute`'s policy.
"""

from __future__ import annotations

import random
import socket
import time
from typing import Any, Dict, List, Optional

import repro.errors as errors_module
from repro.errors import SessionError, WowError
from repro.relational.database import Result
from repro.session.server import recv_frame, send_frame


def rebuild_error(reply: Dict[str, Any]) -> WowError:
    """An exception instance equivalent to the server's error frame."""
    cls = getattr(errors_module, str(reply.get("error_type", "")), None)
    if not (isinstance(cls, type) and issubclass(cls, WowError)):
        cls = SessionError
    return cls(str(reply.get("error", "server error")))


class RemoteSession:
    """One connection to a :class:`~repro.session.server.DatabaseServer`."""

    def __init__(
        self,
        host: str,
        port: int,
        user: str = "dba",
        connect_retries: int = 5,
        backoff_base: float = 0.01,
        backoff_cap: float = 0.25,
        seed: Optional[int] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.user = user
        self.connect_retries = connect_retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.session_id: Optional[int] = None
        self._rng = random.Random(seed)
        self._sleep = time.sleep  # injectable for deterministic tests
        self._sock: Optional[socket.socket] = None
        self._connect()

    def _connect(self) -> None:
        attempt = 0
        while True:
            sock = socket.create_connection((self.host, self.port))
            try:
                send_frame(sock, {"op": "hello", "user": self.user})
                reply = recv_frame(sock)
            except (OSError, ValueError):
                sock.close()
                raise
            if reply is not None and reply.get("ok"):
                self._sock = sock
                self.session_id = reply.get("session")
                return
            sock.close()
            if reply is None:
                raise SessionError("server closed the connection at hello")
            if not reply.get("retryable") or attempt >= self.connect_retries:
                raise rebuild_error(reply)
            attempt += 1
            span = min(
                self.backoff_cap, self.backoff_base * (2 ** (attempt - 1))
            )
            self._sleep(span * (0.5 + 0.5 * self._rng.random()))

    def _roundtrip(self, request: Dict[str, Any]) -> Dict[str, Any]:
        if self._sock is None:
            raise SessionError("remote session is closed")
        send_frame(self._sock, request)
        reply = recv_frame(self._sock)
        if reply is None:
            raise SessionError("server closed the connection")
        return reply

    def execute(self, sql: str) -> Result:
        """Run one statement on the server; errors re-raise as at home."""
        reply = self._roundtrip({"op": "execute", "sql": sql})
        if not reply.get("ok"):
            raise rebuild_error(reply)
        return Result(
            columns=list(reply.get("columns") or []),
            rows=[tuple(row) for row in reply.get("rows") or []],
            rowcount=int(reply.get("rowcount") or 0),
            plan=reply.get("plan"),
        )

    def query(self, sql: str) -> List[Any]:
        return self.execute(sql).rows

    def metrics(self) -> Dict[str, Any]:
        """The server's ``metrics_snapshot()["sessions"]`` section."""
        reply = self._roundtrip({"op": "metrics"})
        if not reply.get("ok"):
            raise rebuild_error(reply)
        return reply.get("metrics", {})

    def ping(self) -> bool:
        return bool(self._roundtrip({"op": "ping"}).get("ok"))

    def close(self) -> None:
        if self._sock is None:
            return
        try:
            send_frame(self._sock, {"op": "close"})
        except OSError:
            pass
        self._sock.close()
        self._sock = None

    def __enter__(self) -> "RemoteSession":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
