"""Sessions & concurrency control: many windows, one database.

The paper's premise is many windows open on the same database at once.
This package makes that safe: a :class:`SessionManager` gives every
connection its own transaction state over one shared
:class:`~repro.relational.database.Database`, a table-granularity
:class:`LockManager` serialises conflicting transactions (with deadlock
detection and lock timeouts), and a :class:`DatabaseServer` speaks a
length-prefixed JSON protocol so the SQL CLI and the forms runtime become
two clients of the same session API.

See ``docs/INTERNALS.md`` ("Sessions & concurrency control") for the
locking protocol and the wire format.
"""

from repro.session.client import RemoteSession
from repro.session.locks import CATALOG_RESOURCE, EXCLUSIVE, SHARED, LockManager
from repro.session.manager import Session, SessionConfig, SessionManager
from repro.session.server import DatabaseServer

__all__ = [
    "CATALOG_RESOURCE",
    "DatabaseServer",
    "EXCLUSIVE",
    "LockManager",
    "RemoteSession",
    "SHARED",
    "Session",
    "SessionConfig",
    "SessionManager",
]
