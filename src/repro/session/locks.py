"""Table-granularity two-phase locking with deadlock detection.

Sessions lock whole tables (the 1983-appropriate granularity: the paper's
engine had no row locks either) in one of two modes — SHARED for readers,
EXCLUSIVE for writers — and hold every lock to transaction end (strict
2PL), so committed effects are never built on rows another transaction can
still roll back from under them.

All lock state lives behind one mutex + condition.  That is deliberate:
lock traffic is a handful of acquisitions per *statement* while the engine
does row work under its own latch, so a single condition keeps the
wait-for bookkeeping trivially consistent at no measurable cost.

Blocked requests wait on the condition with a deadline
(``lock_timeout``).  Every pass through the wait loop rebuilds the
waiter's wait-for edges (it waits for exactly the current conflicting
holders) and searches for a cycle through itself; when one is found the
**youngest** member (largest session id — ids are monotonic, so the
largest id has done the least work to throw away) is doomed and the
condition is broadcast.  Cycle members are all waiters by construction
(edges run waiter → holder), so the victim is parked in this very wait
loop and aborts itself with a retryable
:class:`~repro.errors.SerializationError` on wake.

Known simplification: grants consider only current *holders*, not queued
waiters, so a steady stream of readers can starve a writer.  The session
layer's lock timeout + client retry bounds the damage; a fair queue is
future work.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import LockTimeoutError, SerializationError

#: lock modes
SHARED = "S"
EXCLUSIVE = "X"

#: the catalog pseudo-resource: every statement that reads schema takes it
#: SHARED, DDL takes it EXCLUSIVE — so schema changes serialise against
#: every open transaction without per-table bookkeeping
CATALOG_RESOURCE = "__catalog__"


class LockManager:
    """S/X table locks: blocking grants, upgrades, timeouts, deadlocks."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        #: resource -> {session_id: mode held}
        self._holders: Dict[str, Dict[int, str]] = {}
        #: session_id -> (resource, mode) it is currently blocked on
        self._waiting: Dict[int, Tuple[str, str]] = {}
        #: deadlock victims; each aborts itself on its next wait-loop pass
        self._doomed: Set[int] = set()
        #: lifetime counters, surfaced via SessionManager.metrics()
        self.stats: Dict[str, int] = {
            "acquired": 0,
            "upgrades": 0,
            "waits": 0,
            "timeouts": 0,
            "deadlocks": 0,
        }

    # -- grant rules -------------------------------------------------------

    def _blockers(self, session_id: int, resource: str, mode: str) -> Set[int]:
        """Current holders of *resource* whose grant conflicts with *mode*."""
        blockers: Set[int] = set()
        for holder, held in self._holders.get(resource, {}).items():
            if holder == session_id:
                continue
            if mode == EXCLUSIVE or held == EXCLUSIVE:
                blockers.add(holder)
        return blockers

    def _grant(self, session_id: int, resource: str, mode: str) -> None:
        held = self._holders.setdefault(resource, {})
        previous = held.get(session_id)
        if previous == SHARED and mode == EXCLUSIVE:
            self.stats["upgrades"] += 1
        held[session_id] = mode
        self.stats["acquired"] += 1

    # -- deadlock detection ------------------------------------------------

    def _wait_edges(self, session_id: int) -> Set[int]:
        request = self._waiting.get(session_id)
        if request is None:
            return set()
        return self._blockers(session_id, request[0], request[1])

    def _cycle_through(self, start: int) -> Optional[Set[int]]:
        """Members of a wait-for cycle through *start*, or None."""
        stack: List[Tuple[int, Tuple[int, ...]]] = [(start, (start,))]
        seen = {start}
        while stack:
            node, path = stack.pop()
            for blocker in self._wait_edges(node):
                if blocker == start:
                    return set(path)
                if blocker not in seen:
                    seen.add(blocker)
                    stack.append((blocker, path + (blocker,)))
        return None

    def _resolve_deadlock(self, start: int) -> None:
        """Doom the youngest member of any cycle through *start*."""
        cycle = self._cycle_through(start)
        if cycle is None or cycle & self._doomed:
            # no cycle, or a victim is already aborting this very cycle
            return
        victim = max(cycle)  # ids are monotonic: largest = youngest
        self.stats["deadlocks"] += 1
        self._doomed.add(victim)
        self._cond.notify_all()

    # -- public API --------------------------------------------------------

    def begin_lockset(self, session_id: int) -> None:
        """Mark the start of one statement's lockset acquisition run.

        A no-op here — the hook exists so the opt-in dynamic lock checker
        (:mod:`repro.analysis.concurrency.dynlock`) can reset its
        per-thread ordering state at the same boundary the manager uses:
        within one run, resources must arrive catalog-first then sorted.
        """

    def acquire(
        self, session_id: int, resource: str, mode: str, timeout: float
    ) -> None:
        """Grant ``(resource, mode)`` to *session_id*, waiting if needed.

        Raises :class:`SerializationError` (retryable) when the wait
        deadlocked and this session was chosen as the victim, or
        :class:`LockTimeoutError` (retryable) after *timeout* seconds.
        Either way the caller must abort the whole transaction — its
        already-granted locks stay held until :meth:`release_all`.
        """
        with self._cond:
            held = self._holders.get(resource, {}).get(session_id)
            if held == EXCLUSIVE or held == mode:
                return  # already sufficient
            if not self._blockers(session_id, resource, mode):
                self._grant(session_id, resource, mode)
                return
            self.stats["waits"] += 1
            self._waiting[session_id] = (resource, mode)
            deadline = time.monotonic() + timeout
            try:
                while True:
                    self._resolve_deadlock(session_id)
                    if session_id in self._doomed:
                        self._doomed.discard(session_id)
                        raise SerializationError(
                            f"deadlock detected; session {session_id} "
                            f"(youngest) aborted waiting for {mode} on "
                            f"{resource!r} — retry the transaction"
                        )
                    if not self._blockers(session_id, resource, mode):
                        self._grant(session_id, resource, mode)
                        return
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        self.stats["timeouts"] += 1
                        raise LockTimeoutError(
                            f"session {session_id} timed out after "
                            f"{timeout:.3f}s waiting for {mode} on "
                            f"{resource!r} — retry the transaction"
                        )
                    self._cond.wait(remaining)
            finally:
                self._waiting.pop(session_id, None)

    def release_all(self, session_id: int) -> None:
        """Drop every lock *session_id* holds (the 2PL release point)."""
        with self._cond:
            released = False
            for resource in list(self._holders):
                if self._holders[resource].pop(session_id, None) is not None:
                    released = True
                    if not self._holders[resource]:
                        del self._holders[resource]
            self._doomed.discard(session_id)
            if released:
                self._cond.notify_all()

    def held(self, session_id: int) -> List[Tuple[str, str]]:
        """The (resource, mode) pairs *session_id* holds, sorted."""
        with self._cond:
            return sorted(
                (resource, modes[session_id])
                for resource, modes in self._holders.items()
                if session_id in modes
            )

    def snapshot(self) -> Dict[str, List[Tuple[int, str]]]:
        """resource -> [(session, mode)] for debugging and telemetry."""
        with self._cond:
            return {
                resource: sorted(modes.items())
                for resource, modes in self._holders.items()
            }
