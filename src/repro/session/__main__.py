"""Serve a database over the wire.

    PYTHONPATH=src python -m repro.session --path demo_db --port 7712

Then, from any other process::

    from repro.session import RemoteSession
    s = RemoteSession("127.0.0.1", 7712)
    s.query("SELECT * FROM parts")

See docs/TUTORIAL.md §11 for the full quick-start.
"""

from __future__ import annotations

import argparse
import time
from typing import Optional, Sequence

from repro.relational.database import Database
from repro.session.manager import SessionConfig
from repro.session.server import DatabaseServer


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.session",
        description="Serve a WoW database over length-prefixed JSON frames.",
    )
    parser.add_argument(
        "--path", default=None,
        help="database directory (omit for a fresh in-memory database)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=7712,
        help="TCP port (0 picks an ephemeral one)",
    )
    parser.add_argument(
        "--max-sessions", type=int, default=8,
        help="admission-control cap (excess connects get a busy error)",
    )
    parser.add_argument(
        "--lock-timeout", type=float, default=5.0,
        help="seconds a lock wait may block before aborting",
    )
    parser.add_argument(
        "--statement-max-rows", type=int, default=None,
        help="per-statement row budget (statement timeout); unlimited if unset",
    )
    args = parser.parse_args(argv)

    db = Database(args.path)
    config = SessionConfig(
        max_sessions=args.max_sessions,
        lock_timeout=args.lock_timeout,
        statement_max_rows=args.statement_max_rows,
    )
    server = DatabaseServer(db, host=args.host, port=args.port, config=config)
    server.start()
    host, port = server.address
    print(f"serving {args.path or '<memory>'} on {host}:{port} "
          f"(max {args.max_sessions} sessions)")
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        server.stop()
        db.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
