"""A socket server exposing one database to many clients.

ROADMAP item 1: the SQL CLI and the forms runtime become two clients of
the same session API.  The protocol is deliberately tiny — **length-
prefixed JSON frames**:

    +----------------+----------------------------------+
    | 4 bytes        | UTF-8 JSON body                  |
    | big-endian u32 | (exactly that many bytes)        |
    +----------------+----------------------------------+

Requests: ``{"op": "hello", "user": "dba"}`` (first frame, admission),
``{"op": "execute", "sql": "..."}``, ``{"op": "metrics"}``,
``{"op": "ping"}``, ``{"op": "close"}``.

Responses: ``{"ok": true, ...}`` or
``{"ok": false, "error": str, "error_type": str, "retryable": bool}`` —
the ``retryable`` flag mirrors :class:`~repro.errors.RetryableError`, so
a remote client can apply the same retry policy as an embedded one.

One thread and one :class:`~repro.session.manager.Session` per
connection; admission control happens at the hello frame (a refused
connection receives a retryable ``BusyError`` frame, never an unbounded
queue slot).
"""

from __future__ import annotations

import json
import socket
import struct
import threading
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import WowError
from repro.session.manager import Session, SessionConfig, SessionManager

#: frame header: payload length as a big-endian unsigned 32-bit int
FRAME_HEADER = struct.Struct(">I")
#: refuse absurd frames before allocating for them
MAX_FRAME_BYTES = 16 * 1024 * 1024


def send_frame(sock: socket.socket, payload: Dict[str, Any]) -> None:
    """Serialise *payload* and write one length-prefixed frame."""
    body = json.dumps(payload, default=str).encode("utf-8")
    sock.sendall(FRAME_HEADER.pack(len(body)) + body)


def recv_frame(sock: socket.socket) -> Optional[Dict[str, Any]]:
    """Read one frame; None on clean EOF.  Raises on torn/oversized data."""
    header = _recv_exact(sock, FRAME_HEADER.size, allow_eof=True)
    if header is None:
        return None
    (length,) = FRAME_HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ValueError(f"frame of {length} bytes exceeds the protocol cap")
    body = _recv_exact(sock, length, allow_eof=False)
    return json.loads(body.decode("utf-8"))


def _recv_exact(
    sock: socket.socket, count: int, allow_eof: bool
) -> Optional[bytes]:
    chunks: List[bytes] = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if allow_eof and not chunks:
                return None
            raise ConnectionError(
                f"connection closed mid-frame ({count - remaining}/{count} "
                f"bytes read)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def error_frame(exc: BaseException) -> Dict[str, Any]:
    return {
        "ok": False,
        "error": str(exc),
        "error_type": type(exc).__name__,
        "retryable": bool(getattr(exc, "retryable", False)),
    }


class DatabaseServer:
    """Thread-per-connection server over one SessionManager."""

    def __init__(
        self,
        db: Any,
        host: str = "127.0.0.1",
        port: int = 0,
        config: Optional[SessionConfig] = None,
        manager: Optional[SessionManager] = None,
    ) -> None:
        self.db = db
        self.manager = manager if manager is not None else SessionManager(
            db, config
        )
        self._listener = socket.create_server((host, port))
        #: the bound (host, port) — port 0 requests an ephemeral one
        self.address: Tuple[str, int] = self._listener.getsockname()[:2]
        self._accept_thread: Optional[threading.Thread] = None
        self._workers: List[threading.Thread] = []
        self._running = False

    def start(self) -> "DatabaseServer":
        self._running = True
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="wow-server-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        """Stop accepting, close live sessions, join worker threads."""
        self._running = False
        try:
            self._listener.close()
        except OSError:
            pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5)
        for worker in self._workers:
            worker.join(timeout=5)
        self.manager.close()

    def __enter__(self) -> "DatabaseServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # -- connection handling -----------------------------------------------

    def _accept_loop(self) -> None:
        while self._running:
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                break  # listener closed by stop()
            worker = threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                name="wow-server-conn",
                daemon=True,
            )
            worker.start()
            self._workers.append(worker)

    def _serve_connection(self, conn: socket.socket) -> None:
        with conn:
            try:
                hello = recv_frame(conn)
            except (ConnectionError, ValueError, json.JSONDecodeError):
                return
            if hello is None or hello.get("op") != "hello":
                try:
                    send_frame(
                        conn,
                        {
                            "ok": False,
                            "error": "first frame must be a hello",
                            "error_type": "SessionError",
                            "retryable": False,
                        },
                    )
                except OSError:
                    pass
                return
            try:
                session = self.manager.connect(
                    user=str(hello.get("user", "dba"))
                )
            except WowError as exc:  # BusyError: retryable refusal
                try:
                    send_frame(conn, error_frame(exc))
                except OSError:
                    pass
                return
            try:
                send_frame(conn, {"ok": True, "session": session.id})
                while True:
                    try:
                        request = recv_frame(conn)
                    except (ConnectionError, ValueError,
                            json.JSONDecodeError):
                        break
                    if request is None or request.get("op") == "close":
                        break
                    try:
                        send_frame(conn, self._handle(session, request))
                    except OSError:
                        break
            finally:
                session.close()

    def _handle(
        self, session: Session, request: Dict[str, Any]
    ) -> Dict[str, Any]:
        op = request.get("op")
        try:
            if op == "execute":
                result = session.execute(str(request.get("sql", "")))
                return {
                    "ok": True,
                    "columns": list(result.columns),
                    "rows": [list(row) for row in result.rows],
                    "rowcount": result.rowcount,
                    "plan": result.plan,
                }
            if op == "metrics":
                return {
                    "ok": True,
                    "metrics": self.db.metrics_snapshot()["sessions"],
                }
            if op == "ping":
                return {"ok": True, "session": session.id}
            return {
                "ok": False,
                "error": f"unknown op {op!r}",
                "error_type": "SessionError",
                "retryable": False,
            }
        except WowError as exc:
            # Engine/session errors are protocol answers; anything else
            # (a bug, an injected crash) tears the connection down.
            return error_frame(exc)
