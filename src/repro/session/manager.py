"""The session manager: per-connection transaction state, one engine.

A :class:`Session` is what the paper calls a *user* at a terminal: its own
open transaction (undo log), savepoints, user identity, and statement
budget — all multiplexed over one shared
:class:`~repro.relational.database.Database`.

Concurrency is two-level:

* the database's **engine latch** (``Database._latch``) serialises the
  row-level work of individual statements, so the engine's internal
  structures never see two mutators at once;
* the **lock manager** (:mod:`repro.session.locks`) serialises whole
  *transactions* at table granularity under strict 2PL, so interleaved
  transactions are conflict-serialisable.

The golden rule tying the two together: **never block on a table lock
while holding the latch**.  Every statement computes its lockset first
(briefly under the latch, to read the catalog consistently), releases the
latch, acquires its locks — possibly waiting — and only then takes the
latch to execute.  A DDL that slips in between bumps the catalog
generation, which the execute step detects and handles by recomputing the
lockset (holding the extra locks is safe under 2PL, merely conservative).

Retry policy (:meth:`Session.execute`): a retryable failure
(:class:`SerializationError`, :class:`LockTimeoutError`) aborts the whole
transaction server-side.  For a standalone autocommit statement the
session retries it transparently with jittered exponential backoff; for a
statement inside an explicit ``BEGIN`` the error propagates, because only
the client knows the rest of the transaction to replay.
"""

from __future__ import annotations

import contextlib
import random
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Set, Tuple

from repro.errors import (
    BusyError,
    LockTimeoutError,
    SerializationError,
    SessionError,
    StatementTimeoutError,
    WowError,
)
from repro.relational.catalog import SYSTEM_TABLE_NAMES
from repro.session.locks import (
    CATALOG_RESOURCE,
    EXCLUSIVE,
    SHARED,
    LockManager,
)
from repro.sql import ast_nodes as A
from repro.sql.parser import SubqueryExpr, parse_statement


@dataclass
class SessionConfig:
    """Tunables for a :class:`SessionManager` (defaults documented in
    INTERNALS §"Sessions & concurrency control")."""

    #: admission control: connect() beyond this raises retryable BusyError
    max_sessions: int = 8
    #: seconds a lock wait may block before LockTimeoutError
    lock_timeout: float = 5.0
    #: per-statement row budget (None = unlimited); see Database._RowBudget
    statement_max_rows: Optional[int] = None
    #: automatic retries of a retryable *autocommit* statement
    max_retries: int = 4
    #: exponential backoff: base * 2^(attempt-1), capped, jittered 50-100%
    backoff_base: float = 0.005
    backoff_cap: float = 0.25
    #: seed for the backoff jitter (tests pin it for determinism)
    retry_seed: Optional[int] = None


class Session:
    """One connection's transaction state plus the retry wrapper."""

    def __init__(
        self,
        manager: "SessionManager",
        session_id: int,
        user: str,
        txn: Any,
    ) -> None:
        self.manager = manager
        self.id = session_id
        self.user = user
        #: this session's TransactionManager (created by
        #: Database.new_txn_manager, WAL + degradation hooks pre-wired)
        self.txn = txn
        #: open savepoints, swapped into Database._savepoints per statement
        self.savepoints: Dict[str, Tuple[int, int]] = {}
        self.closed = False
        self.statement_max_rows = manager.config.statement_max_rows
        self.stats: Dict[str, int] = {
            "statements": 0, "retries": 0, "aborts": 0
        }
        seed = manager.config.retry_seed
        self._rng = random.Random(
            None if seed is None else seed * 1_000_003 + session_id
        )
        #: injectable for tests (deterministic chaos never really sleeps)
        self._sleep = time.sleep

    @property
    def in_txn(self) -> bool:
        return self.txn.active

    def execute(self, sql: str) -> Any:
        """Execute *sql*, transparently retrying retryable autocommit
        failures with jittered exponential backoff."""
        attempt = 0
        while True:
            was_in_txn = self.txn.active
            try:
                return self.manager.execute(self, sql)
            except WowError as exc:
                if not getattr(exc, "retryable", False):
                    raise
                if was_in_txn:
                    # The whole transaction was aborted; replaying just
                    # this statement would silently drop the earlier ones.
                    raise
                if attempt >= self.manager.config.max_retries:
                    raise
                attempt += 1
                self.stats["retries"] += 1
                self.manager.stats["retries"] += 1
                self._sleep(self._backoff(attempt))

    def query(self, sql: str) -> List[Any]:
        return self.execute(sql).rows

    def _backoff(self, attempt: int) -> float:
        config = self.manager.config
        span = min(
            config.backoff_cap, config.backoff_base * (2 ** (attempt - 1))
        )
        return span * (0.5 + 0.5 * self._rng.random())

    def close(self) -> None:
        self.manager.close_session(self)

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class SessionManager:
    """Owns the sessions, the lock manager, and the statement pipeline."""

    def __init__(
        self, db: Any, config: Optional[SessionConfig] = None
    ) -> None:
        self.db = db
        self.config = config or SessionConfig()
        # Deferred import: repro.analysis pulls in planverify (which needs
        # the relational package); by __init__ time every module is loaded.
        from repro.analysis.concurrency import dynlock

        self.locks = dynlock.maybe_checked_lock_manager(LockManager())
        #: guards _sessions / _next_id / the lockset cache
        self._mutex = threading.Lock()
        self._sessions: Dict[int, Session] = {}
        self._next_id = 1
        #: (normalized sql, catalog generation) -> lockset; DDL bumps the
        #: generation so stale entries are never consulted
        self._lockset_cache: Dict[Tuple[str, int], Tuple[Tuple[str, str], ...]] = {}
        self.stats: Dict[str, int] = {
            "connects": 0,
            "disconnects": 0,
            "busy_rejections": 0,
            "statements": 0,
            "retries": 0,
            "aborts": 0,
            "statement_timeouts": 0,
        }
        db.session_manager = self

    # -- lifecycle ---------------------------------------------------------

    def connect(self, user: str = "dba") -> Session:
        """Admit a new session, or refuse with a retryable BusyError."""
        with self._mutex:
            if len(self._sessions) >= self.config.max_sessions:
                self.stats["busy_rejections"] += 1
                raise BusyError(
                    f"server at capacity "
                    f"({self.config.max_sessions} sessions); retry later"
                )
            session_id = self._next_id
            self._next_id += 1
        with self.db._latch:
            txn = self.db.new_txn_manager()
        session = Session(self, session_id, user.lower(), txn)
        with self._mutex:
            self._sessions[session_id] = session
            self.stats["connects"] += 1
        return session

    def close_session(self, session: Session) -> None:
        """Roll back open work, release locks, retire the txn manager."""
        if session.closed:
            return
        session.closed = True
        try:
            if session.txn.active:
                self._abort(session)
        finally:
            self.locks.release_all(session.id)
            with self.db._latch:
                if self.db.wal is not None:
                    self.db.wal.drop_scope(session.id)
                self.db.retire_txn_manager(session.txn)
            with self._mutex:
                self._sessions.pop(session.id, None)
                self.stats["disconnects"] += 1

    def close(self) -> None:
        """Close every live session (server shutdown path)."""
        with self._mutex:
            sessions = list(self._sessions.values())
        for session in sessions:
            self.close_session(session)

    def any_txn_dirty(self) -> bool:
        """True when some session transaction holds uncommitted changes —
        the checkpoint guard (flushing then would break no-steal)."""
        with self._mutex:
            sessions = list(self._sessions.values())
        return any(s.txn.active and s.txn.mark() > 0 for s in sessions)

    # -- the statement pipeline --------------------------------------------

    def execute(self, session: Session, sql: str) -> Any:
        """Lockset → acquire (2PL) → run under the engine latch."""
        if session.closed:
            raise SessionError(f"session {session.id} is closed")
        self.stats["statements"] += 1
        session.stats["statements"] += 1
        # A DDL between lockset computation and execution changes what the
        # statement must lock; the generation check catches it and loops.
        for _attempt in range(10):
            lockset, generation = self._lockset(sql)
            self._acquire_locks(session, lockset)
            with self.db._latch:
                if self.db.catalog.generation == generation:
                    try:
                        return self._run_statement(session, sql)
                    finally:
                        if not session.txn.active:
                            # 2PL release point: the statement autocommitted,
                            # COMMITted, or ROLLBACKed (or was aborted).
                            self.locks.release_all(session.id)
            if not session.txn.active:
                self.locks.release_all(session.id)
        raise SessionError(
            "statement lockset would not stabilise (concurrent DDL storm)"
        )

    def _acquire_locks(
        self, session: Session, lockset: Tuple[Tuple[str, str], ...]
    ) -> None:
        try:
            self.locks.begin_lockset(session.id)
            for resource, mode in lockset:
                self.locks.acquire(
                    session.id, resource, mode, self.config.lock_timeout
                )
        except (SerializationError, LockTimeoutError):
            # The transaction dies wholesale: roll it back and release its
            # locks so the survivors can proceed; the error stays
            # retryable because nothing of it remains.
            self._abort(session)
            raise

    def _run_statement(self, session: Session, sql: str) -> Any:
        with self._session_context(session):
            try:
                return self.db._execute_locked(sql)
            except StatementTimeoutError:
                self.stats["statement_timeouts"] += 1
                raise

    def _abort(self, session: Session) -> None:
        """Roll back the session's transaction and release its locks."""
        self.stats["aborts"] += 1
        session.stats["aborts"] += 1
        with self.db._latch:
            with self._session_context(session):
                if session.txn.active:
                    session.txn.rollback()
                session.savepoints.clear()
        self.locks.release_all(session.id)

    @contextlib.contextmanager
    def _session_context(self, session: Session) -> Iterator[None]:
        """Swap this session's state into the engine (latch must be held).

        The database's txn manager, savepoints, user, session id, row
        budget, and WAL scope all become the session's for the duration —
        so every existing engine path (undo logging, WAL grouping,
        telemetry capture) runs against the right transaction without
        knowing sessions exist.
        """
        db = self.db
        prev = (
            db.txn,
            db._savepoints,
            db.current_user,
            db._current_session_id,
            db.statement_max_rows,
        )
        db.txn = session.txn
        db._savepoints = session.savepoints
        db.current_user = session.user
        db._current_session_id = session.id
        db.statement_max_rows = session.statement_max_rows
        if db.wal is not None:
            db.wal.use_scope(session.id)
        try:
            yield
        finally:
            # ROLLBACK TO SAVEPOINT rebuilds db._savepoints, so capture the
            # (possibly new) dict back before restoring the engine's own.
            session.savepoints = db._savepoints
            (
                db.txn,
                db._savepoints,
                db.current_user,
                db._current_session_id,
                db.statement_max_rows,
            ) = prev
            if db.wal is not None:
                db.wal.use_scope(0)

    # -- lockset derivation ------------------------------------------------

    def _lockset(
        self, sql: str
    ) -> Tuple[Tuple[Tuple[str, str], ...], int]:
        """The (resource, mode) pairs *sql* must lock, plus the catalog
        generation the computation is valid for.

        Runs briefly under the engine latch: view resolution must read a
        consistent catalog, and the latch is never held across a lock
        wait, so this cannot deadlock.  Cached per (sql, generation).
        """
        normalized = " ".join(sql.split())
        with self.db._latch:
            generation = self.db.catalog.generation
            key = (normalized, generation)
            with self._mutex:
                cached = self._lockset_cache.get(key)
            if cached is not None:
                return cached, generation
            statement = parse_statement(sql)
            lockset = self._statement_locks(statement)
            with self._mutex:
                if len(self._lockset_cache) > 512:
                    self._lockset_cache.clear()
                self._lockset_cache[key] = lockset
            return lockset, generation

    def _statement_locks(
        self, statement: A.Statement
    ) -> Tuple[Tuple[str, str], ...]:
        """Table locks for one statement (sorted — deterministic order
        prevents lock-order deadlocks *within* a statement; across
        statements of a transaction, detection takes over)."""
        wanted: Dict[str, str] = {}

        def want(name: str, mode: str) -> None:
            name = name.lower()
            if name in SYSTEM_TABLE_NAMES:
                return  # rebuilt snapshots; never lockable resources
            if self.db.catalog.has_view(name):
                # Lock the base tables a view reads/writes, recursively.
                for base in self._select_sources(
                    self.db.catalog.view(name).query
                ):
                    want(base, mode)
                return
            if wanted.get(name) != EXCLUSIVE:
                wanted[name] = mode

        def want_sources(select: A.Select, mode: str = SHARED) -> None:
            for name in self._select_sources(select):
                want(name, mode)

        if isinstance(
            statement,
            (A.Begin, A.Commit, A.Rollback, A.Savepoint, A.RollbackTo,
             A.ReleaseSavepoint),
        ):
            return ()  # pure transaction control: no resources touched
        if isinstance(statement, A.Select):
            want_sources(statement)
        elif isinstance(statement, A.Union):
            for arm in statement.selects:
                want_sources(arm)
        elif isinstance(statement, A.Explain):
            if statement.analyze:
                want_sources(statement.query)
        elif isinstance(statement, A.Insert):
            want(statement.table, EXCLUSIVE)
            if statement.select is not None:
                want_sources(statement.select)
        elif isinstance(statement, (A.Update, A.Delete)):
            want(statement.table, EXCLUSIVE)
            for name in self._expr_sources(statement.where):
                want(name, SHARED)
        else:
            # DDL / ANALYZE / GRANT / anything else schema-shaped: the
            # exclusive catalog lock serialises it against every open
            # transaction, plus X on the named object's table when known.
            target = (
                getattr(statement, "table", None)
                or getattr(statement, "name", None)
            )
            if isinstance(target, str):
                want(target, EXCLUSIVE)
            wanted[CATALOG_RESOURCE] = EXCLUSIVE
        if CATALOG_RESOURCE not in wanted:
            # Everyone else shares the catalog so DDL cannot shift the
            # schema underneath an open statement or transaction.
            wanted[CATALOG_RESOURCE] = SHARED
        # Catalog pseudo-lock strictly first, then tables ascending.  A
        # plain sorted() almost gives this for free ("__catalog__" sorts
        # before every letter), but a user table like "__a" would slip in
        # front of it — and DDL holding X on the catalog while a reader
        # acquires its tables catalog-last is exactly the inversion the
        # ordering exists to prevent.
        return tuple(sorted(
            wanted.items(), key=lambda kv: (kv[0] != CATALOG_RESOURCE, kv[0])
        ))

    def _select_sources(self, select: A.Select) -> List[str]:
        """Every table/view a SELECT reads (joins + subqueries), lowered."""
        names: List[str] = []
        if select.from_table is not None:
            names.append(select.from_table.name.lower())
        names.extend(join.table.name.lower() for join in select.joins)
        exprs: List[Any] = [select.where, select.having]
        exprs.extend(join.condition for join in select.joins)
        exprs.extend(item.expr for item in select.order_by)
        for item in select.items:
            if item.expr is not None:
                exprs.append(item.expr)
        for expr in exprs:
            names.extend(self._expr_sources(expr))
        return names

    def _expr_sources(self, expr: Any) -> List[str]:
        """Sources referenced by subqueries inside one expression."""
        from repro.relational import expr as E

        if expr is None or not isinstance(expr, E.Expr):
            return []
        names: List[str] = []
        for node in expr.walk():
            if isinstance(node, SubqueryExpr):
                names.extend(self._select_sources(node.select))
        return names

    # -- telemetry ---------------------------------------------------------

    def metrics(self) -> Dict[str, Any]:
        """The ``metrics_snapshot()["sessions"]`` section."""
        with self._mutex:
            active = len(self._sessions)
            in_txn = sum(
                1 for s in self._sessions.values() if s.txn.active
            )
        return {
            "enabled": 1,
            "active": active,
            "in_txn": in_txn,
            "max_sessions": self.config.max_sessions,
            **self.stats,
            **{f"lock_{k}": v for k, v in self.locks.stats.items()},
        }

    def session_rows(self) -> List[Dict[str, Any]]:
        """One row per live session, for the ``_sessions`` system table."""
        with self._mutex:
            sessions = sorted(self._sessions.values(), key=lambda s: s.id)
        rows = []
        for session in sessions:
            rows.append(
                {
                    "id": session.id,
                    "user": session.user,
                    "in_txn": 1 if session.txn.active else 0,
                    "undo_entries": session.txn.mark(),
                    "locks": ",".join(
                        f"{resource}:{mode}"
                        for resource, mode in self.locks.held(session.id)
                    ),
                    "statements": session.stats["statements"],
                    "retries": session.stats["retries"],
                    "aborts": session.stats["aborts"],
                }
            )
        return rows
