"""View machinery: definitions, expansion into plans, and updates through views."""

from repro.views.definition import ViewDefinition
from repro.views.update import UpdatableViewInfo, analyze_updatability

__all__ = ["ViewDefinition", "UpdatableViewInfo", "analyze_updatability"]
