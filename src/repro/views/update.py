"""Updatable-view analysis and DML translation.

The classical (1983-era) updatable subset: a view is updatable iff it is a
**select–project query over a single updatable source** — no joins, no
aggregation, no DISTINCT, no LIMIT — and every output column is a plain
column reference.  Views over views compose: the analysis recurses and
flattens the column mapping and predicates down to the base table.

The result of the analysis, :class:`UpdatableViewInfo`, is everything DML
translation needs:

* ``base`` — the base :class:`~repro.relational.table.Table`;
* ``column_map`` — view column -> base column (names);
* ``predicate`` — the conjunction of every WHERE along the view chain,
  rewritten in terms of base-table columns (or None);
* ``check_option`` — True if *any* view in the chain was created WITH CHECK
  OPTION (the strictest interpretation, matching CASCADED semantics).

Row visibility and the check option share one evaluator: a row *belongs* to
the view iff the predicate evaluates to True on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.errors import CheckOptionError, ViewNotUpdatable
from repro.relational import expr as E
from repro.relational.table import Table
from repro.sql import ast_nodes as A
from repro.views.definition import ViewDefinition

if TYPE_CHECKING:  # imported lazily to avoid a catalog <-> views cycle
    from repro.relational.catalog import Catalog


@dataclass
class UpdatableViewInfo:
    """Flattened description of an updatable view chain."""

    view: ViewDefinition
    base: Table
    column_map: Dict[str, str]  # view column name -> base column name
    predicate: Optional[E.Expr]  # over base columns, unqualified refs
    check_option: bool
    # Lazily-built evaluation state, shared across every row the info
    # touches.  Binding resolves names against the base schema, which is
    # fixed for the lifetime of this info (DDL produces a new analysis).
    _bound_predicate: Optional[E.Expr] = field(
        default=None, init=False, repr=False, compare=False
    )
    _view_positions: Optional[Tuple[int, ...]] = field(
        default=None, init=False, repr=False, compare=False
    )

    def translate_changes(self, changes: Dict[str, Any]) -> Dict[str, Any]:
        """Map a {view column: value} dict to base-table columns."""
        translated = {}
        for name, value in changes.items():
            base_name = self.column_map.get(name.lower())
            if base_name is None:
                raise ViewNotUpdatable(
                    f"view {self.view.name!r} has no updatable column {name!r}"
                )
            translated[base_name] = value
        return translated

    def row_visible(self, base_row: Tuple[Any, ...]) -> bool:
        """True iff *base_row* satisfies the view's (flattened) predicate."""
        if self.predicate is None:
            return True
        if self._bound_predicate is None:
            layout = E.RowLayout.for_table(self.base.name, self.base.schema)
            self._bound_predicate = E.bind(self.predicate, layout)
        return self._bound_predicate.eval(base_row) is True

    def enforce_check_option(self, base_row: Tuple[Any, ...]) -> None:
        """Raise CheckOptionError if *base_row* would escape the view."""
        if self.check_option and not self.row_visible(base_row):
            raise CheckOptionError(
                f"row violates WITH CHECK OPTION of view {self.view.name!r}"
            )

    def predicate_defaults(self) -> Dict[str, Any]:
        """Base-column values implied by equality conjuncts of the predicate.

        For a view ``... WHERE dept_id = 1``, an insert through the view that
        cannot set ``dept_id`` (it is not a view column) defaults it to 1.
        This is the classic forms-over-views auto-fill: without it, WITH
        CHECK OPTION views would reject every insert that omits a predicate
        column.
        """
        defaults: Dict[str, Any] = {}
        for conjunct in E.split_conjuncts(self.predicate):
            hit = E.const_comparison(conjunct)
            if hit is not None and hit[1] == "=":
                column, _op, value = hit
                defaults[column.name] = value
        return defaults

    def view_row(self, base_row: Tuple[Any, ...]) -> Tuple[Any, ...]:
        """Project a base row into the view's column order."""
        if self._view_positions is None:
            self._view_positions = tuple(
                self.base.schema.column_index(self.column_map[col.name])
                for col in self.view.schema.columns
            )
        return tuple(base_row[index] for index in self._view_positions)


def analyze_updatability(view: ViewDefinition, catalog: "Catalog") -> UpdatableViewInfo:
    """Analyse *view* (recursively through views-on-views) or raise.

    Raises :class:`ViewNotUpdatable` with a reason when the view falls
    outside the select–project subset.

    The result is memoized on the catalog, keyed by view name and the
    catalog's schema generation: DML through a view re-analyses nothing as
    long as no DDL has run, and any DDL clears the memo wholesale (see
    :meth:`~repro.relational.catalog.Catalog.bump_generation`).  Negative
    results (ViewNotUpdatable) are not cached; they are off the hot path.
    """
    memo = catalog.updatability_cache.get(view.name)
    if memo is not None and memo[0] == catalog.generation:
        return memo[1]
    info = _analyze_updatability(view, catalog)
    catalog.updatability_cache[view.name] = (catalog.generation, info)
    return info


def _analyze_updatability(view: ViewDefinition, catalog: "Catalog") -> UpdatableViewInfo:
    query = view.query
    reason = _reject_reason(query)
    if reason is not None:
        raise ViewNotUpdatable(f"view {view.name!r} is not updatable: {reason}")

    source_name = query.from_table.name.lower()
    # view column name -> source column name (both lower case)
    local_map = _column_mapping(view, catalog, source_name)
    local_predicate = _strip_qualifiers(query.where) if query.where else None

    source = catalog.resolve(source_name)
    if isinstance(source, Table):
        return UpdatableViewInfo(
            view=view,
            base=source,
            column_map=local_map,
            predicate=local_predicate,
            check_option=view.check_option,
        )

    # Source is itself a view: recurse, then compose.
    inner = analyze_updatability(source, catalog)
    composed_map = {}
    for view_col, source_col in local_map.items():
        base_col = inner.column_map.get(source_col)
        if base_col is None:
            raise ViewNotUpdatable(
                f"view {view.name!r} selects {source_col!r} which is not "
                f"updatable in {source.name!r}"
            )
        composed_map[view_col] = base_col
    predicate = None
    if local_predicate is not None:
        # Rewrite our predicate's column names into base-table names.
        def to_base(node: E.Expr) -> Optional[E.Expr]:
            if isinstance(node, E.ColumnRef):
                base_col = inner.column_map.get(node.name)
                if base_col is None:
                    raise ViewNotUpdatable(
                        f"predicate of {view.name!r} references {node.name!r}, "
                        f"which is not a simple column of the base table"
                    )
                return E.ColumnRef(base_col)
            return None

        predicate = E.rewrite(local_predicate, to_base)
    conjuncts = E.split_conjuncts(predicate) + E.split_conjuncts(inner.predicate)
    return UpdatableViewInfo(
        view=view,
        base=inner.base,
        column_map=composed_map,
        predicate=E.conjoin(conjuncts),
        check_option=view.check_option or inner.check_option,
    )


def _reject_reason(query: A.Select) -> Optional[str]:
    if query.from_table is None:
        return "no FROM clause"
    if query.joins:
        return "it contains a join"
    if query.group_by or query.having is not None:
        return "it aggregates"
    if query.distinct:
        return "it uses DISTINCT"
    if query.limit is not None or query.offset:
        return "it uses LIMIT/OFFSET"
    for item in query.items:
        if item.star:
            continue
        if isinstance(item.expr, A.AggCall):
            return "it aggregates"
        if not isinstance(item.expr, E.ColumnRef):
            return f"output column {item.expr.to_sql()} is computed"
    return None


def _column_mapping(
    view: ViewDefinition, catalog: "Catalog", source_name: str
) -> Dict[str, str]:
    """Map each view output column to the source column it projects."""
    source_schema = catalog.schema_of(source_name)
    mapping: Dict[str, str] = {}
    source_columns: List[str] = []
    for item in view.query.items:
        if item.star:
            source_columns.extend(source_schema.column_names)
        else:
            assert isinstance(item.expr, E.ColumnRef)
            source_columns.append(item.expr.name)
    if len(source_columns) != view.schema.arity:
        raise ViewNotUpdatable(
            f"view {view.name!r}: column count mismatch during analysis"
        )
    for view_col, source_col in zip(view.schema.column_names, source_columns):
        mapping[view_col] = source_col
    return mapping


def _strip_qualifiers(expr: E.Expr) -> E.Expr:
    """Drop table qualifiers (single-table predicate, so they are redundant)."""

    def fix(node: E.Expr) -> Optional[E.Expr]:
        if isinstance(node, E.ColumnRef) and node.qualifier is not None:
            return E.ColumnRef(node.name)
        return None

    return E.rewrite(expr, fix)
