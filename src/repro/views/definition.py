"""View definitions.

A view is a named, typed query.  Its output schema is derived once, when the
view is created (by planning its query), and stored here so that forms and
other views can treat it exactly like a table schema.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.relational.schema import TableSchema
from repro.sql import ast_nodes as A


@dataclass
class ViewDefinition:
    """A named query with a derived schema.

    Attributes
    ----------
    name:
        View name (lower case, unique across tables and views).
    query:
        The parsed SELECT the view stands for.
    schema:
        The derived output schema (column names and types).  ``schema.name``
        equals the view name, so code paths that only need names/types can
        treat views and tables uniformly.
    check_option:
        True if created WITH CHECK OPTION: DML through the view must not
        produce rows that escape the view's predicate.
    sql_text:
        The original CREATE VIEW text (kept for the catalog and for dump/
        restore).
    """

    name: str
    query: A.Select
    schema: TableSchema
    check_option: bool = False
    sql_text: str = ""
