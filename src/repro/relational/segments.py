"""Columnar segment cache for the vectorized executor.

A *segment* is an immutable column-major snapshot of the live rows in one
contiguous run of heap pages (``SEGMENT_PAGES`` per run): one tuple per
column, all the same length.  Hot analytic scans re-read the same pages
over and over; decoding them into rows each time dominates the scan cost
once the buffer pool has absorbed the I/O.  The segment cache pays the
decode once per (page run, heap version) and serves subsequent scans by
re-zipping the cached columns — no page reads, no slot-directory walks,
no per-record codec calls.

Consistency is by *versioned keys*, not explicit invalidation hooks:
every :class:`~repro.relational.heap.HeapFile` bumps ``data_version`` on
each mutation, and a segment is only served when its recorded version
matches the heap's current one.  A lookup that finds a stale entry drops
it on the spot, so a cache can never return rows a committed write has
since changed.  (DDL replaces the Table object wholesale, which replaces
the store too.)

Memory is bounded by cached *rows*, not entries: an LRU over page runs
evicts whole segments until the store is back under ``max_rows``.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

#: heap pages per segment (a prefetch-window multiple: one segment build
#: triggers at most two batched reads on the default pager config)
SEGMENT_PAGES = 64

#: default cap on total rows cached per store
DEFAULT_SEGMENT_ROWS = 262_144

Row = Tuple[object, ...]
Columns = Tuple[Tuple[object, ...], ...]


class SegmentStore:
    """Per-table LRU cache of column-major page-run snapshots."""

    def __init__(self, max_rows: int = DEFAULT_SEGMENT_ROWS) -> None:
        self.max_rows = max_rows
        # page_lo -> (data_version, columns, row_count); LRU order
        self._segments: "OrderedDict[int, Tuple[int, Columns, int]]" = OrderedDict()
        self._cached_rows = 0
        self.stats: Dict[str, int] = {
            "seg_hits": 0,
            "seg_misses": 0,
            "seg_builds": 0,
            "seg_evictions": 0,
            "seg_invalidated": 0,
            "seg_rows_served": 0,
        }

    # -- lookup / build ------------------------------------------------------

    def get(self, page_lo: int, version: int) -> Optional[Columns]:
        """The cached columns for the run at *page_lo*, if still current."""
        entry = self._segments.get(page_lo)
        if entry is None:
            self.stats["seg_misses"] += 1
            return None
        cached_version, columns, nrows = entry
        if cached_version != version:
            # Stale snapshot of a mutated run — drop it rather than letting
            # the LRU keep unservable bytes alive.
            del self._segments[page_lo]
            self._cached_rows -= nrows
            self.stats["seg_invalidated"] += 1
            self.stats["seg_misses"] += 1
            return None
        self._segments.move_to_end(page_lo)
        self.stats["seg_hits"] += 1
        self.stats["seg_rows_served"] += nrows
        return columns

    def put(self, page_lo: int, version: int, rows: List[Row]) -> Columns:
        """Cache *rows* (row-major) as columns; returns the column view."""
        columns: Columns = tuple(zip(*rows)) if rows else ()
        nrows = len(rows)
        self.stats["seg_builds"] += 1
        if nrows > self.max_rows:
            # A single run bigger than the whole budget is served but not
            # cached — caching it would just evict everything else first.
            return columns
        old = self._segments.pop(page_lo, None)
        if old is not None:
            self._cached_rows -= old[2]
        self._segments[page_lo] = (version, columns, nrows)
        self._cached_rows += nrows
        while self._cached_rows > self.max_rows and len(self._segments) > 1:
            _lo, (_v, _cols, evicted_rows) = self._segments.popitem(last=False)
            self._cached_rows -= evicted_rows
            self.stats["seg_evictions"] += 1
        return columns

    def clear(self) -> None:
        self._segments.clear()
        self._cached_rows = 0

    # -- introspection -------------------------------------------------------

    def cached_segments(self) -> int:
        return len(self._segments)

    def cached_rows(self) -> int:
        return self._cached_rows

    def snapshot(self) -> Dict[str, int]:
        """Counters plus gauges, for ``metrics_snapshot()``/``_storage``."""
        out = dict(self.stats)
        out["seg_cached"] = len(self._segments)
        out["seg_cached_rows"] = self._cached_rows
        return out


def rows_from_columns(columns: Columns) -> Iterator[Row]:
    """Re-materialise row tuples from a cached column view."""
    return zip(*columns)  # type: ignore[return-value]
