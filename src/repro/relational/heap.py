"""Slotted-page heap files.

A heap stores variable-length byte records in fixed-size pages obtained from
a :class:`~repro.relational.pager.Pager`.  Records are addressed by a stable
:class:`RowId` = (page, slot).  Updates that still fit are done in place;
updates that grow beyond the page's free space move the record and return a
new RowId (the table layer fixes up indexes).

Page layout::

    bytes 0..2   slot_count  (uint16 BE)
    bytes 2..4   free_end    (uint16 BE) -- records occupy [free_end, PAGE_SIZE)
    then slot_count slot entries of 4 bytes each:
        offset (uint16 BE; 0xFFFF = dead slot)
        length (uint16 BE)
    records grow downward from the end of the page.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.errors import StorageError
from repro.relational.pager import PAGE_SIZE, Pager

_HEADER = struct.Struct(">HH")
_SLOT = struct.Struct(">HH")
_DEAD = 0xFFFF
_HEADER_SIZE = _HEADER.size
_SLOT_SIZE = _SLOT.size

#: Largest record a page can hold (header + one slot overhead).
MAX_RECORD_SIZE = PAGE_SIZE - _HEADER_SIZE - _SLOT_SIZE


@dataclass(frozen=True, order=True)
class RowId:
    """Stable address of a record: (page number, slot number)."""

    page: int
    slot: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RowId({self.page}:{self.slot})"


class _PageView:
    """Structured accessor over one page's bytearray."""

    __slots__ = ("data",)

    def __init__(self, data: bytearray) -> None:
        self.data = data

    @property
    def slot_count(self) -> int:
        return _HEADER.unpack_from(self.data, 0)[0]

    @property
    def free_end(self) -> int:
        value = _HEADER.unpack_from(self.data, 0)[1]
        return value if value else PAGE_SIZE  # fresh zeroed page

    def set_header(self, slot_count: int, free_end: int) -> None:
        _HEADER.pack_into(self.data, 0, slot_count, free_end)

    def slot(self, slot_no: int) -> Tuple[int, int]:
        return _SLOT.unpack_from(self.data, _HEADER_SIZE + slot_no * _SLOT_SIZE)

    def set_slot(self, slot_no: int, offset: int, length: int) -> None:
        _SLOT.pack_into(self.data, _HEADER_SIZE + slot_no * _SLOT_SIZE, offset, length)

    def slots_end(self) -> int:
        return _HEADER_SIZE + self.slot_count * _SLOT_SIZE

    def contiguous_free(self) -> int:
        return self.free_end - self.slots_end()

    def live_bytes(self) -> int:
        total = 0
        for slot_no in range(self.slot_count):
            offset, length = self.slot(slot_no)
            if offset != _DEAD:
                total += length
        return total

    def fragmented_free(self) -> int:
        """Free space recoverable by compaction (excluding slot reuse)."""
        return PAGE_SIZE - self.slots_end() - self.live_bytes()

    def find_dead_slot(self) -> Optional[int]:
        for slot_no in range(self.slot_count):
            if self.slot(slot_no)[0] == _DEAD:
                return slot_no
        return None

    def compact(self) -> None:
        """Slide all live records to the end of the page, closing holes."""
        records: List[Tuple[int, bytes]] = []
        for slot_no in range(self.slot_count):
            offset, length = self.slot(slot_no)
            if offset != _DEAD:
                records.append((slot_no, bytes(self.data[offset : offset + length])))
        write_pos = PAGE_SIZE
        for slot_no, record in records:
            write_pos -= len(record)
            self.data[write_pos : write_pos + len(record)] = record
            self.set_slot(slot_no, write_pos, len(record))
        self.set_header(self.slot_count, write_pos)


class HeapFile:
    """A bag of byte records over a pager, addressed by RowId."""

    def __init__(self, pager: Pager) -> None:
        self._pager = pager
        # Page numbers that recently had free room, checked before extending.
        self._free_hint: Optional[int] = None
        self._count: Optional[int] = None  # lazy live-record count cache

    # -- basic operations ------------------------------------------------

    def insert(self, record: bytes) -> RowId:
        """Store *record*; return its RowId."""
        rid = self._insert_no_count(record)
        if self._count is not None:
            self._count += 1
        return rid

    def _insert_no_count(self, record: bytes) -> RowId:
        """Place *record* without touching the live-count cache.

        The count invariant lives in the callers: ``insert`` adds one new
        record; the relocation path of ``update`` moves an existing one,
        so the net live count must not change.
        """
        if len(record) > MAX_RECORD_SIZE:
            raise StorageError(
                f"record of {len(record)} bytes exceeds max {MAX_RECORD_SIZE}"
            )
        rid = self._try_insert_into_hint(record)
        if rid is None:
            rid = self._insert_scan(record)
        return rid

    def read(self, rid: RowId) -> bytes:
        """Return the record at *rid*; StorageError if dead or out of range."""
        view = self._view(rid.page)
        if rid.slot >= view.slot_count:
            raise StorageError(f"no slot {rid.slot} on page {rid.page}")
        offset, length = view.slot(rid.slot)
        if offset == _DEAD:
            raise StorageError(f"record {rid} was deleted")
        return bytes(view.data[offset : offset + length])

    def delete(self, rid: RowId) -> None:
        """Remove the record at *rid* (its slot may be reused later)."""
        view = self._view(rid.page)
        if rid.slot >= view.slot_count or view.slot(rid.slot)[0] == _DEAD:
            raise StorageError(f"record {rid} already deleted or absent")
        view.set_slot(rid.slot, _DEAD, 0)
        self._pager.mark_dirty(rid.page)
        self._free_hint = rid.page
        if self._count is not None:
            self._count -= 1

    def update(self, rid: RowId, record: bytes) -> RowId:
        """Replace the record at *rid*; returns the (possibly new) RowId."""
        if len(record) > MAX_RECORD_SIZE:
            raise StorageError(
                f"record of {len(record)} bytes exceeds max {MAX_RECORD_SIZE}"
            )
        view = self._view(rid.page)
        if rid.slot >= view.slot_count:
            raise StorageError(f"no slot {rid.slot} on page {rid.page}")
        offset, length = view.slot(rid.slot)
        if offset == _DEAD:
            raise StorageError(f"record {rid} was deleted")
        if len(record) <= length:
            # In-place overwrite; surplus bytes become a hole until compaction.
            view.data[offset : offset + len(record)] = record
            view.set_slot(rid.slot, offset, len(record))
            self._pager.mark_dirty(rid.page)
            return rid
        # Try to grow within the same page via its contiguous region.
        needed = len(record)
        if view.contiguous_free() >= needed or view.fragmented_free() >= needed:
            view.set_slot(rid.slot, _DEAD, 0)
            view.compact()
            new_end = view.free_end - needed
            view.data[new_end : new_end + needed] = record
            view.set_slot(rid.slot, new_end, needed)
            view.set_header(view.slot_count, new_end)
            self._pager.mark_dirty(rid.page)
            return rid
        # Relocate to another page.  A move never changes the live count,
        # so free the old slot and place the record through the uncounted
        # insert path rather than compensating after delete()+insert().
        view.set_slot(rid.slot, _DEAD, 0)
        self._pager.mark_dirty(rid.page)
        self._free_hint = rid.page
        return self._insert_no_count(record)

    # -- iteration ---------------------------------------------------------

    def scan(self) -> Iterator[Tuple[RowId, bytes]]:
        """Yield every live (RowId, record) in page order."""
        for page_no, data, live in self.scan_pages():
            for slot_no, offset, length in live:
                yield RowId(page_no, slot_no), bytes(data[offset : offset + length])

    def scan_pages(self) -> Iterator[Tuple[int, bytearray, List[Tuple[int, int, int]]]]:
        """Yield (page_no, page data, live slot entries) per non-empty page.

        Each live entry is (slot_no, offset, length).  The whole slot
        directory is decoded in one ``struct.iter_unpack`` pass instead of
        one ``unpack_from`` per slot; batch consumers (``Table.
        scan_batched``) decode records straight out of the page buffer.
        """
        read_page = self._pager.read_page
        iter_unpack = _SLOT.iter_unpack
        for page_no in range(self._pager.page_count()):
            data = read_page(page_no)
            slot_count = _HEADER.unpack_from(data, 0)[0]
            if not slot_count:
                continue
            directory = memoryview(data)[_HEADER_SIZE : _HEADER_SIZE + slot_count * _SLOT_SIZE]
            live = [
                (slot_no, offset, length)
                for slot_no, (offset, length) in enumerate(iter_unpack(directory))
                if offset != _DEAD
            ]
            if live:
                yield page_no, data, live

    def count(self) -> int:
        """Number of live records (cached after first full scan)."""
        if self._count is None:
            self._count = sum(1 for _ in self.scan())
        return self._count

    def page_count(self) -> int:
        """Number of pages the heap occupies."""
        return self._pager.page_count()

    def flush(self) -> None:
        """Flush underlying pager."""
        self._pager.flush()

    # -- internals -----------------------------------------------------------

    def _view(self, page_no: int) -> _PageView:
        return _PageView(self._pager.read_page(page_no))

    def _try_insert_into_hint(self, record: bytes) -> Optional[RowId]:
        if self._free_hint is None or self._free_hint >= self._pager.page_count():
            return None
        rid = self._insert_into_page(self._free_hint, record)
        if rid is None:
            self._free_hint = None
        return rid

    def _insert_scan(self, record: bytes) -> RowId:
        # Try the last page, then extend.  (Scanning every page on every
        # insert would be quadratic; the hint plus last-page check keeps the
        # common append workload linear.)
        page_count = self._pager.page_count()
        if page_count:
            rid = self._insert_into_page(page_count - 1, record)
            if rid is not None:
                self._free_hint = page_count - 1
                return rid
        page_no = self._pager.allocate_page()
        rid = self._insert_into_page(page_no, record)
        if rid is None:  # pragma: no cover - record size already validated
            raise StorageError("fresh page cannot hold record")
        self._free_hint = page_no
        return rid

    def _insert_into_page(self, page_no: int, record: bytes) -> Optional[RowId]:
        view = self._view(page_no)
        needed = len(record)
        dead_slot = view.find_dead_slot()
        slot_overhead = 0 if dead_slot is not None else _SLOT_SIZE
        if view.contiguous_free() < needed + slot_overhead:
            if view.fragmented_free() >= needed + slot_overhead:
                view.compact()
            else:
                return None
        if dead_slot is None:
            slot_no = view.slot_count
            view.set_header(slot_no + 1, view.free_end)
        else:
            slot_no = dead_slot
        new_end = view.free_end - needed
        view.data[new_end : new_end + needed] = record
        view.set_slot(slot_no, new_end, needed)
        view.set_header(view.slot_count, new_end)
        self._pager.mark_dirty(page_no)
        return RowId(page_no, slot_no)
