"""Slotted-page heap files.

A heap stores variable-length byte records in fixed-size pages obtained from
a :class:`~repro.relational.pager.Pager`.  Records are addressed by a stable
:class:`RowId` = (page, slot).  Updates that still fit are done in place;
updates that grow beyond the page's free space move the record and return a
new RowId (the table layer fixes up indexes).

Space freed by deletes is reused: a lazily built :class:`FreeSpaceMap`
tracks every page's reclaimable bytes in power-of-two buckets, so inserts
find a page with room in O(1) instead of growing the file, and
:meth:`HeapFile.vacuum` compacts fragmented pages in place (RowIds are
(page, slot), so in-page compaction never invalidates an address).

Sequential scans go through the pager's ``read_pages`` prefetch batch API
and pin the pages they are iterating, so a concurrent admission can never
evict a page out from under the scan.

Page layout::

    bytes 0..2   slot_count  (uint16 BE)
    bytes 2..4   free_end    (uint16 BE) -- records occupy [free_end, PAGE_SIZE)
    then slot_count slot entries of 4 bytes each:
        offset (uint16 BE; 0xFFFF = dead slot)
        length (uint16 BE)
    records grow downward from the end of the page.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import StorageError
from repro.relational.pager import PAGE_SIZE, Pager

_HEADER = struct.Struct(">HH")
_SLOT = struct.Struct(">HH")
_DEAD = 0xFFFF
_HEADER_SIZE = _HEADER.size
_SLOT_SIZE = _SLOT.size

#: Largest record a page can hold (header + one slot overhead).
MAX_RECORD_SIZE = PAGE_SIZE - _HEADER_SIZE - _SLOT_SIZE

#: pages with fewer reclaimable bytes than this are not worth tracking
_FSM_MIN_FREE = 16


@dataclass(frozen=True, order=True)
class RowId:
    """Stable address of a record: (page number, slot number)."""

    page: int
    slot: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RowId({self.page}:{self.slot})"


class _PageView:
    """Structured accessor over one page's bytearray."""

    __slots__ = ("data",)

    def __init__(self, data: bytearray) -> None:
        self.data = data

    @property
    def slot_count(self) -> int:
        return _HEADER.unpack_from(self.data, 0)[0]

    @property
    def free_end(self) -> int:
        value = _HEADER.unpack_from(self.data, 0)[1]
        return value if value else PAGE_SIZE  # fresh zeroed page

    def set_header(self, slot_count: int, free_end: int) -> None:
        _HEADER.pack_into(self.data, 0, slot_count, free_end)

    def slot(self, slot_no: int) -> Tuple[int, int]:
        return _SLOT.unpack_from(self.data, _HEADER_SIZE + slot_no * _SLOT_SIZE)

    def set_slot(self, slot_no: int, offset: int, length: int) -> None:
        _SLOT.pack_into(self.data, _HEADER_SIZE + slot_no * _SLOT_SIZE, offset, length)

    def slots_end(self) -> int:
        return _HEADER_SIZE + self.slot_count * _SLOT_SIZE

    def contiguous_free(self) -> int:
        return self.free_end - self.slots_end()

    def live_bytes(self) -> int:
        total = 0
        for slot_no in range(self.slot_count):
            offset, length = self.slot(slot_no)
            if offset != _DEAD:
                total += length
        return total

    def fragmented_free(self) -> int:
        """Free space recoverable by compaction (excluding slot reuse)."""
        return PAGE_SIZE - self.slots_end() - self.live_bytes()

    def find_dead_slot(self) -> Optional[int]:
        for slot_no in range(self.slot_count):
            if self.slot(slot_no)[0] == _DEAD:
                return slot_no
        return None

    def compact(self) -> None:
        """Slide all live records to the end of the page, closing holes."""
        records: List[Tuple[int, bytes]] = []
        for slot_no in range(self.slot_count):
            offset, length = self.slot(slot_no)
            if offset != _DEAD:
                records.append((slot_no, bytes(self.data[offset : offset + length])))
        write_pos = PAGE_SIZE
        for slot_no, record in records:
            write_pos -= len(record)
            self.data[write_pos : write_pos + len(record)] = record
            self.set_slot(slot_no, write_pos, len(record))
        self.set_header(self.slot_count, write_pos)


class FreeSpaceMap:
    """Bucketized page -> reclaimable-bytes index.

    Bucket *k* holds pages whose recorded free bytes lie in
    ``[2**k, 2**(k+1))``, so ``find(needed)`` starts at the first bucket
    whose floor guarantees the fit and returns any member — O(buckets)
    worst case, no per-page scan.  Conservative by design: a page whose
    free bytes fall between ``needed`` and the bucket floor may be
    skipped, which only costs space, never correctness.
    """

    _BUCKETS = PAGE_SIZE.bit_length()  # free bytes < PAGE_SIZE always

    def __init__(self) -> None:
        self._free: Dict[int, int] = {}
        self._buckets: List[Set[int]] = [set() for _ in range(self._BUCKETS)]

    @staticmethod
    def _bucket(free: int) -> int:
        return free.bit_length() - 1

    def record(self, page_no: int, free: int) -> None:
        """Set page *page_no*'s reclaimable bytes (drops tiny remnants)."""
        old = self._free.pop(page_no, None)
        if old is not None:
            self._buckets[self._bucket(old)].discard(page_no)
        if free < _FSM_MIN_FREE:
            return
        self._free[page_no] = free
        self._buckets[self._bucket(free)].add(page_no)

    def find(self, needed: int) -> Optional[int]:
        """A page guaranteed to hold *needed* reclaimable bytes, or None."""
        if needed <= 0:
            needed = 1
        for k in range((needed - 1).bit_length() if needed > 1 else 0, self._BUCKETS):
            bucket = self._buckets[k]
            if bucket:
                return next(iter(bucket))
        return None

    def pages_tracked(self) -> int:
        return len(self._free)

    def free_bytes_total(self) -> int:
        return sum(self._free.values())


class HeapFile:
    """A bag of byte records over a pager, addressed by RowId."""

    def __init__(self, pager: Pager) -> None:
        self._pager = pager
        # Page numbers that recently had free room, checked before extending.
        self._free_hint: Optional[int] = None
        self._count: Optional[int] = None  # lazy live-record count cache
        self._fsm: Optional[FreeSpaceMap] = None  # built on first insert miss
        #: bumped on every mutation; cache layers (columnar segments) key
        #: their entries on it so a stale snapshot can never be served
        self.data_version = 0

    # -- basic operations ------------------------------------------------

    def insert(self, record: bytes) -> RowId:
        """Store *record*; return its RowId."""
        rid = self._insert_no_count(record)
        if self._count is not None:
            self._count += 1
        self.data_version += 1
        return rid

    def _insert_no_count(self, record: bytes) -> RowId:
        """Place *record* without touching the live-count cache.

        The count invariant lives in the callers: ``insert`` adds one new
        record; the relocation path of ``update`` moves an existing one,
        so the net live count must not change.
        """
        if len(record) > MAX_RECORD_SIZE:
            raise StorageError(
                f"record of {len(record)} bytes exceeds max {MAX_RECORD_SIZE}"
            )
        rid = self._try_insert_into_hint(record)
        if rid is None:
            rid = self._try_insert_from_fsm(record)
        if rid is None:
            rid = self._insert_scan(record)
        return rid

    def read(self, rid: RowId) -> bytes:
        """Return the record at *rid*; StorageError if dead or out of range."""
        view = self._view(rid.page)
        if rid.slot >= view.slot_count:
            raise StorageError(f"no slot {rid.slot} on page {rid.page}")
        offset, length = view.slot(rid.slot)
        if offset == _DEAD:
            raise StorageError(f"record {rid} was deleted")
        return bytes(view.data[offset : offset + length])

    def delete(self, rid: RowId) -> None:
        """Remove the record at *rid* (its slot may be reused later)."""
        view = self._view(rid.page)
        if rid.slot >= view.slot_count or view.slot(rid.slot)[0] == _DEAD:
            raise StorageError(f"record {rid} already deleted or absent")
        view.set_slot(rid.slot, _DEAD, 0)
        self._pager.mark_dirty(rid.page)
        self._free_hint = rid.page
        self._fsm_record(rid.page, view)
        if self._count is not None:
            self._count -= 1
        self.data_version += 1

    def update(self, rid: RowId, record: bytes) -> RowId:
        """Replace the record at *rid*; returns the (possibly new) RowId."""
        if len(record) > MAX_RECORD_SIZE:
            raise StorageError(
                f"record of {len(record)} bytes exceeds max {MAX_RECORD_SIZE}"
            )
        view = self._view(rid.page)
        if rid.slot >= view.slot_count:
            raise StorageError(f"no slot {rid.slot} on page {rid.page}")
        offset, length = view.slot(rid.slot)
        if offset == _DEAD:
            raise StorageError(f"record {rid} was deleted")
        if len(record) <= length:
            # In-place overwrite; surplus bytes become a hole until compaction.
            view.data[offset : offset + len(record)] = record
            view.set_slot(rid.slot, offset, len(record))
            self._pager.mark_dirty(rid.page)
            self._fsm_record(rid.page, view)
            self.data_version += 1
            return rid
        # Try to grow within the same page via its contiguous region.
        needed = len(record)
        if view.contiguous_free() >= needed or view.fragmented_free() >= needed:
            view.set_slot(rid.slot, _DEAD, 0)
            view.compact()
            new_end = view.free_end - needed
            view.data[new_end : new_end + needed] = record
            view.set_slot(rid.slot, new_end, needed)
            view.set_header(view.slot_count, new_end)
            self._pager.mark_dirty(rid.page)
            self._fsm_record(rid.page, view)
            self.data_version += 1
            return rid
        # Relocate to another page.  A move never changes the live count,
        # so free the old slot and place the record through the uncounted
        # insert path rather than compensating after delete()+insert().
        view.set_slot(rid.slot, _DEAD, 0)
        self._pager.mark_dirty(rid.page)
        self._free_hint = rid.page
        self._fsm_record(rid.page, view)
        new_rid = self._insert_no_count(record)
        self.data_version += 1
        return new_rid

    # -- iteration ---------------------------------------------------------

    def scan(self) -> Iterator[Tuple[RowId, bytes]]:
        """Yield every live (RowId, record) in page order."""
        for page_no, data, live in self.scan_pages():
            for slot_no, offset, length in live:
                yield RowId(page_no, slot_no), bytes(data[offset : offset + length])

    def scan_pages(
        self, start: int = 0, stop: Optional[int] = None
    ) -> Iterator[Tuple[int, bytearray, List[Tuple[int, int, int]]]]:
        """Yield (page_no, page data, live slot entries) per non-empty page.

        Each live entry is (slot_no, offset, length).  The whole slot
        directory is decoded in one ``struct.iter_unpack`` pass instead of
        one ``unpack_from`` per slot; batch consumers (``Table.
        scan_batched``) decode records straight out of the page buffer.

        On a pager with a prefetch window, pages are fetched a window at a
        time through ``read_pages`` (one positioned read per contiguous
        miss run) and stay *pinned* while the caller holds their buffers —
        an insert landing mid-scan can grow the pool past target but can
        never evict a page this generator has yielded from the current
        window.
        """
        total = self._pager.page_count()
        stop = total if stop is None else min(stop, total)
        start = max(start, 0)
        window = getattr(self._pager, "prefetch_pages", 0)
        if window and stop > start:
            yield from self._scan_pages_prefetch(start, stop, window)
            return
        read_page = self._pager.read_page
        for page_no in range(start, stop):
            live = self._live_slots(data := read_page(page_no))
            if live:
                yield page_no, data, live

    def _scan_pages_prefetch(
        self, start: int, stop: int, window: int
    ) -> Iterator[Tuple[int, bytearray, List[Tuple[int, int, int]]]]:
        pager = self._pager
        for lo in range(start, stop, window):
            n = min(window, stop - lo)
            pages = pager.read_pages(lo, n, pin=True)
            try:
                for i, data in enumerate(pages):
                    live = self._live_slots(data)
                    if live:
                        yield lo + i, data, live
            finally:
                for i in range(n):
                    pager.unpin(lo + i)

    @staticmethod
    def _live_slots(data: bytearray) -> List[Tuple[int, int, int]]:
        slot_count = _HEADER.unpack_from(data, 0)[0]
        if not slot_count:
            return []
        directory = memoryview(data)[_HEADER_SIZE : _HEADER_SIZE + slot_count * _SLOT_SIZE]
        return [
            (slot_no, offset, length)
            for slot_no, (offset, length) in enumerate(_SLOT.iter_unpack(directory))
            if offset != _DEAD
        ]

    def prefetch(self, pages: Sequence[int]) -> None:
        """Warm the pool for an upcoming point-read batch (index scans).

        Groups the sorted distinct page numbers into contiguous runs and
        issues one ``read_pages`` per run; a no-op on pagers without a
        prefetch window.
        """
        if not getattr(self._pager, "prefetch_pages", 0):
            return
        total = self._pager.page_count()
        wanted = sorted({p for p in pages if 0 <= p < total})
        if not wanted:
            return
        run_start = prev = wanted[0]
        for page_no in wanted[1:]:
            if page_no != prev + 1:
                self._pager.read_pages(run_start, prev - run_start + 1)
                run_start = page_no
            prev = page_no
        self._pager.read_pages(run_start, prev - run_start + 1)

    def count(self) -> int:
        """Number of live records (cached after first full scan)."""
        if self._count is None:
            self._count = sum(1 for _ in self.scan())
        return self._count

    def page_count(self) -> int:
        """Number of pages the heap occupies."""
        return self._pager.page_count()

    def flush(self) -> None:
        """Flush underlying pager."""
        self._pager.flush()

    # -- maintenance ---------------------------------------------------------

    def vacuum(self) -> Dict[str, int]:
        """Compact every fragmented page in place; returns work stats.

        In-page compaction slides live records together without touching
        slot numbers, so RowIds — and therefore every index entry —
        remain valid.  Rebuilds the free-space map from the compacted
        truth as a side effect.
        """
        fsm = self._fsm = FreeSpaceMap()
        pages = self._pager.page_count()
        compacted = 0
        reclaimed = 0
        for page_no in range(pages):
            view = self._view(page_no)
            holes = view.fragmented_free() - view.contiguous_free()
            if holes > 0:
                view.compact()
                self._pager.mark_dirty(page_no)
                compacted += 1
                reclaimed += holes
            fsm.record(page_no, view.fragmented_free())
        self.data_version += 1
        return {"pages": pages, "compacted": compacted, "reclaimed_bytes": reclaimed}

    def free_space_stats(self) -> Dict[str, int]:
        """Free-space-map telemetry (zeros until the map is first built)."""
        if self._fsm is None:
            return {"fsm_pages": 0, "fsm_free_bytes": 0}
        return {
            "fsm_pages": self._fsm.pages_tracked(),
            "fsm_free_bytes": self._fsm.free_bytes_total(),
        }

    # -- internals -----------------------------------------------------------

    def _view(self, page_no: int) -> _PageView:
        return _PageView(self._pager.read_page(page_no))

    def _fsm_record(self, page_no: int, view: _PageView) -> None:
        if self._fsm is not None:
            self._fsm.record(page_no, view.fragmented_free())

    def _ensure_fsm(self) -> FreeSpaceMap:
        if self._fsm is None:
            # One-time full sweep; afterwards every mutation maintains the
            # map incrementally, so inserts stop re-scanning the file.
            fsm = FreeSpaceMap()
            for page_no in range(self._pager.page_count()):
                fsm.record(page_no, self._view(page_no).fragmented_free())
            self._fsm = fsm
        return self._fsm

    def _try_insert_into_hint(self, record: bytes) -> Optional[RowId]:
        if self._free_hint is None or self._free_hint >= self._pager.page_count():
            return None
        rid = self._insert_into_page(self._free_hint, record)
        if rid is None:
            self._free_hint = None
        return rid

    def _try_insert_from_fsm(self, record: bytes) -> Optional[RowId]:
        fsm = self._ensure_fsm()
        # +_SLOT_SIZE keeps the guarantee even when the page has no dead
        # slot to reuse; the map may briefly disagree with a page only if
        # a caller mutated pages behind the heap's back, so cap the retry.
        for _ in range(4):
            page_no = fsm.find(len(record) + _SLOT_SIZE)
            if page_no is None or page_no >= self._pager.page_count():
                return None
            rid = self._insert_into_page(page_no, record)
            if rid is not None:
                self._free_hint = page_no
                return rid
            fsm.record(page_no, self._view(page_no).fragmented_free())
        return None

    def _insert_scan(self, record: bytes) -> RowId:
        # Try the last page, then extend.  (Scanning every page on every
        # insert would be quadratic; the hint plus last-page check keeps the
        # common append workload linear.)
        page_count = self._pager.page_count()
        if page_count:
            rid = self._insert_into_page(page_count - 1, record)
            if rid is not None:
                self._free_hint = page_count - 1
                return rid
        page_no = self._pager.allocate_page()
        rid = self._insert_into_page(page_no, record)
        if rid is None:  # pragma: no cover - record size already validated
            raise StorageError("fresh page cannot hold record")
        self._free_hint = page_no
        return rid

    def _insert_into_page(self, page_no: int, record: bytes) -> Optional[RowId]:
        view = self._view(page_no)
        needed = len(record)
        dead_slot = view.find_dead_slot()
        slot_overhead = 0 if dead_slot is not None else _SLOT_SIZE
        if view.contiguous_free() < needed + slot_overhead:
            if view.fragmented_free() >= needed + slot_overhead:
                view.compact()
            else:
                return None
        if dead_slot is None:
            slot_no = view.slot_count
            view.set_header(slot_no + 1, view.free_end)
        else:
            slot_no = dead_slot
        new_end = view.free_end - needed
        view.data[new_end : new_end + needed] = record
        view.set_slot(slot_no, new_end, needed)
        view.set_header(view.slot_count, new_end)
        self._pager.mark_dirty(page_no)
        self._fsm_record(page_no, view)
        return RowId(page_no, slot_no)
