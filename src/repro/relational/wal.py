"""Write-ahead logging and crash recovery for on-disk databases.

Protocol (see DESIGN.md S9):

* Data files (heap pages, catalog JSON) are written **only** at checkpoints
  — the pager is strict no-steal, so between checkpoints the files stay
  exactly at the last checkpointed state.
* Every committed statement/transaction appends its logical row operations
  to the WAL, followed by a commit marker, then fsyncs.
* Recovery = load the data files, then replay every op that is covered by a
  commit marker.  A trailing, unmarked group (a crash mid-commit) is
  discarded.
* ``checkpoint()`` flushes everything and truncates the WAL.

Row values are JSON-encoded; DATE values round-trip as ISO strings through
:func:`repro.relational.types.coerce` at replay time.
"""

from __future__ import annotations

import datetime
import json
import os
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.errors import StorageError


def _encode_value(value: Any) -> Any:
    if isinstance(value, datetime.date):
        return value.isoformat()
    return value


def _encode_row(row: Sequence[Any]) -> List[Any]:
    return [_encode_value(v) for v in row]


class WriteAheadLog:
    """Append-only logical redo log for one database directory."""

    def __init__(self, path: str, fsync: bool = True) -> None:
        self.path = path
        self._fsync = fsync
        self._fd: Optional[int] = os.open(
            path, os.O_RDWR | os.O_CREAT | os.O_APPEND, 0o644
        )
        self._pending: List[str] = []
        #: statistics for benchmarks/tests
        self.stats = {"commits": 0, "ops": 0, "bytes": 0, "fsyncs": 0, "appends": 0}

    # -- logging ------------------------------------------------------------

    def log_insert(self, table: str, row: Sequence[Any]) -> None:
        self._pending.append(
            json.dumps({"t": "insert", "tab": table, "row": _encode_row(row)})
        )

    def log_delete(self, table: str, row: Sequence[Any]) -> None:
        self._pending.append(
            json.dumps({"t": "delete", "tab": table, "row": _encode_row(row)})
        )

    def log_update(self, table: str, old: Sequence[Any], new: Sequence[Any]) -> None:
        self._pending.append(
            json.dumps(
                {
                    "t": "update",
                    "tab": table,
                    "old": _encode_row(old),
                    "new": _encode_row(new),
                }
            )
        )

    def commit(self) -> None:
        """Make the pending group durable (ops + commit marker + fsync)."""
        if self._fd is None:
            raise StorageError("WAL is closed")
        if not self._pending:
            return
        lines = self._pending + [json.dumps({"t": "commit"})]
        payload = ("\n".join(lines) + "\n").encode("utf-8")
        os.write(self._fd, payload)
        self.stats["appends"] += 1
        if self._fsync:
            os.fsync(self._fd)
            self.stats["fsyncs"] += 1
        self.stats["commits"] += 1
        self.stats["ops"] += len(self._pending)
        self.stats["bytes"] += len(payload)
        self._pending.clear()

    def discard_pending(self) -> None:
        """Drop the uncommitted group (statement failed / ROLLBACK)."""
        self._pending.clear()

    def mark(self) -> int:
        """Current pending-op position (for statement-level atomicity)."""
        return len(self._pending)

    def discard_pending_from(self, mark: int) -> None:
        """Drop pending ops logged after *mark* (failed statement in a txn)."""
        del self._pending[mark:]

    @property
    def pending_ops(self) -> int:
        return len(self._pending)

    # -- recovery ------------------------------------------------------------

    def replay(self, apply: Callable[[dict], None]) -> int:
        """Feed every committed op to *apply*; returns the op count.

        Malformed trailing data (torn final write) is treated as an
        uncommitted group and ignored; malformed data *before* a commit
        marker raises StorageError because it means real corruption.
        """
        if self._fd is None:
            raise StorageError("WAL is closed")
        os.lseek(self._fd, 0, os.SEEK_SET)
        chunks = []
        while True:
            chunk = os.read(self._fd, 1 << 20)
            if not chunk:
                break
            chunks.append(chunk)
        os.lseek(self._fd, 0, os.SEEK_END)
        text = b"".join(chunks).decode("utf-8", errors="replace")
        group: List[dict] = []
        applied = 0
        for line_no, line in enumerate(text.splitlines(), start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                # A torn final line is fine; anything else is corruption.
                group = None  # mark group as poisoned
                continue
            if group is None:
                raise StorageError(
                    f"WAL corruption: valid record after torn line {line_no}"
                )
            if record.get("t") == "commit":
                for op in group:
                    apply(op)
                    applied += 1
                group = []
            else:
                group.append(record)
        return applied

    def truncate(self) -> None:
        """Erase the log (after a checkpoint has made data files current)."""
        if self._fd is None:
            raise StorageError("WAL is closed")
        os.ftruncate(self._fd, 0)
        os.lseek(self._fd, 0, os.SEEK_END)
        if self._fsync:
            os.fsync(self._fd)

    def close(self) -> None:
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None
