"""Write-ahead logging and crash recovery for on-disk databases.

Protocol (see DESIGN.md S9 and docs/INTERNALS.md "Transactions and
recovery"):

* Data files (heap pages, catalog JSON) are written **only** at checkpoints
  — the pager is strict no-steal, so between checkpoints the files stay
  exactly at the last checkpointed state.
* Every committed statement/transaction appends its logical row operations
  to the WAL, followed by a commit marker, then fsyncs.
* Recovery = load the data files, then replay every op that is covered by a
  commit marker.  A trailing, unmarked group (a crash mid-commit) is
  discarded.
* ``checkpoint()`` flushes everything and truncates the WAL.

**Record format v2.**  Each line is ``2|<seq>|<crc32:8 hex>|<json>`` where
*seq* is the group sequence number (every record of a commit group,
including its commit marker, carries the same seq; seqs increase by one
per committed group and survive truncation via the catalog's
``checkpoint_seq``) and the CRC-32 covers ``<seq>|<json>``.  A flipped bit
anywhere in a record is caught by the CRC instead of being replayed as
data.  Replay skips groups with ``seq <= min_seq`` — how recovery avoids
re-applying work a crashed checkpoint already flushed to the heaps.

**v1 compatibility.**  Lines starting with ``{`` are v1 records (raw JSON,
no checksum, no seq); they replay exactly as before, so a database written
by an older build opens cleanly.  New records are always written as v2.

Torn-tail handling: any invalid line (bad CRC, bad JSON, unknown record
kind, bad UTF-8) *poisons* the current group.  If the log ends there it
was a torn final write and the group is discarded; if a valid record
follows, the damage is in the middle of the log and replay raises
:class:`~repro.errors.WalCorruptionError` — the database reacts by
degrading to read-only rather than guessing.  A discarded tail is also
**truncated from the file**: the fd is O_APPEND, so leaving the leftover
bytes in place would put the next commit right behind (or on the same
line as) them, and the following open would read that acknowledged group
as corruption.

Row values are JSON-encoded; DATE values round-trip as ISO strings through
:func:`repro.relational.types.coerce` at replay time.
"""

from __future__ import annotations

import datetime
import json
import os
import zlib
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import StorageError, WalCorruptionError
from repro.relational.faults import DEFAULT_IO, IOShim

#: record kinds replay understands; anything else is treated as corruption
KNOWN_RECORD_KINDS = ("insert", "delete", "update", "commit")


def _encode_value(value: Any) -> Any:
    if isinstance(value, datetime.date):
        return value.isoformat()
    return value


def _encode_row(row: Sequence[Any]) -> List[Any]:
    return [_encode_value(v) for v in row]


def _crc(seq: int, payload: str) -> int:
    return zlib.crc32(f"{seq}|{payload}".encode("utf-8")) & 0xFFFFFFFF


def _frame(seq: int, payload: str) -> str:
    """A v2 log line for *payload* under group sequence *seq*."""
    return f"2|{seq}|{_crc(seq, payload):08x}|{payload}"


class _Invalid(Exception):
    """Internal: this log line cannot be trusted (reason in args)."""


def _parse_line(line: bytes) -> tuple:
    """Decode one log line -> (seq | None, record dict).

    Raises :class:`_Invalid` for anything unparseable or unknown; the
    caller decides whether that means a torn tail or real corruption.
    """
    try:
        text = line.decode("utf-8", errors="strict")
    except UnicodeDecodeError as exc:
        raise _Invalid(f"undecodable bytes: {exc}") from exc
    if text.startswith("2|"):
        parts = text.split("|", 3)
        if len(parts) != 4:
            raise _Invalid("truncated v2 frame")
        _version, seq_text, crc_text, payload = parts
        try:
            seq = int(seq_text)
            crc = int(crc_text, 16)
        except ValueError as exc:
            raise _Invalid(f"bad v2 frame header: {exc}") from exc
        if _crc(seq, payload) != crc:
            raise _Invalid(f"CRC mismatch on seq {seq}")
    elif text.startswith("{"):
        seq, payload = None, text  # v1 record: raw JSON, no checksum
    else:
        raise _Invalid(f"unrecognized line prefix {text[:8]!r}")
    try:
        record = json.loads(payload)
    except json.JSONDecodeError as exc:
        raise _Invalid(f"bad JSON: {exc}") from exc
    if not isinstance(record, dict) or record.get("t") not in KNOWN_RECORD_KINDS:
        raise _Invalid(f"unknown record kind {record!r:.60}")
    return seq, record


class WriteAheadLog:
    """Append-only logical redo log for one database directory."""

    def __init__(self, path: str, fsync: bool = True, io: Optional[IOShim] = None) -> None:
        self.path = path
        self._fsync = fsync
        self._io = io if io is not None else DEFAULT_IO
        self._fd: Optional[int] = self._io.open(
            path, os.O_RDWR | os.O_CREAT | os.O_APPEND, 0o644
        )
        #: pending (uncommitted) records, partitioned by **scope** so the
        #: open transactions of concurrent sessions never share a group:
        #: the session layer switches scopes with :meth:`use_scope` before
        #: each statement, and ``commit()`` flushes only the current
        #: scope's records.  The embedded single-session database lives its
        #: whole life in the default scope ``0``.
        self._pending_scopes: Dict[Any, List[str]] = {0: []}
        self._scope: Any = 0
        #: the sequence number the next committed group will carry
        self.next_seq = 1
        #: statistics for benchmarks/tests
        self.stats = {"commits": 0, "ops": 0, "bytes": 0, "fsyncs": 0, "appends": 0}
        #: recovery-side counters (kept apart from the write-side stats)
        self.recovery_stats: Dict[str, int] = {
            "replayed_ops": 0,
            "skipped_groups": 0,
            "torn_tail_records": 0,
            "tail_truncated_bytes": 0,
            "crc_errors": 0,
        }

    @property
    def last_seq(self) -> int:
        """The sequence number of the newest committed group (0 if none)."""
        return self.next_seq - 1

    # -- scopes -------------------------------------------------------------

    @property
    def _pending(self) -> List[str]:
        """The current scope's uncommitted records."""
        return self._pending_scopes[self._scope]

    def use_scope(self, token: Any) -> None:
        """Switch pending-record accumulation to *token*'s private list.

        Records logged, committed, marked, and discarded from now on all
        target this scope only — another session's open transaction keeps
        its pending records untouched in its own scope.
        """
        self._pending_scopes.setdefault(token, [])
        self._scope = token

    def drop_scope(self, token: Any) -> None:
        """Forget a closed session's scope (its pending records discard)."""
        if token == 0:
            return  # the default scope is permanent
        self._pending_scopes.pop(token, None)
        if self._scope == token:
            self._scope = 0

    # -- logging ------------------------------------------------------------

    def log_insert(self, table: str, row: Sequence[Any]) -> None:
        self._pending.append(
            json.dumps({"t": "insert", "tab": table, "row": _encode_row(row)})
        )

    def log_delete(self, table: str, row: Sequence[Any]) -> None:
        self._pending.append(
            json.dumps({"t": "delete", "tab": table, "row": _encode_row(row)})
        )

    def log_update(self, table: str, old: Sequence[Any], new: Sequence[Any]) -> None:
        self._pending.append(
            json.dumps(
                {
                    "t": "update",
                    "tab": table,
                    "old": _encode_row(old),
                    "new": _encode_row(new),
                }
            )
        )

    def commit(self) -> None:
        """Make the pending group durable (ops + commit marker + fsync)."""
        if self._fd is None:
            raise StorageError("WAL is closed")
        if not self._pending:
            return
        seq = self.next_seq
        lines = [_frame(seq, line) for line in self._pending]
        lines.append(_frame(seq, json.dumps({"t": "commit"})))
        payload = ("\n".join(lines) + "\n").encode("utf-8")
        start = os.lseek(self._fd, 0, os.SEEK_END)
        try:
            self._io.write_all(self._fd, payload)
            self.stats["appends"] += 1
            if self._fsync:
                self._io.fsync(self._fd)
                self.stats["fsyncs"] += 1
        except OSError as exc:
            # The group — commit marker included — may already be in the
            # file (a write that landed but whose fsync failed), and replay
            # applies any marker-covered group regardless of fsync.  Make
            # the failure atomic: truncate back to the pre-append offset so
            # neither recovery nor a later append can observe a group the
            # caller was told did not commit.
            self._pending.clear()
            try:
                self._io.ftruncate(self._fd, start)
                os.lseek(self._fd, 0, os.SEEK_END)
            except OSError as trunc_exc:
                # Rollback failed too: the log may now hold a phantom
                # commit.  Burn its seq so the next successful group cannot
                # collide with it, and report both failures.
                self.next_seq = seq + 1
                raise StorageError(
                    f"WAL append failed ({exc}) and could not be rolled "
                    f"back ({trunc_exc}); the log may hold a phantom commit"
                ) from exc
            raise StorageError(f"WAL append failed: {exc}") from exc
        self.next_seq = seq + 1
        self.stats["commits"] += 1
        self.stats["ops"] += len(self._pending)
        self.stats["bytes"] += len(payload)
        self._pending.clear()

    def discard_pending(self) -> None:
        """Drop the uncommitted group (statement failed / ROLLBACK)."""
        self._pending.clear()

    def mark(self) -> int:
        """Current pending-op position (for statement-level atomicity)."""
        return len(self._pending)

    def discard_pending_from(self, mark: int) -> None:
        """Drop pending ops logged after *mark* (failed statement in a txn)."""
        del self._pending[mark:]

    @property
    def pending_ops(self) -> int:
        return len(self._pending)

    # -- recovery ------------------------------------------------------------

    def _lines(self) -> Iterator[Tuple[bytes, int]]:
        """Stream ``(line, end_offset)`` without materialising the file.

        *end_offset* is the file offset just past the line, its newline
        included — the offset replay truncates back to when everything
        after a commit marker is discarded.
        """
        tail = b""
        offset = 0
        read_pos = 0
        while True:
            chunk = self._io.pread(self._fd, 1 << 20, read_pos)
            if not chunk:
                break
            read_pos += len(chunk)
            tail += chunk
            lines = tail.split(b"\n")
            tail = lines.pop()
            for line in lines:
                offset += len(line) + 1
                yield line, offset
        os.lseek(self._fd, 0, os.SEEK_END)
        if tail:
            # No trailing newline: by construction this write never
            # finished, so the final fragment is torn by definition.
            offset += len(tail)
            yield tail, offset

    def replay(self, apply: Callable[[dict], None], min_seq: int = 0) -> int:
        """Feed every committed op with seq > *min_seq* to *apply*.

        Returns the applied op count.  Malformed trailing data (torn final
        write) is treated as an uncommitted group and ignored — and then
        **truncated from the file**, so the discard is durable rather than
        implicit (the fd is O_APPEND; leftover tail bytes would otherwise
        sit in front of the next commit and make the following open read
        that acknowledged group as corruption).  Malformed data *before* a
        later valid record raises
        :class:`~repro.errors.WalCorruptionError` because it means real
        corruption.  Groups at or below *min_seq* were already flushed to
        the heaps by a checkpoint and are skipped.
        """
        if self._fd is None:
            raise StorageError("WAL is closed")
        group: List[dict] = []
        group_seq: Optional[int] = None
        poisoned_at: Optional[str] = None
        pending_invalid = 0
        applied = 0
        max_seq = 0
        committed_end = 0  # offset just past the last commit marker
        log_end = 0        # offset just past the last line seen
        for line_no, (raw, end_offset) in enumerate(self._lines(), start=1):
            log_end = end_offset
            if not raw.strip():
                continue
            try:
                seq, record = _parse_line(raw)
                if group and seq != group_seq:
                    raise _Invalid(
                        f"group sequence mismatch: {seq} in group {group_seq}"
                    )
            except _Invalid as exc:
                if poisoned_at is None:
                    poisoned_at = f"line {line_no}: {exc}"
                if "CRC" in str(exc):
                    self.recovery_stats["crc_errors"] += 1
                pending_invalid += 1
                continue
            if poisoned_at is not None:
                raise WalCorruptionError(
                    f"WAL corruption in {self.path!r}: valid record after "
                    f"invalid data ({poisoned_at})"
                )
            if seq is not None:
                max_seq = max(max_seq, seq)
            if record["t"] == "commit":
                committed_end = end_offset
                if seq is not None and seq <= min_seq:
                    self.recovery_stats["skipped_groups"] += 1
                else:
                    for op in group:
                        apply(op)
                        applied += 1
                    self.recovery_stats["replayed_ops"] += len(group)
                group = []
                group_seq = None
            else:
                if not group:
                    group_seq = seq
                group.append(record)
        # Anything after the last commit marker — valid uncommitted records
        # and/or a torn final write — is discarded, not corruption.  Make
        # the discard durable by truncating it away: the next commit is
        # appended at EOF, so leftover tail bytes would otherwise turn that
        # acknowledged group into a same-line continuation (torn fragment)
        # or a group-seq-mismatching suffix (orphan records) on reopen.
        self.recovery_stats["torn_tail_records"] += pending_invalid
        if log_end > committed_end:
            self._io.ftruncate(self._fd, committed_end)
            os.lseek(self._fd, 0, os.SEEK_END)
            if self._fsync:
                self._io.fsync(self._fd)
            self.recovery_stats["tail_truncated_bytes"] += log_end - committed_end
        self.next_seq = max(self.next_seq, max_seq + 1, min_seq + 1)
        return applied

    def truncate(self) -> None:
        """Erase the log (after a checkpoint has made data files current)."""
        if self._fd is None:
            raise StorageError("WAL is closed")
        self._io.ftruncate(self._fd, 0)
        os.lseek(self._fd, 0, os.SEEK_END)
        if self._fsync:
            self._io.fsync(self._fd)

    def close(self) -> None:
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None
