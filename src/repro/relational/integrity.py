"""Crash consistency: the checkpoint journal and integrity checking.

**Checkpoint journal.**  A checkpoint must atomically move *all* heap
files, the catalog, and the WAL from one consistent state to the next, but
it writes many files.  The protocol (see docs/INTERNALS.md) makes the
catalog rename the single commit point by journaling heap page pre-images
first:

1. write ``ckpt.journal``: the old size of every heap with dirty pages,
   plus the on-disk pre-image of every dirty page, sealed by a CRC-32
   ``end`` record; fsync;
2. flush + fsync the heaps;
3. atomically replace ``catalog.json`` (now carrying ``checkpoint_seq`` =
   the WAL's last committed group) — **the commit point**;
4. truncate the WAL;
5. delete the journal.

Recovery inverts it: a *complete* journal whose seq is newer than the
catalog's means the crash hit before the commit point, so the pre-images
roll the heaps back to the previous checkpoint and the WAL replays over
them; a complete journal at or behind the catalog means the checkpoint
committed, so the heaps are current and replay skips everything the
catalog covers.  An incomplete journal means the heaps were never touched.
Every step is idempotent, so a crash during recovery itself re-runs
cleanly.

**Integrity checking.**  :func:`check_database` walks every heap, index,
foreign key, and the catalog file, returning an :class:`IntegrityReport`
of findings — the report backing ``Database.integrity_check()`` and the
read-only degradation banner.
"""

from __future__ import annotations

import base64
import binascii
import json
import os
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from repro.errors import ForeignKeyError, StorageError
from repro.relational.faults import DEFAULT_IO, IOShim
from repro.relational.pager import PAGE_SIZE

JOURNAL_NAME = "ckpt.journal"


# ---------------------------------------------------------------------------
# Checkpoint journal
# ---------------------------------------------------------------------------

def write_checkpoint_journal(
    journal_path: str,
    seq: int,
    pagers: Mapping[str, Any],
    io: Optional[IOShim] = None,
) -> bool:
    """Capture pre-images of every dirty page before a checkpoint flush.

    Returns False (writing nothing) when no pager has dirty pages — the
    flush will not touch the heaps, so there is nothing to undo.
    """
    io = io if io is not None else DEFAULT_IO
    entries: List[str] = []
    files: List[Dict[str, Any]] = []
    for name, pager in sorted(pagers.items()):
        dirty = pager.dirty_pages()
        if not dirty:
            continue
        on_disk = pager.disk_page_count()
        files.append({"name": os.path.basename(pager.path), "pages": on_disk})
        for page_no in dirty:
            if page_no >= on_disk:
                continue  # freshly allocated: rollback = truncate
            image = pager.read_page_from_disk(page_no)
            entries.append(
                json.dumps(
                    {
                        "t": "page",
                        "file": os.path.basename(pager.path),
                        "page": page_no,
                        "data": base64.b64encode(image).decode("ascii"),
                    }
                )
            )
    if not files:
        return False
    head = json.dumps({"t": "begin", "v": 1, "seq": seq, "files": files})
    body = "\n".join([head] + entries) + "\n"
    seal = json.dumps({"t": "end", "crc": zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF})
    payload = (body + seal + "\n").encode("utf-8")
    fd = io.open(journal_path, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
    try:
        io.write_all(fd, payload)
        io.fsync(fd)
    finally:
        os.close(fd)
    return True


def read_checkpoint_journal(journal_path: str) -> Optional[Dict[str, Any]]:
    """Load and validate a journal; None when absent or incomplete.

    An incomplete journal (missing/invalid ``end`` seal or CRC mismatch)
    means the crash happened while writing it — before any heap page was
    overwritten — so it carries no information worth recovering.
    """
    try:
        with open(journal_path, "rb") as fh:
            raw = fh.read()
    except FileNotFoundError:
        return None
    lines = raw.split(b"\n")
    while lines and not lines[-1].strip():
        lines.pop()
    if len(lines) < 2:
        return None
    body = b"\n".join(lines[:-1]) + b"\n"
    try:
        seal = json.loads(lines[-1])
        if seal.get("t") != "end" or seal.get("crc") != (zlib.crc32(body) & 0xFFFFFFFF):
            return None
        head = json.loads(lines[0])
        if head.get("t") != "begin":
            return None
        pages = []
        for line in lines[1:-1]:
            record = json.loads(line)
            if record.get("t") != "page":
                return None
            pages.append(record)
    except (json.JSONDecodeError, UnicodeDecodeError, ValueError):
        return None
    return {"seq": head.get("seq", 0), "files": head.get("files", []), "pages": pages}


def rollback_checkpoint_journal(
    journal: Dict[str, Any], directory: str, io: Optional[IOShim] = None
) -> int:
    """Restore heap files to their pre-checkpoint state; returns pages restored.

    Idempotent: truncating to the recorded size and rewriting the recorded
    pre-images lands in the same state no matter how often it runs.
    """
    io = io if io is not None else DEFAULT_IO
    restored = 0
    images: Dict[str, List[Dict[str, Any]]] = {}
    for record in journal["pages"]:
        images.setdefault(record["file"], []).append(record)
    for entry in journal["files"]:
        path = os.path.join(directory, entry["name"])
        try:
            fd = io.open(path, os.O_RDWR | os.O_CREAT, 0o644)
        except OSError as exc:
            raise StorageError(f"cannot roll back heap {path!r}: {exc}") from exc
        try:
            io.ftruncate(fd, entry["pages"] * PAGE_SIZE)
            for record in images.get(entry["name"], ()):
                try:
                    image = base64.b64decode(record["data"], validate=True)
                except (binascii.Error, ValueError) as exc:
                    raise StorageError(
                        f"checkpoint journal page for {path!r} is corrupt: {exc}"
                    ) from exc
                os.lseek(fd, record["page"] * PAGE_SIZE, os.SEEK_SET)
                io.write_all(fd, image)
                restored += 1
            io.fsync(fd)
        finally:
            os.close(fd)
    return restored


def clear_checkpoint_journal(journal_path: str, io: Optional[IOShim] = None) -> None:
    io = io if io is not None else DEFAULT_IO
    try:
        io.remove(journal_path)
    except FileNotFoundError:
        pass


# ---------------------------------------------------------------------------
# Integrity checking
# ---------------------------------------------------------------------------

@dataclass
class IntegrityFinding:
    """One verified problem (or recorded corruption event)."""

    component: str  #: "catalog" | "heap" | "index" | "fk" | "wal" | "journal"
    object: str     #: table/index/file the finding is about
    message: str

    def to_dict(self) -> Dict[str, str]:
        return {"component": self.component, "object": self.object, "message": self.message}


@dataclass
class IntegrityReport:
    """The outcome of ``Database.integrity_check()``."""

    findings: List[IntegrityFinding] = field(default_factory=list)
    read_only: bool = False
    #: what the active scan covered: tables, rows, indexes, fk_rows
    checked: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.findings

    def add(self, component: str, obj: str, message: str) -> None:
        self.findings.append(IntegrityFinding(component, obj, message))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ok": self.ok,
            "read_only": self.read_only,
            "checked": dict(self.checked),
            "findings": [f.to_dict() for f in self.findings],
        }

    def to_lines(self) -> List[str]:
        state = "READ-ONLY" if self.read_only else "read-write"
        lines = [f"integrity: {'OK' if self.ok else 'CORRUPT'} ({state})"]
        lines.append(
            "checked: "
            + ", ".join(f"{k}={v}" for k, v in sorted(self.checked.items()))
        )
        for finding in self.findings:
            lines.append(f"  [{finding.component}] {finding.object}: {finding.message}")
        return lines


def check_database(db) -> IntegrityReport:
    """Scan every table, index, and foreign key of *db* for inconsistencies.

    Merges the corruption events recorded when the database was opened
    (bad WAL CRC, unloadable catalog/heap) with an active verification
    pass over the loaded state.
    """
    report = IntegrityReport(read_only=getattr(db, "read_only", False))
    for event in getattr(db, "_corruption_events", ()):
        report.add(event.get("component", "?"), event.get("object", "?"), event.get("message", ""))

    # Catalog file parses?
    if db.path is not None:
        catalog_path = os.path.join(db.path, "catalog.json")
        if os.path.exists(catalog_path):
            try:
                with open(catalog_path, "r", encoding="utf-8") as fh:
                    json.load(fh)
            except (json.JSONDecodeError, UnicodeDecodeError, OSError) as exc:
                report.add("catalog", "catalog.json", f"unparseable: {exc}")

    tables = rows_seen = indexes_seen = fk_rows = 0
    for table in db.catalog.tables():
        tables += 1
        scanned = []
        try:
            # The batched scan is the verification path: it exercises the
            # same page-at-a-time decode the vectorized executor uses.
            for batch in table.scan_batched():
                scanned.extend(batch)
                for rid, row in batch:
                    if len(row) != table.schema.arity:
                        report.add(
                            "heap", table.name,
                            f"row {rid} has {len(row)} columns, schema has {table.schema.arity}",
                        )
        except Exception as exc:
            report.add("heap", table.name, f"scan failed: {exc}")
            continue
        rows_seen += len(scanned)

        for index in table.indexes.values():
            indexes_seen += 1
            if len(index) != len(scanned):
                report.add(
                    "index", index.name,
                    f"{len(index)} entries for {len(scanned)} rows in {table.name!r}",
                )
            positions = [table.schema.column_index(c) for c in index.columns]
            for rid, row in scanned:
                key = tuple(row[p] for p in positions)
                try:
                    if rid not in index.lookup(key):
                        report.add(
                            "index", index.name,
                            f"row {rid} with key {key!r} missing from index",
                        )
                except Exception as exc:
                    report.add("index", index.name, f"lookup failed for {key!r}: {exc}")

        if table.schema.foreign_keys:
            for _rid, row in scanned:
                fk_rows += 1
                try:
                    db._check_fk_child_side(table, row)
                except ForeignKeyError as exc:
                    report.add("fk", table.name, str(exc))
                except Exception as exc:
                    report.add("fk", table.name, f"check failed: {exc}")

    report.checked = {
        "tables": tables,
        "rows": rows_seen,
        "indexes": indexes_seen,
        "fk_rows": fk_rows,
    }
    return report
