"""From-scratch relational engine: storage, indexes, algebra, planner, txns."""

from repro.relational.database import Database, Result
from repro.relational.planner import PlannerConfig
from repro.relational.schema import Column, ForeignKey, TableSchema
from repro.relational.types import ColumnType

__all__ = [
    "Database",
    "Result",
    "PlannerConfig",
    "Column",
    "ForeignKey",
    "TableSchema",
    "ColumnType",
]
