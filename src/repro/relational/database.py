"""The public database facade: SQL execution, DML through views, durability.

:class:`Database` wires together the catalog, planner, executor, transaction
manager, and (for on-disk databases) the write-ahead log.  It is the only
entry point the windowing/forms layers use.

Two backends share every code path above storage:

* ``Database()`` — in-memory (MemoryPager heaps, no WAL);
* ``Database(path="/some/dir")`` — a directory holding ``catalog.json``,
  one ``<table>.heap`` file per table, and ``wal.log``.  Recovery replays
  the WAL over the last checkpoint on open.

Statement-level atomicity: every statement (or programmatic DML call) either
fully applies or fully rolls back, whether or not an explicit transaction is
open.
"""

from __future__ import annotations

import contextlib
import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Sequence, Set, Tuple, Union

from repro.errors import (
    BindError,
    CatalogError,
    DatabaseError,
    ExecutionError,
    ForeignKeyError,
    ReadOnlyError,
    SqlError,
    StatementTimeoutError,
    StorageError,
    TransactionError,
)
from repro.obs import Registry, SlowLog, Tracer, get_registry, instrument, render_analyze
from repro.obs.analyze import operator_rows
from repro.obs.statlog import (
    JsonlSink,
    StatementLog,
    fingerprint_sql,
    plan_fingerprint,
)
from repro.relational import expr as E
from repro.relational import exprcompile
from repro.relational.algebra import EXEC_METRICS, Operator
from repro.relational.catalog import SYSTEM_TABLE_NAMES, Catalog
from repro.relational.faults import DEFAULT_IO, IOShim
from repro.relational.heap import HeapFile, RowId
from repro.relational.integrity import (
    IntegrityReport,
    check_database,
    clear_checkpoint_journal,
    JOURNAL_NAME,
    read_checkpoint_journal,
    rollback_checkpoint_journal,
    write_checkpoint_journal,
)
from repro.relational.pager import DEFAULT_PREFETCH_PAGES, FilePager, MemoryPager
from repro.relational.plancache import CacheEntry, PlanCache
from repro.relational.segments import DEFAULT_SEGMENT_ROWS
from repro.relational.planner import Planner, PlannerConfig
from repro.relational.schema import Column, ForeignKey, TableSchema
from repro.relational.table import Table
from repro.relational.txn import TransactionManager
from repro.relational.types import ColumnType
from repro.relational.wal import WriteAheadLog
from repro.sql import ast_nodes as A
from repro.sql.parser import parse_prepared, parse_script, parse_statement
from repro.views.definition import ViewDefinition
from repro.views.update import UpdatableViewInfo, analyze_updatability

Row = Tuple[Any, ...]


@dataclass
class Result:
    """The outcome of one statement."""

    columns: List[str] = field(default_factory=list)
    rows: List[Row] = field(default_factory=list)
    rowcount: int = 0
    plan: Optional[str] = None

    def scalar(self) -> Any:
        """The single value of a 1x1 result (raises otherwise)."""
        if len(self.rows) != 1 or len(self.rows[0]) != 1:
            raise ExecutionError(
                f"scalar() needs a 1x1 result, got {len(self.rows)} rows"
            )
        return self.rows[0][0]

    def mappings(self) -> List[Dict[str, Any]]:
        """Rows as column-name dicts."""
        return [dict(zip(self.columns, row)) for row in self.rows]


class PreparedStatement:
    """A parsed (and, for SELECTs, planned) statement with ``?`` parameters.

    Obtained from :meth:`Database.prepare`.  The handle owns the live
    :class:`~repro.relational.expr.Param` nodes embedded in its AST;
    :meth:`execute` assigns their values and runs the statement without
    re-lexing or re-parsing.  For cacheable SELECTs the physical plan is
    kept on the handle and reused until the database's plan generation
    moves (DDL, ANALYZE, or a planner-config change), at which point the
    next execute re-plans transparently.
    """

    def __init__(
        self,
        db: "Database",
        sql: str,
        statement: A.Statement,
        params: Sequence[E.Param],
    ) -> None:
        self._db = db
        self.sql = sql
        self.statement = statement
        self._params = tuple(params)
        #: plan slot managed by Database._select_plan
        self._plan: Optional[Any] = None
        self._plan_generation: Optional[int] = None
        #: statement fingerprint, filled by Database.prepare when the
        #: statement log is capturing
        self.fingerprint: Optional[str] = None

    @property
    def param_count(self) -> int:
        return len(self._params)

    def execute(self, args: Sequence[Any] = ()) -> Result:
        """Bind *args* to the ``?`` markers (in order) and run."""
        if len(args) != len(self._params):
            raise SqlError(
                f"prepared statement takes {len(self._params)} parameter(s), "
                f"got {len(args)}"
            )
        for param, value in zip(self._params, args):
            param.set(value)
        return self._db._execute_prepared(self)

    def query(self, args: Sequence[Any] = ()) -> List[Row]:
        """Shorthand: execute and return the rows."""
        return self.execute(args).rows


class _RowBudget:
    """Per-statement row budget — the statement-timeout mechanism.

    A wall-clock timer cannot interrupt a Python thread that is deep in
    engine code, so statement timeouts are enforced as *work* limits:
    every executor batch charges the budget, and blowing it raises
    :class:`StatementTimeoutError` mid-statement (statement-level
    atomicity then rolls the partial effects back).  Deliberately not
    retryable — the same statement over the same data blows the same
    budget.
    """

    __slots__ = ("limit", "consumed")

    def __init__(self, limit: int) -> None:
        self.limit = limit
        self.consumed = 0

    def charge(self, rows: int) -> None:
        self.consumed += rows
        if self.consumed > self.limit:
            raise StatementTimeoutError(
                f"statement cancelled: row budget exhausted "
                f"({self.consumed} rows processed, limit {self.limit})"
            )


class Database:
    """A relational database instance (see module docstring)."""

    def __init__(
        self,
        path: Optional[str] = None,
        fsync: bool = True,
        planner_config: Optional[PlannerConfig] = None,
        obs: Optional[Registry] = None,
        slow_ms: Optional[float] = None,
        slow_capacity: Optional[int] = None,
        plan_cache_size: int = 128,
        statlog_capacity: int = 256,
        statlog_path: Optional[str] = None,
        statlog_sample_every: int = 0,
        io: Optional[IOShim] = None,
        pool_size: int = 256,
        prefetch_pages: int = DEFAULT_PREFETCH_PAGES,
        segment_cache_rows: int = DEFAULT_SEGMENT_ROWS,
    ) -> None:
        self.path = path
        #: I/O shim every durability-relevant call goes through; tests
        #: inject a FaultInjector here (see repro.relational.faults)
        self._io = io if io is not None else DEFAULT_IO
        #: buffer-pool page target per heap file (the pool grows past it
        #: only while dirty/pinned pages forbid eviction)
        self.pool_size = pool_size
        #: read-ahead window for sequential scans (0 disables prefetch
        #: and the pinned-scan path with it)
        self.prefetch_pages = prefetch_pages
        #: per-table cap on columnar-segment-cache rows (0 disables)
        self.segment_cache_rows = segment_cache_rows
        #: True once corruption was detected: every write path refuses
        #: with ReadOnlyError, checkpoints become no-ops, and close()
        #: leaves the (possibly damaged, still diagnosable) files alone
        self.read_only = False
        #: corruption events recorded while opening or checkpointing;
        #: surfaced through integrity_check() and
        #: metrics_snapshot()["integrity"]
        self._corruption_events: List[Dict[str, str]] = []
        #: the WAL group sequence the last durable checkpoint covered
        self._checkpoint_seq = 0
        #: observability: metrics registry (shared process default unless a
        #: private one is injected), per-database slow log, and a tracer
        #: whose span stack is shared with the UI layers' tracers
        self.obs = obs if obs is not None else get_registry()
        slow_kwargs: Dict[str, Any] = {}
        if slow_ms is not None:
            slow_kwargs["threshold_ms"] = slow_ms
        if slow_capacity is not None:
            slow_kwargs["capacity"] = slow_capacity
        self.slow_log = SlowLog(**slow_kwargs)
        self.tracer = Tracer(self.obs, slow_log=self.slow_log)
        self._pagers: Dict[str, FilePager] = {}
        #: engine latch: one statement at a time touches the internal
        #: structures (catalog, heaps, caches).  Held for the duration of
        #: a statement, never across a lock wait — the session layer's
        #: LockManager queues transactions *before* taking the latch, so
        #: blocked sessions cannot wedge running ones.  Re-entrant because
        #: statements nest (DDL checkpoints, telemetry rebuilds).
        #: Under WOW_LOCK_CHECK=1 the latch is wrapped by the dynamic lock
        #: checker (deferred import: repro.analysis needs this package).
        from repro.analysis.concurrency import dynlock

        self._latch = dynlock.maybe_wrap_latch(threading.RLock())
        #: statement row budget (None = unlimited); see _RowBudget
        self.statement_max_rows: Optional[int] = None
        self._row_budget: Optional[_RowBudget] = None
        #: the session id the current statement runs under (the session
        #: layer sets it around each statement; telemetry captures it)
        self._current_session_id: Optional[int] = None
        #: attached repro.session.SessionManager, None in embedded use
        self.session_manager: Optional[Any] = None
        self.txn = TransactionManager()
        self.txn.on_undo_failure.append(self._on_undo_failure)
        self.planner_config = planner_config or PlannerConfig()
        if path is None:
            self.catalog = Catalog()
            self.wal: Optional[WriteAheadLog] = None
        else:
            os.makedirs(path, exist_ok=True)
            self.catalog = Catalog(heap_factory=self._disk_heap)
            # A leftover checkpoint journal means a crash mid-checkpoint:
            # settle the heap files before anything reads them.
            self._recover_checkpoint_journal()
            self.wal = WriteAheadLog(
                os.path.join(path, "wal.log"), fsync=fsync, io=self._io
            )
            self._load_catalog()
            self._remove_orphan_heaps()
            self._recover()
        self.planner = Planner(self.catalog, self.planner_config)
        # ANALYZE statistics persisted in the catalog document are parsed by
        # _load_catalog (which runs before the planner exists) and applied
        # here; plans from restored stats match the pre-restart ones.
        loaded_stats = getattr(self, "_loaded_stats", None)
        if loaded_stats:
            self.planner.stats.update(loaded_stats)
        self._loaded_stats = None
        # Wire the DP enumerator's per-candidate hook to the static plan
        # verifier (active under WOW_VERIFY_PLANS / verify_plans()).
        self.planner.verify_candidate = self._maybe_verify_plan
        #: plan fingerprints already re-planned by adaptive feedback — each
        #: misestimated plan shape triggers one re-plan, not a loop
        self._replanned_fps: Set[str] = set()
        #: statement/plan cache; ``plan_cache_size=0`` disables memoization
        #: entirely (every execute re-parses and re-plans, the pre-cache
        #: behaviour — used by benchmarks for before/after comparisons)
        self.plan_cache = PlanCache(capacity=plan_cache_size)
        self._catalog_generation_seen = self.catalog.generation
        #: statement log: every execute/stream captured into a bounded ring
        #: (and optionally a rotating JSONL sink); ``statlog_capacity=0``
        #: turns capture off entirely — the path then costs one branch
        self.statement_log = StatementLog(
            capacity=statlog_capacity,
            sink=(
                JsonlSink(statlog_path, io=self._io)
                if statlog_path is not None
                else None
            ),
            sample_every=statlog_sample_every,
            io=self._io,
        )
        from repro.obs.systables import register_telemetry_tables

        register_telemetry_tables(self)
        self._apply_storage_limits()
        if self.wal is not None:
            self.txn.on_commit.append(self.wal.commit)
            self.txn.on_rollback.append(self.wal.discard_pending)
        #: txn managers this database created (the default one plus one
        #: per live session) — metrics aggregation walks these; closed
        #: sessions fold their counters into _retired_txn_stats
        self._txn_managers: List[TransactionManager] = [self.txn]
        self._retired_txn_stats: Dict[str, int] = {}
        #: statement counters for tests/benchmarks
        self.stats = {"selects": 0, "inserts": 0, "updates": 0, "deletes": 0}
        #: open savepoints: name -> (txn mark, wal mark)
        self._savepoints: Dict[str, Tuple[int, int]] = {}
        if not hasattr(self, "auth"):
            from repro.relational.auth import AuthManager

            self.auth = AuthManager()
        #: the user statements execute as; 'dba' is the superuser
        self.current_user = "dba"

    def set_user(self, name: str) -> None:
        """Switch the session user (authentication was the OS's job in 1983)."""
        self.current_user = name.lower()

    def set_planner_config(self, config: PlannerConfig) -> None:
        """Swap the planner configuration, invalidating every cached plan.

        In-place mutation of :attr:`planner_config` is also safe — the
        config fingerprint is part of every cache key — but this is the
        supported way to change configuration at runtime, and it bumps the
        cache generation so prepared-statement plans re-plan too.
        """
        self.planner_config = config
        self.planner.config = config
        self._invalidate_plans()

    # ------------------------------------------------------------------
    # SQL entry points
    # ------------------------------------------------------------------

    def execute(self, sql: str) -> Result:
        """Parse and execute a single SQL statement.

        Parsed ASTs — and, for cacheable SELECTs, physical plans — are
        memoized in :attr:`plan_cache`, keyed on the normalized statement
        text and the planner-config fingerprint.  DDL, ``ANALYZE``, and
        planner-config changes invalidate every cached entry; plain DML
        does not (plans read live tables, so data changes are always
        visible).
        """
        with self._latch:
            return self._execute_locked(sql)

    def _execute_locked(self, sql: str) -> Result:
        self._begin_row_budget()
        log = self.statement_log
        capture = (
            log.begin(
                self._pages_read_total(),
                self.plan_cache.stats["hits"],
                self.plan_cache.stats["misses"],
                session=self._current_session_id,
            )
            if log.enabled
            else None
        )
        try:
            entry = self._lookup_statement(sql)
            statement = entry.statement
            tags: Dict[str, Any] = {"stmt": type(statement).__name__}
            if entry.fingerprint is not None:
                # The statement fingerprint rides on the span so slow-log
                # entries join against _statements.
                tags["fp"] = entry.fingerprint
            if capture is not None:
                log.describe(
                    capture, sql, entry.fingerprint, type(statement).__name__
                )
            with self.tracer.span("db.execute", tags) as span:
                result = self._execute_statement(statement, sql, cache_entry=entry)
                span.tag("rows", result.rowcount)
        except BaseException as exc:
            if capture is not None:
                self._finish_capture(capture, None, error=exc)
            raise
        if capture is not None:
            self._finish_capture(capture, result.rowcount)
        return result

    def execute_script(self, sql: str) -> List[Result]:
        """Execute a ';'-separated script; returns one Result per statement."""
        with self._latch:
            self._begin_row_budget()
            return [self._execute_statement(s, sql) for s in parse_script(sql)]

    def query(self, sql: str) -> List[Row]:
        """Shorthand: execute a SELECT and return its rows."""
        return self.execute(sql).rows

    def prepare(self, sql: str) -> PreparedStatement:
        """Parse *sql* once into a reusable handle with ``?`` parameters.

        The forms runtime's hot path: refresh/scroll/picklist queries are
        prepared once per statement shape and re-executed with new
        parameter values, skipping the lexer, parser, and (until the next
        DDL/ANALYZE/config change) the planner.
        """
        statement, params = parse_prepared(sql)
        handle = PreparedStatement(self, sql, statement, params)
        if self.statement_log.enabled:
            handle.fingerprint = fingerprint_sql(sql)
        return handle

    def stream(self, sql: str) -> Tuple[List[str], Iterator[Row]]:
        """Execute a SELECT lazily: (column names, row iterator).

        Rows are produced as the plan pulls them — nothing is materialised
        up front, so huge scans cost O(1) memory.  Do not run DML on the
        tables being scanned while the iterator is live.  Only the
        planning phase runs under the engine latch; the returned iterator
        pulls rows outside it, so streams are for embedded single-session
        use (the session layer materialises instead).
        """
        with self._latch:
            return self._stream_locked(sql)

    def _stream_locked(self, sql: str) -> Tuple[List[str], Iterator[Row]]:
        self._begin_row_budget()
        log = self.statement_log
        capture = (
            log.begin(
                self._pages_read_total(),
                self.plan_cache.stats["hits"],
                self.plan_cache.stats["misses"],
                session=self._current_session_id,
            )
            if log.enabled
            else None
        )
        try:
            entry = self._lookup_statement(sql)
            statement = entry.statement
            if not isinstance(statement, A.Select):
                raise SqlError("stream() takes a single SELECT")
            self._check_select_privileges(statement)
            plan = self._select_plan(statement, cache_entry=entry)
        except BaseException as exc:
            if capture is not None:
                self._finish_capture(capture, None, error=exc)
            raise
        self.stats["selects"] += 1
        if capture is None:
            return plan.layout.names(), self._iter_rows(plan)
        log.describe(capture, sql, entry.fingerprint, "Select")
        log.note_plan(plan)
        # The capture detaches here and finishes when the iterator drains —
        # a long-lived stream must not swallow captures of statements that
        # execute while it is open.
        log.detach(capture)
        return plan.layout.names(), self._stream_rows(plan, capture)

    def _stream_rows(self, plan: Any, capture: Any) -> Iterator[Row]:
        """Drain a streamed plan, finishing its statement capture."""
        produced = 0
        try:
            for row in self._iter_rows(plan):
                produced += 1
                yield row
        except BaseException as exc:
            self._finish_capture(capture, produced, error=exc)
            raise
        self._finish_capture(capture, produced)

    # -- statement/plan cache plumbing --------------------------------------

    def _plan_generation(self) -> int:
        """The current plan-cache generation.

        Folds in out-of-band catalog changes (code that mutates
        ``db.catalog`` directly, bypassing SQL DDL): whenever the catalog's
        own generation has moved since we last looked, every cached plan is
        invalidated here before anyone can be served a stale one.
        """
        if self.catalog.generation != self._catalog_generation_seen:
            self._invalidate_plans()
        return self.plan_cache.generation

    def _invalidate_plans(self) -> None:
        """Bump the plan-cache generation (and absorb the catalog's)."""
        self.plan_cache.invalidate()
        self._catalog_generation_seen = self.catalog.generation
        # DDL may have created tables; size their segment stores too.
        self._apply_storage_limits()

    def _apply_storage_limits(self) -> None:
        """Push the database's cache knobs onto every table's stores."""
        for table in self.catalog.tables():
            store = getattr(table, "segments", None)
            if store is None:
                continue
            store.max_rows = self.segment_cache_rows
            if self.segment_cache_rows <= 0:
                store.clear()

    def _lookup_statement(self, sql: str) -> CacheEntry:
        """The cache entry for *sql*, parsing and registering on a miss."""
        self._plan_generation()  # sync before the lookup, never after
        key = self.plan_cache.key(sql, self.planner_config.fingerprint())
        entry = self.plan_cache.lookup(key)
        if entry is None:
            self.statement_log.note_cache("miss")
            statement = parse_statement(sql)
            entry = self.plan_cache.store(key, statement, None)
        else:
            self.statement_log.note_cache("hit")
        if entry.fingerprint is None and self.statement_log.enabled:
            # One extra lex per cache miss; hits reuse the stored value.
            entry.fingerprint = fingerprint_sql(sql)
        return entry

    def _pages_read_total(self) -> int:
        """Pages fetched across every table's pager (reads + hits + misses).

        Snapshotted at capture begin/finish; the delta is the statement's
        page traffic.
        """
        total = 0
        for table in self.catalog.tables():
            stats = getattr(getattr(table.heap, "_pager", None), "stats", None)
            if stats:
                total += (
                    stats.get("reads", 0)
                    + stats.get("hits", 0)
                    + stats.get("misses", 0)
                )
        return total

    def _finish_capture(
        self,
        capture: Any,
        rows: Optional[int],
        error: Optional[BaseException] = None,
    ) -> None:
        """Complete a statement-log capture with the end-time snapshots."""
        self.statement_log.finish(
            capture,
            rows,
            self._pages_read_total(),
            self.plan_cache.stats["hits"],
            self.plan_cache.stats["misses"],
            error=None if error is None else f"{type(error).__name__}: {error}",
        )

    def _select_plan(
        self,
        select: A.Select,
        cache_entry: Optional[CacheEntry] = None,
        prepared: Optional[PreparedStatement] = None,
    ) -> Any:
        """A physical plan for *select*, served from the cache when safe."""
        generation = self._plan_generation()
        if prepared is not None:
            if prepared._plan is not None and prepared._plan_generation == generation:
                self.plan_cache.stats["hits"] += 1
                self.statement_log.note_cache("hit")
                return prepared._plan
            self.plan_cache.stats["misses"] += 1
            self.statement_log.note_cache("miss")
        elif (
            cache_entry is not None
            and cache_entry.plan is not None
            and cache_entry.generation == generation
        ):
            return cache_entry.plan
        plan = self.planner.plan_select(select)
        self._maybe_verify_plan(plan)
        if self._plan_cacheable(select):
            if prepared is not None:
                prepared._plan = plan
                prepared._plan_generation = generation
            elif cache_entry is not None and cache_entry.generation == generation:
                cache_entry.plan = plan
        return plan

    @staticmethod
    def _maybe_verify_plan(plan: Any) -> None:
        """Static plan verification on every fresh plan, when switched on
        (``WOW_VERIFY_PLANS=1``; the tier-1 conftest and CI set it)."""
        from repro.analysis import planverify

        planverify.maybe_verify_plan(plan)

    @staticmethod
    def _verify_metrics() -> Dict[str, int]:
        from repro.analysis.planverify import VERIFY_METRICS

        return {
            "plans_verified": VERIFY_METRICS["verified_plans"],
            "plans_rejected": VERIFY_METRICS["rejected_plans"],
        }

    def _plan_cacheable(self, select: A.Select) -> bool:
        """True when re-running *select*'s operator tree is always correct.

        Two constructs freeze transient state into the plan and so forbid
        plan reuse (the AST is still cached): uncorrelated subqueries are
        materialised into literal lists at plan time, and system-table
        scans snapshot the catalog into a throwaway table.  View expansion
        recurses: a view whose definition contains either construct taints
        every statement that reads it.
        """
        from repro.relational.catalog import SYSTEM_TABLE_NAMES
        from repro.sql.parser import AggExpr, SubqueryExpr

        def expr_clean(expr: Any) -> bool:
            if not isinstance(expr, E.Expr):
                if isinstance(expr, A.AggCall):
                    return expr.arg is None or expr_clean(expr.arg)
                return True
            for node in expr.walk():
                if isinstance(node, SubqueryExpr):
                    return False
                if isinstance(node, AggExpr):
                    call = node.call
                    if call.arg is not None and not expr_clean(call.arg):
                        return False
            return True

        def select_clean(sel: A.Select) -> bool:
            sources: List[str] = []
            if sel.from_table is not None:
                sources.append(sel.from_table.name.lower())
            sources.extend(join.table.name.lower() for join in sel.joins)
            for name in sources:
                if name in SYSTEM_TABLE_NAMES:
                    return False
                if self.catalog.has_view(name):
                    if not select_clean(self.catalog.view(name).query):
                        return False
            exprs: List[Any] = [sel.where, sel.having]
            exprs.extend(join.condition for join in sel.joins)
            exprs.extend(sel.group_by)
            exprs.extend(item.expr for item in sel.order_by)
            exprs.extend(item.expr for item in sel.items if item.expr is not None)
            return all(expr is None or expr_clean(expr) for expr in exprs)

        return select_clean(select)

    def _execute_prepared(self, prepared: PreparedStatement) -> Result:
        """Run a prepared statement (parameters already bound by the handle)."""
        with self._latch:
            return self._execute_prepared_locked(prepared)

    def _execute_prepared_locked(self, prepared: PreparedStatement) -> Result:
        self._begin_row_budget()
        statement = prepared.statement
        log = self.statement_log
        capture = (
            log.begin(
                self._pages_read_total(),
                self.plan_cache.stats["hits"],
                self.plan_cache.stats["misses"],
                session=self._current_session_id,
            )
            if log.enabled
            else None
        )
        if capture is not None:
            log.describe(
                capture,
                prepared.sql,
                prepared.fingerprint,
                type(statement).__name__,
                params=[param.value for param in prepared._params],
            )
        tags: Dict[str, Any] = {"stmt": type(statement).__name__, "prepared": True}
        if prepared.fingerprint is not None:
            tags["fp"] = prepared.fingerprint
        try:
            with self.tracer.span("db.execute", tags) as span:
                if isinstance(statement, A.Select):
                    result = self._run_select(statement, prepared=prepared)
                else:
                    result = self._execute_statement(statement, prepared.sql)
                span.tag("rows", result.rowcount)
        except BaseException as exc:
            if capture is not None:
                self._finish_capture(capture, None, error=exc)
            raise
        if capture is not None:
            self._finish_capture(capture, result.rowcount)
        return result

    # ------------------------------------------------------------------
    # Programmatic DML (used by the forms runtime)
    # ------------------------------------------------------------------

    def insert(self, target: str, values: Mapping[str, Any]) -> int:
        """Insert one row into a table **or updatable view**; returns 1."""
        with self._latch:
            self._check_dml_privilege(target, "INSERT")
            with self._atomic():
                self._insert_target(target, dict(values))
            self.stats["inserts"] += 1
            return 1

    def bulk_insert(self, target: str, rows: Sequence[Mapping[str, Any]]) -> int:
        """Insert many rows as one atomic unit (one WAL commit).

        Much faster than per-row :meth:`insert` for loads: the undo/redo
        machinery runs once per batch instead of once per row.
        """
        with self._latch:
            self._check_dml_privilege(target, "INSERT")
            with self._atomic():
                for values in rows:
                    self._insert_target(target, dict(values))
            self.stats["inserts"] += 1
            return len(rows)

    def update(
        self,
        target: str,
        changes: Mapping[str, Any],
        where: Optional[Union[str, E.Expr]] = None,
    ) -> int:
        """Update rows of a table or updatable view; returns the row count."""
        with self._latch:
            self._check_dml_privilege(target, "UPDATE")
            predicate = self._parse_predicate(where)
            with self._atomic():
                count = self._update_target(target, dict(changes), predicate)
            self.stats["updates"] += 1
            return count

    def delete(
        self, target: str, where: Optional[Union[str, E.Expr]] = None
    ) -> int:
        """Delete rows of a table or updatable view; returns the row count."""
        with self._latch:
            self._check_dml_privilege(target, "DELETE")
            predicate = self._parse_predicate(where)
            with self._atomic():
                count = self._delete_target(target, predicate)
            self.stats["deletes"] += 1
            return count

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def vacuum(self, table_name: Optional[str] = None) -> Dict[str, Dict[str, int]]:
        """Compact fragmented heap pages in place; returns per-table stats.

        In-page compaction preserves every RowId (records keep their
        (page, slot) address), so indexes stay valid and no locks beyond
        the engine latch are needed.  The reclaimed space is immediately
        visible to the free-space map, so subsequent inserts fill the
        compacted pages instead of growing the file.  Durability rides the
        normal checkpoint path — vacuum only dirties pool pages.
        """
        with self._latch:
            self._require_writable()
            if table_name is not None:
                if table_name.lower() in SYSTEM_TABLE_NAMES:
                    raise CatalogError(f"cannot vacuum system table {table_name!r}")
                tables = [self.catalog.table(table_name)]
            else:
                tables = self.catalog.tables()
            return {table.name: table.heap.vacuum() for table in tables}

    def checkpoint(self) -> None:
        """Flush all data to disk and truncate the WAL (no-op in memory).

        Protocol (each step's crash behaviour is proven by the exhaustion
        harness in ``tests/test_crash_consistency.py``):

        1. journal pre-images of every dirty heap page (+ fsync);
        2. flush + fsync the heaps;
        3. atomically replace ``catalog.json``, which records
           ``checkpoint_seq`` — the **commit point**;
        4. truncate the WAL;
        5. delete the journal.

        A crash before step 3 rolls the heaps back from the journal and
        replays the intact WAL; a crash after it skips replay of every
        group the new catalog covers.  Read-only (degraded) databases
        never checkpoint — the damaged files stay untouched for forensics.

        An I/O *error* (rather than a crash) mid-checkpoint degrades the
        database to read-only and raises :class:`StorageError`: the heaps
        may be half-flushed, and a retried checkpoint would journal
        contaminated pre-images.  Reopening recovers from the journal and
        WAL like after a crash.
        """
        if self.path is None or self.read_only:
            return
        with self._latch:
            self._checkpoint_locked()

    def _checkpoint_locked(self) -> None:
        if self.txn.active:
            # Flushing mid-transaction would write uncommitted rows into
            # the heaps, breaking the no-steal invariant recovery rests on.
            raise TransactionError("checkpoint inside an open transaction")
        if self.session_manager is not None and self.session_manager.any_txn_dirty():
            # Same invariant, other sessions: a concurrent session with
            # logged-but-uncommitted changes must not reach the heap files.
            # (Under 2PL a dirty session holds its table locks to commit,
            # so DDL-triggered checkpoints never actually race this — the
            # guard catches direct checkpoint() calls.)
            raise TransactionError(
                "checkpoint while a concurrent session transaction holds "
                "uncommitted changes"
            )
        seq = self.wal.last_seq if self.wal is not None else 0
        try:
            write_checkpoint_journal(
                self._journal_path(), seq, self._pagers, io=self._io
            )
            for pager in self._pagers.values():
                pager.flush()
            self._checkpoint_seq = seq
            self._save_catalog()
            if self.wal is not None:
                self.wal.truncate()
            clear_checkpoint_journal(self._journal_path(), io=self._io)
        except OSError as exc:
            # A mid-checkpoint I/O failure leaves no state a *retry* can
            # safely build on: the heaps may be half-flushed, so a second
            # attempt would rewrite the journal with "pre-images" read
            # from half-flushed heaps — post-images that poison rollback.
            # Degrade to read-only instead: the journal and WAL already on
            # disk reopen to the last consistent state, exactly as after a
            # crash at this point (proven by the exhaustion harness).
            self._record_corruption(
                "checkpoint",
                os.path.basename(self.path) or self.path,
                f"checkpoint I/O failed: {exc}",
            )
            raise StorageError(f"checkpoint failed: {exc}") from exc

    def close(self) -> None:
        """Checkpoint (if persistent) and release every file handle.

        A degraded (read-only) database closes **without** flushing: its
        pools hold partially replayed state, and the on-disk files are the
        only trustworthy evidence left.  An open transaction is rolled
        back first — closing is not committing.
        """
        with self._latch:
            self.statement_log.close()
            if self.path is not None:
                if self.txn.active:
                    self.txn.rollback()
                    self._savepoints.clear()
                self.checkpoint()
                for pager in self._pagers.values():
                    pager.close(flush=not self.read_only)
                self._pagers.clear()
                if self.wal is not None:
                    self.wal.close()
                    self.wal = None

    # ------------------------------------------------------------------
    # Statement dispatch
    # ------------------------------------------------------------------

    def _execute_statement(
        self,
        statement: A.Statement,
        sql_text: str,
        cache_entry: Optional[CacheEntry] = None,
    ) -> Result:
        if isinstance(
            statement,
            (
                A.AlterTable, A.CreateTable, A.DropTable, A.CreateIndex,
                A.DropIndex, A.CreateView, A.DropView, A.Grant, A.Revoke,
            ),
        ):
            # DDL and privilege changes rewrite the catalog; a degraded
            # database must not touch its files.  (DML is gated in
            # _check_dml_privilege, which the programmatic API shares.)
            self._require_writable()
        if isinstance(statement, A.Select):
            return self._run_select(statement, cache_entry=cache_entry)
        if isinstance(statement, A.Union):
            for arm in statement.selects:
                self._check_select_privileges(arm)
            plan = self.planner.plan_union(statement)
            self._maybe_verify_plan(plan)
            if self.statement_log.current is not None:
                self.statement_log.note_plan(plan)
            rows = self._collect_rows(plan)
            self.stats["selects"] += 1
            return Result(columns=plan.layout.names(), rows=rows, rowcount=len(rows))
        if isinstance(statement, A.AlterTable):
            return self._run_alter_table(statement)
        if isinstance(statement, (A.Grant, A.Revoke)):
            return self._run_grant_revoke(statement)
        if isinstance(statement, A.Analyze):
            return self._run_analyze(statement)
        if isinstance(statement, A.Savepoint):
            self._create_savepoint(statement.name)
            return Result()
        if isinstance(statement, A.RollbackTo):
            self._rollback_to_savepoint(statement.name)
            return Result()
        if isinstance(statement, A.ReleaseSavepoint):
            self._release_savepoint(statement.name)
            return Result()
        if isinstance(statement, A.Explain):
            if statement.analyze:
                return self._run_explain_analyze(statement.query)
            from repro.analysis.planverify import verify_plan

            plan = self.planner.plan_select(statement.query)
            # EXPLAIN always verifies: a malformed plan fails here with a
            # precise diagnostic instead of rendering a bogus tree.
            verified = verify_plan(plan)
            text = plan.explain() + f"\nPlan verified: {verified} operators ok"
            return Result(plan=text)
        if isinstance(statement, A.Insert):
            return self._run_insert(statement)
        if isinstance(statement, A.Update):
            return self._run_update(statement)
        if isinstance(statement, A.Delete):
            return self._run_delete(statement)
        if isinstance(statement, A.CreateTable):
            return self._run_create_table(statement)
        if isinstance(statement, A.DropTable):
            return self._run_drop_table(statement)
        if isinstance(statement, A.CreateIndex):
            return self._run_create_index(statement)
        if isinstance(statement, A.DropIndex):
            return self._run_drop_index(statement)
        if isinstance(statement, A.CreateView):
            return self._run_create_view(statement, sql_text)
        if isinstance(statement, A.DropView):
            return self._run_drop_view(statement)
        if isinstance(statement, A.Begin):
            self.txn.begin()
            self._savepoints.clear()
            return Result()
        if isinstance(statement, A.Commit):
            self.txn.commit()
            self._savepoints.clear()
            return Result()
        if isinstance(statement, A.Rollback):
            self.txn.rollback()
            self._savepoints.clear()
            return Result()
        raise DatabaseError(f"unhandled statement {type(statement).__name__}")

    # -- savepoints -----------------------------------------------------------

    def _create_savepoint(self, name: str) -> None:
        if not self.txn.active:
            raise TransactionError("SAVEPOINT outside a transaction")
        self._savepoints[name.lower()] = (
            self.txn.mark(),
            self.wal.mark() if self.wal is not None else 0,
        )

    def _rollback_to_savepoint(self, name: str) -> None:
        marks = self._savepoints.get(name.lower())
        if marks is None:
            raise TransactionError(f"no savepoint named {name!r}")
        txn_mark, wal_mark = marks
        self.txn.rollback_to(txn_mark)
        if self.wal is not None:
            self.wal.discard_pending_from(wal_mark)
        # Savepoints created after this one are gone.
        self._savepoints = {
            n: (t, w) for n, (t, w) in self._savepoints.items() if t <= txn_mark
        }

    def _release_savepoint(self, name: str) -> None:
        if self._savepoints.pop(name.lower(), None) is None:
            raise TransactionError(f"no savepoint named {name!r}")

    # -- ALTER TABLE ---------------------------------------------------------

    def _run_alter_table(self, statement: A.AlterTable) -> Result:
        if self.txn.active:
            raise TransactionError("ALTER TABLE is not allowed inside a transaction")
        self._require_ownership(statement.table)
        table = self.catalog.table(statement.table)
        if statement.action == "add":
            return self._alter_add_column(table, statement.column)
        if statement.action == "drop":
            return self._alter_drop_column(table, statement.column_name)
        if statement.action == "rename":
            return self._alter_rename(table, statement.new_name)
        raise DatabaseError(f"unknown ALTER action {statement.action!r}")

    def _dependent_views(self, table_name: str) -> List[str]:
        from repro.relational.catalog import view_dependencies

        return [
            v.name
            for v in self.catalog.views()
            if table_name in view_dependencies(v)
        ]

    def _rebuild_table(
        self,
        old: Table,
        new_schema: TableSchema,
        transform,
        keep_index: Callable[[Any], bool] = lambda index: True,
    ) -> None:
        """Replace *old* with a table of *new_schema*, copying rows through
        *transform* and re-creating surviving secondary indexes."""
        rows = [transform(row) for row in old.rows()]
        secondary = [
            (index.name, "btree" if index.ordered else "hash", index.columns, index.unique)
            for index in old.indexes.values()
            if not index.name.startswith(("pk_", "uq_"))
        ]
        # Drop the old storage.
        self.catalog._tables.pop(old.name)
        pager = self._pagers.pop(old.name, None)
        if pager is not None:
            pager.close()
            with contextlib.suppress(FileNotFoundError):
                self._io.remove(pager.path)
        if new_schema.name != old.name:
            owner = self.auth.owner_of(old.name) or self.current_user
            self.auth.forget_object(old.name)
            self.auth.record_owner(new_schema.name, owner)
        new_table = self.catalog.create_table(new_schema)
        for row in rows:
            new_table.insert(row)
        for name, kind, columns, unique in secondary:
            if all(new_schema.has_column(c) for c in columns) and keep_index(columns):
                new_table.add_index(name, kind, columns, unique)
        self._ddl_checkpoint()

    def _alter_add_column(self, table: Table, column: Column) -> Result:
        if table.schema.has_column(column.name):
            raise CatalogError(
                f"table {table.name!r} already has a column {column.name!r}"
            )
        if not column.nullable and column.default is None and table.count() > 0:
            raise CatalogError(
                "cannot add a NOT NULL column without a DEFAULT to a non-empty table"
            )
        new_schema = TableSchema(
            table.schema.name,
            list(table.schema.columns) + [column],
            primary_key=table.schema.primary_key or None,
            unique=table.schema.unique,
            foreign_keys=table.schema.foreign_keys,
            checks=table.schema.checks,
        )
        self._rebuild_table(table, new_schema, lambda row: row + (column.default,))
        return Result()

    def _alter_drop_column(self, table: Table, column_name: str) -> Result:
        column_name = column_name.lower()
        position = table.schema.column_index(column_name)  # validates
        if column_name in table.schema.primary_key:
            raise CatalogError(f"cannot drop primary-key column {column_name!r}")
        if any(column_name in group for group in table.schema.unique):
            raise CatalogError(f"cannot drop UNIQUE column {column_name!r}")
        if any(column_name in fk.columns for fk in table.schema.foreign_keys):
            raise CatalogError(f"cannot drop foreign-key column {column_name!r}")
        for other in self.catalog.tables():
            for fk in other.schema.foreign_keys:
                if (
                    fk.parent_table.lower() == table.name
                    and column_name in fk.parent_columns
                ):
                    raise CatalogError(
                        f"{other.name!r} references {table.name}.{column_name}"
                    )
        dependants = self._dependent_views(table.name)
        if dependants:
            raise CatalogError(
                f"cannot drop a column of {table.name!r}: views depend on it: "
                f"{dependants}"
            )
        if table.schema.arity == 1:
            raise CatalogError("cannot drop a table's only column")
        new_columns = [
            c for c in table.schema.columns if c.name != column_name
        ]
        new_schema = TableSchema(
            table.schema.name,
            new_columns,
            primary_key=table.schema.primary_key or None,
            unique=table.schema.unique,
            foreign_keys=table.schema.foreign_keys,
            checks=table.schema.checks,
        )
        self._rebuild_table(
            table,
            new_schema,
            lambda row: row[:position] + row[position + 1 :],
        )
        return Result()

    def _alter_rename(self, table: Table, new_name: str) -> Result:
        dependants = self._dependent_views(table.name)
        if dependants:
            raise CatalogError(
                f"cannot rename {table.name!r}: views depend on it: {dependants}"
            )
        for other in self.catalog.tables():
            for fk in other.schema.foreign_keys:
                if fk.parent_table.lower() == table.name and other.name != table.name:
                    raise CatalogError(
                        f"cannot rename {table.name!r}: {other.name!r} references it"
                    )
        new_schema = TableSchema(
            new_name,
            list(table.schema.columns),
            primary_key=table.schema.primary_key or None,
            unique=table.schema.unique,
            foreign_keys=table.schema.foreign_keys,
            checks=table.schema.checks,
        )
        self._rebuild_table(table, new_schema, lambda row: row)
        return Result()

    def _run_analyze(self, statement: A.Analyze) -> Result:
        """Collect optimizer statistics for one table or all tables."""
        from repro.relational.stats import analyze_table

        if statement.table is not None:
            tables = [self.catalog.table(statement.table)]
        else:
            tables = self.catalog.tables()
        for table in tables:
            self.planner.stats[table.name] = analyze_table(table)
        # Fresh statistics can change index and join choices; cached plans
        # made under the old statistics must not survive.
        self._invalidate_plans()
        # Statistics persist in the catalog document: a reopened database
        # plans with the same numbers it closed with.
        if self.path is not None and not self.txn.active:
            self._save_catalog()
        return Result(rowcount=len(tables))

    def _run_grant_revoke(self, statement) -> Result:
        from repro.relational.auth import ALL_PRIVILEGES, Privilege

        self.catalog.resolve(statement.object_name)  # must exist
        if statement.privileges == ["ALL"]:
            privileges = set(ALL_PRIVILEGES)
        else:
            privileges = {Privilege.from_name(p) for p in statement.privileges}
        if isinstance(statement, A.Grant):
            self.auth.grant(
                self.current_user, privileges, statement.object_name, statement.grantee
            )
        else:
            self.auth.revoke(
                self.current_user, privileges, statement.object_name, statement.grantee
            )
        if self.path is not None and not self.txn.active:
            self._save_catalog()
        return Result()

    # -- privilege checks ---------------------------------------------------

    def _referenced_sources(self, select: A.Select) -> List[str]:
        """Object names a SELECT reads: FROM/JOIN entries plus subqueries.

        Access through a view requires privileges on the view only (the
        view executes with its owner's rights) — so view expansion does NOT
        contribute its underlying tables here.
        """
        from repro.relational.catalog import SYSTEM_TABLE_NAMES
        from repro.sql.parser import SubqueryExpr

        names: List[str] = []
        if select.from_table is not None:
            names.append(select.from_table.name.lower())
        names.extend(join.table.name.lower() for join in select.joins)
        exprs = [select.where, select.having]
        exprs.extend(join.condition for join in select.joins)
        exprs.extend(item.expr for item in select.order_by)
        for item in select.items:
            if item.expr is not None and isinstance(item.expr, E.Expr):
                exprs.append(item.expr)
        for expr in exprs:
            if expr is None or not isinstance(expr, E.Expr):
                continue
            for node in expr.walk():
                if isinstance(node, SubqueryExpr):
                    names.extend(self._referenced_sources(node.select))
        return [n for n in names if n not in SYSTEM_TABLE_NAMES]

    def _check_select_privileges(self, select: A.Select) -> None:
        from repro.relational.auth import Privilege

        for name in self._referenced_sources(select):
            self.auth.check(self.current_user, Privilege.SELECT, name)

    def _check_dml_privilege(self, target: str, privilege_name: str) -> None:
        from repro.relational.auth import Privilege

        # Every DML path — SQL or programmatic — funnels through here, so
        # the read-only gate lives here too.
        self._require_writable()
        self.auth.check(
            self.current_user, Privilege(privilege_name), target.lower()
        )

    def _run_explain_analyze(self, select: A.Select) -> Result:
        """EXPLAIN ANALYZE: execute the query with per-operator counters.

        Like PostgreSQL, the statement *runs* the query (so it needs the
        same privileges as the SELECT) but returns only the annotated plan;
        the result's ``rowcount`` reports how many rows the plan produced.
        """
        from repro.analysis.planverify import verify_plan

        self._check_select_privileges(select)
        start = time.perf_counter()
        plan = self.planner.plan_select(select)
        planning_ms = (time.perf_counter() - start) * 1000.0
        verified = verify_plan(plan)
        op_stats = instrument(plan)
        with self.tracer.span("db.explain_analyze") as span:
            start = time.perf_counter()
            if self.planner_config.vectorized:
                produced = sum(len(batch) for batch in plan.rows_batched())
            else:
                produced = sum(1 for _row in plan.rows())
            execution_ms = (time.perf_counter() - start) * 1000.0
            span.tag("rows", produced)
        self.stats["selects"] += 1
        if self.statement_log.enabled:
            # ANALYZE runs always contribute per-operator est/act to the
            # plan-stats aggregate (and to the current capture, if any).
            self.statement_log.note_plan(plan)
            self.statement_log.note_operators(
                plan_fingerprint(plan), operator_rows(plan, op_stats)
            )
            self._consider_replan(plan_fingerprint(plan), select)
        text = render_analyze(
            plan, op_stats, planning_ms, execution_ms,
            plan_cache=self.plan_cache.snapshot(), verified=verified,
            replans=self.planner.metrics["replans"],
        )
        return Result(rowcount=produced, plan=text)

    def _consider_replan(self, plan_fp: str, select: A.Select) -> None:
        """Adaptive feedback: re-plan a statement whose estimates were bad.

        Called after an instrumented execution (a sampled run or EXPLAIN
        ANALYZE) has folded true per-operator cardinalities into the
        ``_plan_stats`` aggregate.  When the worst est-vs-act factor for
        this plan shape reaches ``replan_factor``, the referenced tables
        are re-ANALYZEd and every cached entry holding this plan has its
        plan slot cleared — the statement re-plans under fresh statistics
        on its next execution, while the rest of the cache stays hot.
        """
        config = self.planner_config
        if not config.adaptive_replan or plan_fp in self._replanned_fps:
            return
        worst = self.statement_log.worst_factor_for(plan_fp)
        if worst is None or worst < config.replan_factor:
            return
        if len(self._replanned_fps) >= 1024:  # bound the loop guard
            self._replanned_fps.clear()
        self._replanned_fps.add(plan_fp)
        from repro.relational.stats import analyze_table

        for name in dict.fromkeys(self._referenced_sources(select)):
            if self.catalog.has_table(name):
                self.planner.stats[name] = analyze_table(self.catalog.table(name))
        # The stale aggregates must not re-trigger on the next sample.
        self.statement_log.forget_plan(plan_fp)
        self.plan_cache.drop_plans(
            lambda plan: plan_fingerprint(plan) == plan_fp
        )
        self.planner.metrics["replans"] += 1
        if self.path is not None and not self.txn.active:
            self._save_catalog()

    # ------------------------------------------------------------------
    # Observability API
    # ------------------------------------------------------------------

    def metrics_snapshot(self) -> Dict[str, Any]:
        """A JSON-serialisable dict of every layer's counters.

        Covers storage (pager, WAL, B+-tree), transactions, planner
        decisions, statement counts, the slow log, and the attached metrics
        registry (which carries the forms/windows layer's counters and span
        histograms when this database shares the process default registry).
        """
        pager_stats: Dict[str, int] = {}
        segment_stats: Dict[str, int] = {}
        btree_stats = {"trees": 0, "node_visits": 0, "max_depth": 0}
        for table in self.catalog.tables():
            pager = getattr(table.heap, "_pager", None)
            stats = getattr(pager, "stats", None)
            if stats:
                for key, value in stats.items():
                    pager_stats[key] = pager_stats.get(key, 0) + value
            for key, value in table.heap.free_space_stats().items():
                pager_stats[key] = pager_stats.get(key, 0) + value
            store = getattr(table, "segments", None)
            if store is not None:
                for key, value in store.snapshot().items():
                    segment_stats[key] = segment_stats.get(key, 0) + value
            for index in table.indexes.values():
                tree = getattr(index, "_tree", None)
                if tree is not None:
                    btree_stats["trees"] += 1
                    btree_stats["node_visits"] += tree.node_visits
                    btree_stats["max_depth"] = max(
                        btree_stats["max_depth"], tree.depth()
                    )
        txn_stats: Dict[str, int] = dict(self._retired_txn_stats)
        for manager in self._txn_managers:
            for key, value in manager.stats.items():
                txn_stats[key] = txn_stats.get(key, 0) + value
        return {
            "statements": dict(self.stats),
            "pager": pager_stats,
            "segments": segment_stats,
            "wal": dict(self.wal.stats) if self.wal is not None else {},
            "btree": btree_stats,
            "txn": txn_stats,
            "sessions": (
                self.session_manager.metrics()
                if self.session_manager is not None
                else {"enabled": 0}
            ),
            "planner": dict(self.planner.metrics),
            "plan_cache": self.plan_cache.snapshot(),
            "executor": {
                "vectorized": self.planner_config.vectorized,
                "batches": EXEC_METRICS["batches"],
                "batch_rows": EXEC_METRICS["batch_rows"],
                "exprs_compiled": exprcompile.COMPILE_METRICS["compiled"],
                "exprs_fallback": exprcompile.COMPILE_METRICS["fallback"],
                **self._verify_metrics(),
            },
            "integrity": {
                "read_only": self.read_only,
                "corruption_events": len(self._corruption_events),
                **{
                    f"wal_{key}": value
                    for key, value in (
                        self.wal.recovery_stats if self.wal is not None else {}
                    ).items()
                },
            },
            "slow_log": {
                "threshold_ms": self.slow_log.threshold_ms,
                "entries": len(self.slow_log),
                "dropped": self.slow_log.dropped,
            },
            "statement_log": self.statement_log.snapshot(),
            "registry": self.obs.snapshot(),
            "analysis": self._analysis_metrics(),
        }

    @staticmethod
    def _analysis_metrics() -> Dict[str, Any]:
        """The concurrency analyzer's view: cached static lock-order
        summary + the live dynamic-detector state (WOW_LOCK_CHECK)."""
        from repro.analysis.concurrency import report as _conc_report

        return _conc_report.metrics_section()

    def slow_operations(self) -> List[Dict[str, Any]]:
        """The slow log's entries, oldest first (JSON-serialisable)."""
        return self.slow_log.entries()

    def set_slow_threshold(self, threshold_ms: float) -> None:
        """Operations at or above *threshold_ms* land in the slow log."""
        self.slow_log.threshold_ms = threshold_ms

    def _begin_row_budget(self) -> None:
        """Arm the per-statement row budget (top-level statements only —
        nested plan executions inside one statement share its budget)."""
        limit = self.statement_max_rows
        self._row_budget = _RowBudget(limit) if limit else None

    def _collect_rows(self, plan: Operator) -> List[Row]:
        """Materialise a plan's output through the configured executor mode."""
        budget = self._row_budget
        if not self.planner_config.vectorized:
            if budget is None:
                return list(plan.rows())
            rows = []
            for row in plan.rows():
                budget.charge(1)
                rows.append(row)
            return rows
        rows: List[Row] = []
        extend = rows.extend
        batches = 0
        for batch in plan.rows_batched():
            if budget is not None:
                budget.charge(len(batch))
            extend(batch)
            batches += 1
        EXEC_METRICS["batches"] += batches
        EXEC_METRICS["batch_rows"] += len(rows)
        return rows

    def _iter_rows(self, plan: Operator) -> Iterator[Row]:
        """Lazy row iterator through the configured executor mode."""
        budget = self._row_budget
        if not self.planner_config.vectorized:
            if budget is None:
                return plan.rows()

            def counted() -> Iterator[Row]:
                for row in plan.rows():
                    budget.charge(1)
                    yield row

            return counted()

        def flatten() -> Iterator[Row]:
            for batch in plan.rows_batched():
                if budget is not None:
                    budget.charge(len(batch))
                EXEC_METRICS["batches"] += 1
                EXEC_METRICS["batch_rows"] += len(batch)
                yield from batch

        return flatten()

    def _run_select(
        self,
        select: A.Select,
        cache_entry: Optional[CacheEntry] = None,
        prepared: Optional[PreparedStatement] = None,
    ) -> Result:
        self._check_select_privileges(select)
        log = self.statement_log
        if log.take_sample():
            return self._run_select_sampled(select)
        plan = self._select_plan(select, cache_entry=cache_entry, prepared=prepared)
        if log.current is not None:
            log.note_plan(plan)
        rows = self._collect_rows(plan)
        self.stats["selects"] += 1
        return Result(columns=plan.layout.names(), rows=rows, rowcount=len(rows))

    def _run_select_sampled(self, select: A.Select) -> Result:
        """Every Nth SELECT under ``statlog_sample_every=N``: plan fresh,
        instrument, and record true per-operator est/act cardinalities.

        The plan cache is deliberately bypassed — instrumentation wrappers
        mutate the tree's ``rows`` methods and must never leak into a
        cached (or prepared) plan.
        """
        log = self.statement_log
        plan = self.planner.plan_select(select)
        self._maybe_verify_plan(plan)
        op_stats = instrument(plan)
        rows = self._collect_rows(plan)
        log.note_plan(plan)
        log.note_operators(
            plan_fingerprint(plan), operator_rows(plan, op_stats), sampled=True
        )
        self._consider_replan(plan_fingerprint(plan), select)
        self.stats["selects"] += 1
        return Result(columns=plan.layout.names(), rows=rows, rowcount=len(rows))

    # -- DML statements ------------------------------------------------------

    def _run_insert(self, statement: A.Insert) -> Result:
        self._check_dml_privilege(statement.table, "INSERT")
        schema = self.catalog.schema_of(statement.table)
        if statement.select is not None:
            return self._run_insert_select(statement, schema)
        count = 0
        with self._atomic():
            for value_row in statement.rows:
                values = [_const_value(expr) for expr in value_row]
                if statement.columns is not None:
                    if len(values) != len(statement.columns):
                        raise SqlError(
                            f"INSERT has {len(values)} values for "
                            f"{len(statement.columns)} columns"
                        )
                    mapping = dict(zip(statement.columns, values))
                else:
                    if len(values) != schema.arity:
                        raise SqlError(
                            f"INSERT has {len(values)} values; table "
                            f"{schema.name!r} has {schema.arity} columns"
                        )
                    mapping = dict(zip(schema.column_names, values))
                self._insert_target(statement.table, mapping)
                count += 1
        self.stats["inserts"] += 1
        return Result(rowcount=count)

    def _run_insert_select(self, statement: A.Insert, schema) -> Result:
        """INSERT INTO t [(cols)] SELECT ... — rows map positionally."""
        self._check_select_privileges(statement.select)
        plan = self.planner.plan_select(statement.select)
        target_columns = statement.columns or list(schema.column_names)
        if len(plan.layout) != len(target_columns):
            raise SqlError(
                f"INSERT ... SELECT: query yields {len(plan.layout)} columns "
                f"for {len(target_columns)} target columns"
            )
        # Materialise before writing: the source may be the target table.
        source_rows = self._collect_rows(plan)
        count = 0
        with self._atomic():
            for row in source_rows:
                self._insert_target(
                    statement.table, dict(zip(target_columns, row))
                )
                count += 1
        self.stats["inserts"] += 1
        return Result(rowcount=count)

    def _run_update(self, statement: A.Update) -> Result:
        self._check_dml_privilege(statement.table, "UPDATE")
        changes = {}
        for column, expr in statement.assignments:
            expr = self.planner._resolve_subqueries(expr)
            changes[column] = _const_value(expr) if _is_const(expr) else expr
        with self._atomic():
            count = self._update_target(statement.table, changes, statement.where)
        self.stats["updates"] += 1
        return Result(rowcount=count)

    def _run_delete(self, statement: A.Delete) -> Result:
        self._check_dml_privilege(statement.table, "DELETE")
        with self._atomic():
            count = self._delete_target(statement.table, statement.where)
        self.stats["deletes"] += 1
        return Result(rowcount=count)

    # -- DDL statements ------------------------------------------------------

    def _run_create_table(self, statement: A.CreateTable) -> Result:
        if statement.if_not_exists and self.catalog.has_table(statement.name):
            return Result()
        schema = TableSchema(
            statement.name,
            statement.columns,
            primary_key=statement.primary_key,
            unique=statement.unique,
            foreign_keys=statement.foreign_keys,
            checks=statement.checks,
        )
        for fk in schema.foreign_keys:
            self._validate_fk_target(schema, fk)
        for check in schema.checks:
            # Validate the expression binds against this table's columns.
            E.bind(check, E.RowLayout.for_table(schema.name, schema))
        self.catalog.create_table(schema)
        self.auth.record_owner(schema.name, self.current_user)
        self._ddl_checkpoint()
        return Result()

    def _run_drop_table(self, statement: A.DropTable) -> Result:
        name = statement.name.lower()
        if not self.catalog.has_table(name):
            if statement.if_exists:
                return Result()
            raise CatalogError(f"no table named {name!r}")
        for other in self.catalog.tables():
            if other.name == name:
                continue
            for fk in other.schema.foreign_keys:
                if fk.parent_table.lower() == name:
                    raise CatalogError(
                        f"cannot drop {name!r}: {other.name!r} references it"
                    )
        self._require_ownership(name)
        self.catalog.drop_table(name)
        self.auth.forget_object(name)
        # A later table of the same name must not inherit these statistics.
        self.planner.stats.pop(name, None)
        pager = self._pagers.pop(name, None)
        if pager is not None:
            pager.close(flush=False)
        # The heap file is removed only AFTER the checkpoint makes the
        # table's absence durable in the catalog: a crash in between leaves
        # an orphan file (harmless, re-droppable) rather than a catalog
        # entry pointing at a missing heap.
        self._ddl_checkpoint()
        if pager is not None:
            with contextlib.suppress(FileNotFoundError):
                self._io.remove(pager.path)
        return Result()

    def _require_ownership(self, obj: str) -> None:
        from repro.relational.auth import AuthError

        if not self.auth.is_owner(self.current_user, obj):
            raise AuthError(
                f"user {self.current_user!r} does not own {obj!r}"
            )

    def _run_create_index(self, statement: A.CreateIndex) -> Result:
        self._require_ownership(statement.table)
        table = self.catalog.table(statement.table)
        table.add_index(
            statement.name, statement.kind, statement.columns, statement.unique
        )
        self._ddl_checkpoint()
        return Result()

    def _run_drop_index(self, statement: A.DropIndex) -> Result:
        self._require_ownership(statement.table)
        table = self.catalog.table(statement.table)
        table.drop_index(statement.name)
        self._ddl_checkpoint()
        return Result()

    def _run_create_view(self, statement: A.CreateView, sql_text: str) -> Result:
        # Creating a view requires SELECT on everything it reads.
        self._check_select_privileges(statement.query)
        schema = self.planner.output_schema(statement.query, statement.name)
        if statement.column_names is not None:
            if len(statement.column_names) != schema.arity:
                raise SqlError(
                    f"view column list has {len(statement.column_names)} names "
                    f"for {schema.arity} outputs"
                )
            schema = TableSchema(
                statement.name,
                [
                    Column(new_name, col.ctype, col.nullable, col.default)
                    for new_name, col in zip(statement.column_names, schema.columns)
                ],
            )
        view = ViewDefinition(
            name=statement.name.lower(),
            query=statement.query,
            schema=schema,
            check_option=statement.check_option,
            sql_text=sql_text.strip(),
        )
        if statement.check_option:
            # WITH CHECK OPTION only makes sense on an updatable view.
            analyze_updatability(view, self.catalog)
        self.catalog.create_view(view)
        self.auth.record_owner(view.name, self.current_user)
        self._ddl_checkpoint()
        return Result()

    def _run_drop_view(self, statement: A.DropView) -> Result:
        if not self.catalog.has_view(statement.name):
            if statement.if_exists:
                return Result()
            raise CatalogError(f"no view named {statement.name!r}")
        self._require_ownership(statement.name)
        self.catalog.drop_view(statement.name)
        self.auth.forget_object(statement.name)
        self._ddl_checkpoint()
        return Result()

    def _ddl_checkpoint(self) -> None:
        """Common DDL epilogue: invalidate cached plans, then make durable.

        The invalidation is unconditional — every DDL path (CREATE/DROP
        TABLE/VIEW/INDEX, ALTER) funnels through here, and a generation
        bump is required even when the durability step is skipped (memory
        databases, DDL inside a transaction).  Catalog mutations also bump
        ``catalog.generation``, which :meth:`_plan_generation` folds in;
        this explicit bump covers index DDL, which changes no catalog
        entry but changes what the planner would choose.
        """
        self._invalidate_plans()
        if self.path is not None and not self.txn.active:
            self.checkpoint()

    # ------------------------------------------------------------------
    # Row-level operations with constraint enforcement and logging
    # ------------------------------------------------------------------

    @staticmethod
    def _reject_system_table_dml(target: str) -> None:
        from repro.relational.catalog import SYSTEM_TABLE_NAMES

        if target.lower() in SYSTEM_TABLE_NAMES:
            raise CatalogError(f"system table {target!r} is read-only")

    def _insert_target(self, target: str, values: Dict[str, Any]) -> None:
        self._reject_system_table_dml(target)
        entity = self.catalog.resolve(target)
        if isinstance(entity, ViewDefinition):
            info = analyze_updatability(entity, self.catalog)
            base_values = info.translate_changes(values)
            for column, value in info.predicate_defaults().items():
                base_values.setdefault(column, value)
            row = info.base.schema.row_from_mapping(base_values)
            info.enforce_check_option(row)
            self._apply_insert(info.base, row)
        else:
            row = entity.schema.row_from_mapping(values)
            self._apply_insert(entity, row)

    def _update_target(
        self,
        target: str,
        changes: Dict[str, Any],
        where: Optional[E.Expr],
    ) -> int:
        self._reject_system_table_dml(target)
        entity = self.catalog.resolve(target)
        if isinstance(entity, ViewDefinition):
            return self._update_view(entity, changes, where)
        return self._update_table(entity, changes, where)

    def _delete_target(self, target: str, where: Optional[E.Expr]) -> int:
        self._reject_system_table_dml(target)
        entity = self.catalog.resolve(target)
        if isinstance(entity, ViewDefinition):
            return self._delete_view(entity, where)
        return self._delete_table(entity, where)

    # -- base-table paths ------------------------------------------------

    def _update_table(
        self, table: Table, changes: Dict[str, Any], where: Optional[E.Expr]
    ) -> int:
        victims = self._matching_rids(table, where)
        count = 0
        for rid in victims:
            old_row = table.read(rid)
            new_row = list(old_row)
            for column, value in changes.items():
                position = table.schema.column_index(column)
                new_row[position] = self._change_value(value, table, old_row)
            self._apply_update(table, rid, tuple(new_row))
            count += 1
        return count

    def _delete_table(self, table: Table, where: Optional[E.Expr]) -> int:
        victims = self._matching_rids(table, where)
        for rid in victims:
            self._apply_delete(table, rid)
        return len(victims)

    # -- view paths ----------------------------------------------------------

    def _update_view(
        self, view: ViewDefinition, changes: Dict[str, Any], where: Optional[E.Expr]
    ) -> int:
        info = analyze_updatability(view, self.catalog)
        base_changes = info.translate_changes(
            {k: v for k, v in changes.items()}
        )
        base_where = self._translate_view_predicate(info, where)
        victims = [
            rid
            for rid in self._matching_rids(info.base, base_where)
            if info.row_visible(info.base.read(rid))
        ]
        count = 0
        for rid in victims:
            old_row = info.base.read(rid)
            new_row = list(old_row)
            for column, value in base_changes.items():
                position = info.base.schema.column_index(column)
                new_row[position] = self._change_value(value, info.base, old_row)
            info.enforce_check_option(tuple(new_row))
            self._apply_update(info.base, rid, tuple(new_row))
            count += 1
        return count

    def _delete_view(self, view: ViewDefinition, where: Optional[E.Expr]) -> int:
        info = analyze_updatability(view, self.catalog)
        base_where = self._translate_view_predicate(info, where)
        victims = [
            rid
            for rid in self._matching_rids(info.base, base_where)
            if info.row_visible(info.base.read(rid))
        ]
        for rid in victims:
            self._apply_delete(info.base, rid)
        return len(victims)

    @staticmethod
    def _translate_view_predicate(
        info: UpdatableViewInfo, where: Optional[E.Expr]
    ) -> Optional[E.Expr]:
        """Rewrite a predicate over view columns into base-table columns."""
        if where is None:
            return None

        def fix(node: E.Expr) -> Optional[E.Expr]:
            if isinstance(node, E.ColumnRef):
                base_col = info.column_map.get(node.name)
                if base_col is None:
                    raise BindError(
                        f"view {info.view.name!r} has no column {node.name!r}"
                    )
                return E.ColumnRef(base_col)
            return None

        return E.rewrite(where, fix)

    def _change_value(self, value: Any, table: Table, old_row: Row) -> Any:
        """Evaluate a SET value: a constant or an expression over the old row."""
        if isinstance(value, E.Expr):
            layout = E.RowLayout.for_table(table.name, table.schema)
            return E.bind(value, layout).eval(old_row)
        return value

    def _matching_rids(self, table: Table, where: Optional[E.Expr]) -> List[RowId]:
        """RowIds satisfying *where* (index-accelerated when possible)."""
        if where is None:
            return [rid for rid, _row in table.scan()]
        where = self.planner._resolve_subqueries(where)
        layout = E.RowLayout.for_table(table.name, table.schema)
        conjuncts = E.split_conjuncts(where)
        # Try an equality conjunct with a matching index.
        for conjunct in conjuncts:
            hit = E.const_comparison(conjunct)
            if hit is None or hit[1] != "=" or hit[2] is None:
                continue
            column, _op, value = hit
            if not table.schema.has_column(column.name):
                continue
            index = table.index_on([column.name])
            if index is None:
                continue
            coerced = table.schema.column(column.name).ctype
            bound = E.bind(where, layout)
            rids = []
            from repro.relational.types import coerce

            for rid in index.lookup((coerce(value, coerced),)):
                if bound.eval(table.read(rid)) is True:
                    rids.append(rid)
            return rids
        bound = E.bind(where, layout)
        return [rid for rid, row in table.scan() if bound.eval(row) is True]

    # -- physical ops with FK checks and logging -----------------------------

    def _check_table_checks(self, table: Table, row: Row) -> None:
        """Enforce CHECK constraints: a check fails only on FALSE (not NULL)."""
        from repro.errors import CheckConstraintError

        for check in table.schema.checks:
            layout = E.RowLayout.for_table(table.name, table.schema)
            if E.bind(check, layout).eval(row) is False:
                raise CheckConstraintError(
                    f"row violates CHECK {check.to_sql()} on {table.name!r}"
                )

    def _apply_insert(self, table: Table, row: Row) -> RowId:
        row = table.schema.validate_row(row)
        self._check_table_checks(table, row)
        self._check_fk_child_side(table, row)
        rid = table.insert(row)
        self.txn.log_insert(table, rid)
        if self.wal is not None:
            self.wal.log_insert(table.name, row)
        return rid

    def _apply_delete(self, table: Table, rid: RowId) -> None:
        row = table.read(rid)
        self._check_fk_parent_side(table, row, ignore_rid=rid)
        table.delete(rid)
        self.txn.log_delete(table, row, rid=rid)
        if self.wal is not None:
            self.wal.log_delete(table.name, row)

    def _apply_update(self, table: Table, rid: RowId, new_row: Row) -> RowId:
        new_row = table.schema.validate_row(new_row)
        old_row = table.read(rid)
        if new_row == old_row:
            return rid
        self._check_table_checks(table, new_row)
        self._check_fk_child_side(table, new_row)
        self._check_fk_parent_key_change(table, old_row, new_row, rid)
        new_rid, _ = table.update(rid, new_row)
        self.txn.log_update(table, new_rid, old_row)
        if new_rid != rid:
            self.txn.note_rid_moved(table, rid, new_rid)
        if self.wal is not None:
            self.wal.log_update(table.name, old_row, new_row)
        return new_rid

    # -- foreign keys ------------------------------------------------------

    def _validate_fk_target(self, child_schema: TableSchema, fk: ForeignKey) -> None:
        parent = self.catalog.table(fk.parent_table)  # raises if missing
        for column in fk.parent_columns:
            parent.schema.column(column)
        parent_cols = tuple(c.lower() for c in fk.parent_columns)
        if parent.schema.primary_key != parent_cols and parent_cols not in parent.schema.unique:
            raise CatalogError(
                f"foreign key must reference a primary key or UNIQUE columns "
                f"of {fk.parent_table!r}"
            )

    def _check_fk_child_side(self, table: Table, row: Row) -> None:
        """Every FK value combination must exist in its parent table."""
        for fk in table.schema.foreign_keys:
            key = tuple(
                row[table.schema.column_index(c)] for c in fk.columns
            )
            if any(component is None for component in key):
                continue
            parent = self.catalog.table(fk.parent_table)
            index = parent.index_on(fk.parent_columns)
            if index is not None:
                if index.lookup(key):
                    continue
            else:
                positions = [
                    parent.schema.column_index(c) for c in fk.parent_columns
                ]
                if any(
                    tuple(parent_row[p] for p in positions) == key
                    for parent_row in parent.rows()
                ):
                    continue
            raise ForeignKeyError(
                f"{table.name}.{fk.columns} = {key!r} has no parent in "
                f"{fk.parent_table}({', '.join(fk.parent_columns)})"
            )

    def _check_fk_parent_side(
        self, table: Table, row: Row, ignore_rid: Optional[RowId]
    ) -> None:
        """No child row may still reference *row* (RESTRICT semantics)."""
        for child in self.catalog.tables():
            for fk in child.schema.foreign_keys:
                if fk.parent_table.lower() != table.name:
                    continue
                key = tuple(
                    row[table.schema.column_index(c)] for c in fk.parent_columns
                )
                if any(component is None for component in key):
                    continue
                index = child.index_on(fk.columns)
                if index is not None:
                    referencing = index.lookup(key)
                else:
                    positions = [child.schema.column_index(c) for c in fk.columns]
                    referencing = [
                        rid
                        for rid, child_row in child.scan()
                        if tuple(child_row[p] for p in positions) == key
                    ]
                if referencing:
                    raise ForeignKeyError(
                        f"cannot delete from {table.name!r}: "
                        f"{child.name}.{fk.columns} still references {key!r}"
                    )

    def _check_fk_parent_key_change(
        self, table: Table, old_row: Row, new_row: Row, rid: RowId
    ) -> None:
        """Treat a referenced-key change as a delete of the old key."""
        for child in self.catalog.tables():
            for fk in child.schema.foreign_keys:
                if fk.parent_table.lower() != table.name:
                    continue
                positions = [table.schema.column_index(c) for c in fk.parent_columns]
                old_key = tuple(old_row[p] for p in positions)
                new_key = tuple(new_row[p] for p in positions)
                if old_key != new_key:
                    self._check_fk_parent_side(table, old_row, ignore_rid=rid)
                    return

    # ------------------------------------------------------------------
    # Statement atomicity
    # ------------------------------------------------------------------

    @contextlib.contextmanager
    def _atomic(self) -> Iterator[None]:
        """Make the enclosed DML all-or-nothing."""
        if self.txn.active:
            txn_mark = self.txn.mark()
            wal_mark = self.wal.mark() if self.wal is not None else 0
            try:
                yield
            except Exception:
                self.txn.rollback_to(txn_mark)
                if self.wal is not None:
                    self.wal.discard_pending_from(wal_mark)
                raise
        else:
            self.txn.begin()
            try:
                yield
            except Exception:
                self.txn.rollback()
                raise
            else:
                self.txn.commit()

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def _disk_heap(self, name: str) -> HeapFile:
        pager = FilePager(
            os.path.join(self.path, f"{name}.heap"),
            pool_size=self.pool_size,
            io=self._io,
            prefetch_pages=self.prefetch_pages,
        )
        self._pagers[name] = pager
        return HeapFile(pager)

    def _catalog_path(self) -> str:
        return os.path.join(self.path, "catalog.json")

    def _journal_path(self) -> str:
        return os.path.join(self.path, JOURNAL_NAME)

    # -- corruption handling / read-only degradation ------------------------

    def new_txn_manager(self) -> TransactionManager:
        """A fresh TransactionManager wired exactly like the default one.

        The session layer creates one per session so concurrent
        transactions keep separate undo logs; the WAL hooks and the
        undo-failure degradation hook come pre-attached, and the
        manager's counters feed ``metrics_snapshot()["txn"]``.
        """
        txn = TransactionManager()
        if self.wal is not None:
            txn.on_commit.append(self.wal.commit)
            txn.on_rollback.append(self.wal.discard_pending)
        txn.on_undo_failure.append(self._on_undo_failure)
        self._txn_managers.append(txn)
        return txn

    def retire_txn_manager(self, txn: TransactionManager) -> None:
        """Fold a closed session's txn counters into the lifetime totals."""
        if txn is self.txn or txn not in self._txn_managers:
            return
        self._txn_managers.remove(txn)
        for key, value in txn.stats.items():
            self._retired_txn_stats[key] = (
                self._retired_txn_stats.get(key, 0) + value
            )

    def _on_undo_failure(self, exc: BaseException) -> None:
        """A partial undo left half-rolled-back rows nobody can repair
        in place — record it and degrade to read-only (graceful
        degradation beats silent corruption)."""
        self._record_corruption(
            "txn", "undo-log", f"rollback failed partway: {exc}"
        )

    def _record_corruption(self, component: str, obj: str, message: str) -> None:
        """Note a corruption event and degrade the database to read-only."""
        self._corruption_events.append(
            {"component": component, "object": obj, "message": message}
        )
        self.read_only = True
        self.obs.add("integrity.corruption_events")

    def _require_writable(self) -> None:
        if self.read_only:
            raise ReadOnlyError(
                "database is in read-only mode after corruption was "
                "detected; see Database.integrity_check() for the report"
            )

    def integrity_check(self) -> IntegrityReport:
        """Verify heaps, indexes, FKs, and the catalog; returns a report.

        Includes every corruption event recorded while opening (bad WAL
        CRC, unloadable catalog/heap) plus an active scan of the loaded
        state.  ``report.ok`` is True on a healthy database.
        """
        return check_database(self)

    def _recover_checkpoint_journal(self) -> None:
        """Settle a crash that hit mid-checkpoint (see ``checkpoint()``).

        Runs before the catalog or any heap is opened.  A complete journal
        newer than the on-disk catalog's ``checkpoint_seq`` means the
        catalog rename (the commit point) never happened: heap files may
        hold a partial flush, so the journal's pre-images roll them back
        to the previous checkpoint and WAL replay redoes the lost work.
        """
        journal = read_checkpoint_journal(self._journal_path())
        if journal is None:
            # Absent, or incomplete (crash while writing it — the heaps
            # were never touched).  Nothing to undo.
            if os.path.exists(self._journal_path()):
                clear_checkpoint_journal(self._journal_path(), io=self._io)
            return
        disk_seq = self._read_disk_checkpoint_seq()
        if disk_seq is None or disk_seq < journal["seq"]:
            try:
                rollback_checkpoint_journal(journal, self.path, io=self._io)
            except StorageError as exc:
                self._record_corruption("journal", JOURNAL_NAME, str(exc))
                return  # keep the journal for forensics
        clear_checkpoint_journal(self._journal_path(), io=self._io)

    def _remove_orphan_heaps(self) -> None:
        """Delete heap files no catalog entry references.

        DROP TABLE removes the heap file only *after* its checkpoint (so a
        crash never leaves a catalog entry pointing at a missing heap); the
        price is that a crash in between leaves an orphan file that a later
        CREATE TABLE of the same name would resurrect.  This sweep closes
        that window.  Skipped on a degraded database — if the catalog did
        not load cleanly, "unreferenced" proves nothing.
        """
        if self.read_only:
            return
        live = {f"{table.name}.heap" for table in self.catalog.tables()}
        try:
            entries = os.listdir(self.path)
        except OSError:
            return
        for entry in entries:
            if entry.endswith(".heap") and entry not in live:
                with contextlib.suppress(OSError):
                    self._io.remove(os.path.join(self.path, entry))

    def _read_disk_checkpoint_seq(self) -> Optional[int]:
        """The ``checkpoint_seq`` recorded in catalog.json (None = unknown)."""
        try:
            with open(self._catalog_path(), "r", encoding="utf-8") as fh:
                return int(json.load(fh).get("checkpoint_seq", 0))
        except FileNotFoundError:
            return 0
        except (json.JSONDecodeError, UnicodeDecodeError, ValueError, OSError):
            return None

    def _save_catalog(self) -> None:
        doc = {
            "tables": [
                {
                    "name": table.name,
                    "columns": [
                        {
                            "name": col.name,
                            "type": str(col.ctype),
                            "nullable": col.nullable,
                            "default": _json_value(col.default),
                        }
                        for col in table.schema.columns
                    ],
                    "primary_key": list(table.schema.primary_key),
                    "unique": [list(g) for g in table.schema.unique],
                    "foreign_keys": [
                        {
                            "columns": list(fk.columns),
                            "parent_table": fk.parent_table,
                            "parent_columns": list(fk.parent_columns),
                        }
                        for fk in table.schema.foreign_keys
                    ],
                    "checks": [check.to_sql() for check in table.schema.checks],
                    "indexes": [
                        {
                            "name": index.name,
                            "kind": "btree" if index.ordered else "hash",
                            "columns": list(index.columns),
                            "unique": index.unique,
                        }
                        for index in table.indexes.values()
                        if not index.name.startswith(("pk_", "uq_"))
                    ],
                }
                for table in self.catalog.tables()
            ],
            "views": [
                {"name": view.name, "sql": view.sql_text}
                for view in self.catalog.views()
            ],
            "auth": self.auth.to_doc() if hasattr(self, "auth") else {},
            # The WAL group the heaps on disk are current through; replay
            # after a crash skips every group at or below this.
            "checkpoint_seq": self._checkpoint_seq,
        }
        # Optimizer statistics (ANALYZE output) ride along in the catalog
        # document; absent before the planner exists during early open.
        planner = getattr(self, "planner", None)
        if planner is not None and planner.stats:
            from repro.relational.stats import stats_to_doc

            doc["stats"] = {
                name: stats_to_doc(stats)
                for name, stats in sorted(planner.stats.items())
                if self.catalog.has_table(name)
            }
        # Atomic replace: write a tmp file, fsync it, rename over the old
        # catalog, then fsync the directory so the rename itself is durable.
        tmp_path = self._catalog_path() + ".tmp"
        payload = json.dumps(doc, indent=1).encode("utf-8")
        fd = self._io.open(tmp_path, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
        try:
            self._io.write_all(fd, payload)
            self._io.fsync(fd)
        finally:
            os.close(fd)
        self._io.replace(tmp_path, self._catalog_path())
        self._io.fsync_dir(self.path)

    def _load_catalog(self) -> None:
        if not os.path.exists(self._catalog_path()):
            return
        try:
            with open(self._catalog_path(), "r", encoding="utf-8") as fh:
                doc = json.load(fh)
        except (json.JSONDecodeError, UnicodeDecodeError, OSError) as exc:
            # An unparseable catalog leaves nothing to load; degrade rather
            # than crash so integrity_check() can still report the damage.
            self._record_corruption("catalog", "catalog.json", f"unparseable: {exc}")
            return
        try:
            self._checkpoint_seq = int(doc.get("checkpoint_seq", 0))
        except (TypeError, ValueError):
            self._record_corruption(
                "catalog", "catalog.json",
                f"bad checkpoint_seq {doc.get('checkpoint_seq')!r}",
            )
        if doc.get("auth"):
            from repro.relational.auth import AuthManager

            self.auth = AuthManager.from_doc(doc["auth"])
        for spec in doc.get("tables", []):
            try:
                schema = TableSchema(
                    spec["name"],
                    [
                        Column(
                            c["name"],
                            ColumnType.from_name(c["type"]),
                            c["nullable"],
                            c["default"],
                        )
                        for c in spec["columns"]
                    ],
                    primary_key=spec["primary_key"] or None,
                    unique=spec["unique"],
                    foreign_keys=[
                        ForeignKey(
                            tuple(fk["columns"]),
                            fk["parent_table"],
                            tuple(fk["parent_columns"]),
                        )
                        for fk in spec["foreign_keys"]
                    ],
                    checks=[
                        self._parse_predicate(text) for text in spec.get("checks", [])
                    ],
                )
                table = self.catalog.create_table(schema)
                for index_spec in spec.get("indexes", []):
                    table.add_index(
                        index_spec["name"],
                        index_spec["kind"],
                        index_spec["columns"],
                        index_spec["unique"],
                    )
            except (DatabaseError, KeyError, TypeError, ValueError) as exc:
                # One damaged table entry (or its torn heap file) must not
                # take down the rest of the catalog: record, skip, continue.
                self._record_corruption(
                    "catalog", str(spec.get("name", "?")), f"unloadable table: {exc}"
                )
        # Views are re-created by re-parsing their original SQL; a planner
        # bound to this catalog is needed to re-derive schemas.
        planner = Planner(self.catalog, self.planner_config)
        for view_spec in doc.get("views", []):
            try:
                statement = parse_statement(view_spec["sql"])
                assert isinstance(statement, A.CreateView)
                schema = planner.output_schema(statement.query, statement.name)
                if statement.column_names is not None:
                    schema = TableSchema(
                        statement.name,
                        [
                            Column(new_name, col.ctype, col.nullable, col.default)
                            for new_name, col in zip(statement.column_names, schema.columns)
                        ],
                    )
                self.catalog.create_view(
                    ViewDefinition(
                        name=statement.name.lower(),
                        query=statement.query,
                        schema=schema,
                        check_option=statement.check_option,
                        sql_text=view_spec["sql"],
                    )
                )
            except (DatabaseError, AssertionError, KeyError, TypeError) as exc:
                self._record_corruption(
                    "catalog", str(view_spec.get("name", "?")),
                    f"unloadable view: {exc}",
                )
        # Persisted optimizer statistics: parsed here, applied by __init__
        # once the real planner exists (this method runs before it does).
        # Torn entries are dropped silently — stats are advisory, and a
        # missing entry merely costs one ANALYZE.
        loaded: Dict[str, Any] = {}
        stats_doc = doc.get("stats")
        if isinstance(stats_doc, dict):
            from repro.relational.stats import stats_from_doc

            for name, entry in stats_doc.items():
                if not isinstance(entry, dict):
                    continue
                stats = stats_from_doc(entry)
                if stats is not None:
                    loaded[str(name).lower()] = stats
        self._loaded_stats = loaded

    def _recover(self) -> None:
        """Replay committed WAL records over the checkpointed data files.

        Groups at or below the catalog's ``checkpoint_seq`` are skipped —
        a crash between the catalog rename and the WAL truncation leaves
        already-flushed groups in the log, and replaying them would apply
        every row twice.  Proven corruption (a bad CRC followed by valid
        records) keeps the applied prefix and degrades to read-only.
        """
        if self.wal is None:
            return

        def apply(op: dict) -> None:
            table = self.catalog.table(op["tab"])
            if op["t"] == "insert":
                table.insert(table.schema.validate_row(op["row"]))
            elif op["t"] == "delete":
                image = table.schema.validate_row(op["old" if "old" in op else "row"])
                for rid, row in table.scan():
                    if row == image:
                        table.delete(rid)
                        break
            elif op["t"] == "update":
                old_image = table.schema.validate_row(op["old"])
                new_image = table.schema.validate_row(op["new"])
                for rid, row in table.scan():
                    if row == old_image:
                        table.update(rid, new_image)
                        break

        try:
            self.wal.replay(apply, min_seq=self._checkpoint_seq)
        except DatabaseError as exc:
            self._record_corruption("wal", os.path.basename(self.wal.path), str(exc))

    # -- misc helpers -------------------------------------------------------

    def _parse_predicate(self, where: Optional[Union[str, E.Expr]]) -> Optional[E.Expr]:
        if where is None or isinstance(where, E.Expr):
            return where
        # Parse the text as the WHERE clause of a dummy statement.
        statement = parse_statement(f"DELETE FROM __predicate_host WHERE {where}")
        assert isinstance(statement, A.Delete)
        return statement.where

    def table_names(self) -> List[str]:
        return [t.name for t in self.catalog.tables()]

    def view_names(self) -> List[str]:
        return [v.name for v in self.catalog.views()]


def _is_const(expr: E.Expr) -> bool:
    return not any(isinstance(node, E.ColumnRef) for node in expr.walk())


def _const_value(expr: E.Expr) -> Any:
    if not _is_const(expr):
        raise BindError(
            f"VALUES entries must be constants, got {expr.to_sql()}"
        )
    return expr.eval(())


def _json_value(value: Any) -> Any:
    import datetime

    if isinstance(value, datetime.date):
        return value.isoformat()
    return value
