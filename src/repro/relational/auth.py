"""Authorization: users, ownership, GRANT/REVOKE — views as protection.

The classic 1983 access-control model this system's architecture exists to
serve: a clerk is granted privileges on a *view*, never on base tables.
Because access through a view is checked against the view object only (the
view executes with its owner's rights underneath), a view is a protection
domain: the clerk's whole window on the world is exactly what the view
shows.

Model:

* users are bare names (authentication belonged to the OS login in 1983);
* the bootstrap user ``dba`` is a superuser;
* whoever creates an object owns it; owners hold every privilege on it and
  may GRANT/REVOKE it to others;
* privileges are SELECT, INSERT, UPDATE, DELETE per object (``ALL`` expands
  to all four).
"""

from __future__ import annotations

import enum
from typing import Dict, FrozenSet, Optional, Set, Tuple

from repro.errors import WowError


class AuthError(WowError):
    """Privilege violation or illegal grant."""


class Privilege(enum.Enum):
    SELECT = "SELECT"
    INSERT = "INSERT"
    UPDATE = "UPDATE"
    DELETE = "DELETE"

    @classmethod
    def from_name(cls, name: str) -> "Privilege":
        try:
            return cls(name.upper())
        except ValueError as exc:
            raise AuthError(f"unknown privilege {name!r}") from exc


ALL_PRIVILEGES: FrozenSet[Privilege] = frozenset(Privilege)

SUPERUSER = "dba"


class AuthManager:
    """Owners and grants for one database."""

    def __init__(self) -> None:
        self._owners: Dict[str, str] = {}  # object -> owner
        self._grants: Dict[Tuple[str, str], Set[Privilege]] = {}

    # -- ownership ----------------------------------------------------------

    def record_owner(self, obj: str, owner: str) -> None:
        self._owners[obj.lower()] = owner.lower()

    def forget_object(self, obj: str) -> None:
        obj = obj.lower()
        self._owners.pop(obj, None)
        for key in [k for k in self._grants if k[1] == obj]:
            del self._grants[key]

    def owner_of(self, obj: str) -> Optional[str]:
        return self._owners.get(obj.lower())

    def is_owner(self, user: str, obj: str) -> bool:
        user = user.lower()
        return user == SUPERUSER or self._owners.get(obj.lower()) == user

    # -- grants -----------------------------------------------------------

    def grant(
        self, grantor: str, privileges: Set[Privilege], obj: str, grantee: str
    ) -> None:
        if not self.is_owner(grantor, obj):
            raise AuthError(
                f"user {grantor!r} may not grant on {obj!r} (not the owner)"
            )
        key = (grantee.lower(), obj.lower())
        self._grants.setdefault(key, set()).update(privileges)

    def revoke(
        self, revoker: str, privileges: Set[Privilege], obj: str, grantee: str
    ) -> None:
        if not self.is_owner(revoker, obj):
            raise AuthError(
                f"user {revoker!r} may not revoke on {obj!r} (not the owner)"
            )
        key = (grantee.lower(), obj.lower())
        held = self._grants.get(key)
        if held:
            held.difference_update(privileges)
            if not held:
                del self._grants[key]

    # -- checks -----------------------------------------------------------

    def check(self, user: str, privilege: Privilege, obj: str) -> None:
        """Raise AuthError unless *user* holds *privilege* on *obj*."""
        user = user.lower()
        obj = obj.lower()
        if user == SUPERUSER or self._owners.get(obj) == user:
            return
        held = self._grants.get((user, obj), ())
        if privilege not in held:
            raise AuthError(
                f"user {user!r} lacks {privilege.value} on {obj!r}"
            )

    def privileges_of(self, user: str, obj: str) -> Set[Privilege]:
        """The effective privilege set (owner/superuser hold everything)."""
        user = user.lower()
        if user == SUPERUSER or self._owners.get(obj.lower()) == user:
            return set(ALL_PRIVILEGES)
        return set(self._grants.get((user, obj.lower()), set()))

    # -- persistence hooks --------------------------------------------------

    def to_doc(self) -> dict:
        return {
            "owners": dict(self._owners),
            "grants": [
                {"user": user, "object": obj, "privileges": sorted(p.value for p in privs)}
                for (user, obj), privs in sorted(self._grants.items())
            ],
        }

    @classmethod
    def from_doc(cls, doc: dict) -> "AuthManager":
        manager = cls()
        manager._owners = dict(doc.get("owners", {}))
        for entry in doc.get("grants", []):
            manager._grants[(entry["user"], entry["object"])] = {
                Privilege(p) for p in entry["privileges"]
            }
        return manager
