"""Query planning: SELECT ASTs into physical operator trees.

The planner performs, in order:

1. **Name qualification** — every bare column reference is rewritten to a
   qualified one against the FROM bindings (erroring on ambiguity).
2. **View expansion** — a view in FROM is planned recursively and wrapped in
   :class:`~repro.relational.algebra.Rename` under its alias.
3. **Predicate pushdown** (toggleable) — WHERE and inner-join conjuncts that
   mention a single binding move onto that binding's scan.
4. **Index selection** (toggleable) — an equality conjunct over a scan with a
   matching index becomes an IndexEqScan; single-column range conjuncts over
   a B+-tree index become an IndexRangeScan.
5. **Greedy join ordering** (toggleable) — joins connected by equi-conjuncts
   are ordered smallest-estimated-first and executed as hash joins; the
   strategy can be forced via :class:`PlannerConfig` for ablations.
6. **Aggregation / projection / DISTINCT / ORDER BY / LIMIT.**
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.errors import BindError, PlanError
from repro.relational import algebra as Alg
from repro.relational import expr as E
from repro.relational.catalog import Catalog
from repro.relational.schema import Column, TableSchema
from repro.relational.table import Table
from repro.relational.types import ColumnType
from repro.relational.stats import (
    DEFAULT_RANGE_SELECTIVITY,
    TableStats,
    clamp_rows,
)
from repro.sql import ast_nodes as A
from repro.sql.parser import AggExpr, SubqueryExpr
from repro.views.definition import ViewDefinition

# Cost-model unit prices (System-R lineage: an arbitrary currency whose only
# job is to rank alternatives consistently).
SEQ_PAGE_COST = 1.0
RANDOM_PAGE_COST = 2.0
CPU_TUPLE_COST = 0.01
HASH_BUILD_COST = 0.02


@dataclass
class PlannerConfig:
    """Feature switches, primarily for the ablation benchmarks."""

    enable_pushdown: bool = True
    enable_index_selection: bool = True
    enable_join_reorder: bool = True
    #: 'auto' (hash for equi-joins, NL otherwise), or force 'nl'/'hash'/'merge'
    join_strategy: str = "auto"
    #: batch-at-a-time execution with compiled expressions; False forces
    #: the tuple-at-a-time path (the A/B baseline for bench_vectorized)
    vectorized: bool = True
    #: serve vectorized SeqScans from the columnar segment cache when the
    #: table's heap version matches (the A/B baseline for bench_bufferpool)
    segment_cache: bool = True
    #: 'dp' (cost-based dynamic-programming enumeration, used when every
    #: joined table has ANALYZE stats) or 'greedy' (smallest-first heuristic)
    join_enumeration: str = "dp"
    #: DP enumerates 2^n subsets; beyond this many relations fall back to greedy
    max_dp_relations: int = 8
    #: close the loop from _plan_stats back into the plan cache: cached
    #: statements whose estimates were off by >= replan_factor are re-planned
    adaptive_replan: bool = True
    replan_factor: float = 10.0

    def fingerprint(self) -> Tuple[Any, ...]:
        """Hashable digest of every switch; part of the plan-cache key, so
        plans produced under one configuration are never replayed under
        another (even when the config object is mutated in place)."""
        return (
            self.enable_pushdown,
            self.enable_index_selection,
            self.enable_join_reorder,
            self.join_strategy,
            self.vectorized,
            self.segment_cache,
            self.join_enumeration,
            self.max_dp_relations,
            self.adaptive_replan,
            self.replan_factor,
        )


@dataclass
class _Binding:
    """One FROM entry: alias plus the underlying table or view."""

    alias: str
    source: Union[Table, ViewDefinition]
    join_kind: str = "base"  # base | inner | left | cross
    join_condition: Optional[E.Expr] = None

    @property
    def schema(self) -> TableSchema:
        return self.source.schema


@dataclass
class _DPCell:
    """Best-so-far plan for one subset of relations during DP enumeration:
    the operator tree, its estimated output rows and total cost, and the
    pool-conjunct indices already applied somewhere inside the tree."""

    plan: Alg.Operator
    rows: float
    cost: float
    applied: frozenset


class Planner:
    """Plans SELECT statements against a catalog."""

    def __init__(self, catalog: Catalog, config: Optional[PlannerConfig] = None) -> None:
        self.catalog = catalog
        self.config = config or PlannerConfig()
        #: optimizer statistics from ANALYZE: table name -> TableStats
        self.stats: Dict[str, Any] = {}
        #: lifetime counters of planning decisions, exposed through
        #: Database.metrics_snapshot()
        self.metrics: Dict[str, int] = {
            "plans": 0,
            "seq_scans": 0,
            "index_eq_scans": 0,
            "index_range_scans": 0,
            "nl_joins": 0,
            "hash_joins": 0,
            "merge_joins": 0,
            #: optimizer-v2 counters: full DP enumerations run, candidate
            #: join trees costed, and adaptive feedback re-plans
            "dp_joins": 0,
            "join_candidates": 0,
            "replans": 0,
        }
        #: called with every candidate join tree the DP enumerator costs;
        #: Database wires this to the static plan verifier when
        #: WOW_VERIFY_PLANS is on, so no invalid shape can even be *costed*
        self.verify_candidate = None

    # -- public API ---------------------------------------------------------

    def plan_select(self, select: A.Select) -> Alg.Operator:
        """Produce an executable operator tree for *select*."""
        self.metrics["plans"] += 1
        if select.from_table is None:
            return self._plan_constant_select(select)
        bindings = self._collect_bindings(select)
        layout_all = self._combined_layout(bindings)
        qualified = _Qualifier(layout_all, self._resolve_subqueries)

        where_conjuncts = [
            qualified.qualify(conj) for conj in E.split_conjuncts(select.where)
        ]
        for binding in bindings:
            if binding.join_condition is not None:
                binding.join_condition = qualified.qualify(binding.join_condition)

        # Inner-join ON conditions join the WHERE pool (they are equivalent);
        # LEFT-join conditions must stay attached to their join.
        pool: List[E.Expr] = list(where_conjuncts)
        for binding in bindings:
            if binding.join_kind == "inner" and binding.join_condition is not None:
                pool.extend(E.split_conjuncts(binding.join_condition))
                binding.join_condition = None

        plan = self._plan_joins(select, bindings, pool)

        # Residual predicates that survived pushdown/join-keys.
        residual = E.conjoin(pool)
        if residual is not None:
            plan = Alg.Filter(plan, E.bind(residual, plan.layout))

        has_aggs = bool(select.group_by) or select.having is not None or any(
            isinstance(item.expr, A.AggCall) for item in select.items
        )
        order_items = list(select.order_by)  # local copy: never mutate the AST
        if has_aggs:
            plan = self._plan_aggregate(select, plan, qualified, order_items)
            order_items = []
        else:
            plan, order_items = self._plan_projection(
                select, plan, qualified, order_items
            )

        if select.distinct:
            plan = Alg.Distinct(plan)

        if order_items:
            plan = self._plan_order_by(order_items, plan)

        if select.limit is not None or select.offset:
            plan = Alg.Limit(plan, select.limit, select.offset)
        return plan

    def _plan_constant_select(self, select: A.Select) -> Alg.Operator:
        """SELECT <constant expressions> with no FROM: one synthetic row."""
        if select.joins or select.group_by or select.having or select.order_by:
            raise PlanError("SELECT without FROM takes only constant expressions")
        source = Alg.RowSource(E.RowLayout([]), [()], name="dual")
        exprs: List[E.Expr] = []
        names: List[str] = []
        types: List[ColumnType] = []
        for pos, item in enumerate(select.items):
            if item.star or isinstance(item.expr, A.AggCall):
                raise PlanError("SELECT without FROM takes only constant expressions")
            expr = self._resolve_subqueries(item.expr)
            exprs.append(expr)  # no columns to bind
            names.append(item.alias or f"col{pos}")
            types.append(infer_expr_type(expr, source.layout))
        plan: Alg.Operator = Alg.Project(source, exprs, names, types)
        if select.limit is not None or select.offset:
            plan = Alg.Limit(plan, select.limit, select.offset)
        return plan

    def plan_union(self, union: A.Union) -> Alg.Operator:
        """Plan a UNION [ALL] chain (left-associative SQL semantics)."""
        plan = self.plan_select(union.selects[0])
        for arm, all_flag in zip(union.selects[1:], union.all_flags):
            arm_plan = self.plan_select(arm)
            if len(arm_plan.layout) != len(plan.layout):
                raise PlanError("UNION arms must have the same number of columns")
            plan = Alg.UnionAll(plan, arm_plan)
            if not all_flag:
                plan = Alg.Distinct(plan)
        if union.order_by:
            sort_keys = [
                (E.bind(item.expr, plan.layout), item.ascending)
                for item in union.order_by
            ]
            plan = Alg.Sort(plan, sort_keys)
        if union.limit is not None or union.offset:
            plan = Alg.Limit(plan, union.limit, union.offset)
        return plan

    def _resolve_subqueries(self, expr: E.Expr) -> E.Expr:
        """Materialise uncorrelated subqueries into literal expressions.

        ``x IN (SELECT ...)`` becomes an InList of the subquery's first
        column; ``EXISTS (SELECT ...)`` becomes TRUE/FALSE; a scalar
        subquery becomes its single value (NULL on empty input).  A
        correlated subquery surfaces as a BindError from planning the
        inner select — correlation is outside the supported subset.
        """

        def fix(node: E.Expr) -> Optional[E.Expr]:
            if not isinstance(node, SubqueryExpr):
                return None
            inner = self.plan_select(node.select)
            if node.kind == "exists":
                has_rows = next(iter(inner.rows()), None) is not None
                return E.Literal(has_rows)
            if node.kind == "scalar":
                if len(inner.layout) != 1:
                    raise PlanError("scalar subquery must return one column")
                rows = list(Alg.Limit(inner, 2).rows())
                if len(rows) > 1:
                    raise PlanError("scalar subquery returned more than one row")
                return E.Literal(rows[0][0] if rows else None)
            if node.kind == "in":
                if len(inner.layout) != 1:
                    raise PlanError("IN subquery must return one column")
                values = {row[0] for row in inner.rows()}
                items = [E.Literal(v) for v in sorted(
                    values, key=lambda v: (v is None, str(type(v)), str(v))
                )]
                return E.InList(node.operand, items, node.negated)
            raise PlanError(f"unknown subquery kind {node.kind!r}")  # pragma: no cover

        return E.rewrite(expr, fix)

    def output_schema(self, select: A.Select, name: str) -> TableSchema:
        """Derive the output schema of *select* (for CREATE VIEW)."""
        plan = self.plan_select(select)
        columns = []
        seen = set()
        for _q, col_name, ctype in plan.layout.slots:
            if col_name in seen:
                raise PlanError(
                    f"duplicate output column {col_name!r}; alias it to use "
                    "this query as a view"
                )
            seen.add(col_name)
            columns.append(Column(col_name, ctype))
        return TableSchema(name, columns)

    # -- FROM clause ----------------------------------------------------------

    def _collect_bindings(self, select: A.Select) -> List[_Binding]:
        if select.from_table is None:
            raise PlanError("SELECT without FROM is not supported")
        bindings = [
            _Binding(select.from_table.binding_name, self.catalog.resolve(select.from_table.name))
        ]
        for join in select.joins:
            bindings.append(
                _Binding(
                    join.table.binding_name,
                    self.catalog.resolve(join.table.name),
                    join_kind=join.kind,
                    join_condition=join.condition,
                )
            )
        seen: Set[str] = set()
        for binding in bindings:
            if binding.alias in seen:
                raise BindError(f"duplicate table alias {binding.alias!r}")
            seen.add(binding.alias)
        return bindings

    def _combined_layout(self, bindings: Sequence[_Binding]) -> E.RowLayout:
        layout = E.RowLayout([])
        for binding in bindings:
            layout = layout + E.RowLayout.for_table(binding.alias, binding.schema)
        return layout

    def _seq_scan(self, table: Table, alias: str) -> Alg.SeqScan:
        """A SeqScan carrying this config's segment-cache decision.

        The flag rides on the operator instance, not the label, so EXPLAIN
        text stays stable; the fingerprint entry for ``segment_cache``
        keeps cached plans from crossing configurations.
        """
        scan = Alg.SeqScan(table, alias)
        scan.use_segments = self.config.vectorized and self.config.segment_cache
        return scan

    def _scan_for(self, binding: _Binding, pool: List[E.Expr]) -> Alg.Operator:
        """Build the access path for one binding, consuming pushable conjuncts."""
        mine: List[E.Expr] = []
        if self.config.enable_pushdown:
            rest: List[E.Expr] = []
            for conjunct in pool:
                if E.references_only(conjunct, [binding.alias]):
                    mine.append(conjunct)
                else:
                    rest.append(conjunct)
            pool[:] = rest

        all_mine = list(mine)
        if isinstance(binding.source, ViewDefinition):
            pushed_query, mine = self._try_view_pushdown(binding, mine)
            inner = self.plan_select(pushed_query or binding.source.query)
            column_names = [c.name for c in binding.source.schema.columns]
            scan: Alg.Operator = Alg.Rename(inner, binding.alias, column_names)
        else:
            scan = self._seq_scan(binding.source, binding.alias)
            if (
                mine
                and self.config.enable_index_selection
                and isinstance(binding.source, Table)
            ):
                scan, mine = self._try_index_path(binding, mine)

        access_cost = scan.est_cost  # set when an index path was costed
        predicate = E.conjoin(mine)
        if predicate is not None:
            scan = Alg.Filter(scan, E.bind(predicate, scan.layout))
        if isinstance(binding.source, Table):
            stats = self.stats.get(binding.source.name)
            if stats is not None:
                scan.est_rows = stats.estimate_rows(all_mine)
                if access_cost is None:
                    access_cost = (
                        stats.pages * SEQ_PAGE_COST
                        + stats.row_count * CPU_TUPLE_COST
                    )
                scan.est_cost = access_cost
        return scan

    def _try_view_pushdown(
        self, binding: _Binding, conjuncts: List[E.Expr]
    ) -> Tuple[Optional[A.Select], List[E.Expr]]:
        """Push single-view conjuncts inside the view's defining query.

        Rewrites each conjunct from view-output columns to the view's
        underlying select expressions and ANDs it into (a copy of) the
        view's WHERE, so inner index paths apply.  Returns (modified query
        or None, conjuncts that could not be pushed and must filter above
        the view).  Pushing through aggregation/DISTINCT/LIMIT is unsafe
        and skipped entirely.
        """
        view = binding.source
        assert isinstance(view, ViewDefinition)
        query = view.query
        if not conjuncts:
            return None, conjuncts
        if (
            query.group_by
            or query.having is not None
            or query.distinct
            or query.limit is not None
            or query.offset
        ):
            return None, conjuncts

        # Align each view output column with its defining inner expression.
        inner_exprs: List[E.Expr] = []
        for item in query.items:
            if item.star:
                bindings = [query.from_table] + [j.table for j in query.joins]
                for table_ref in bindings:
                    if (
                        item.qualifier is not None
                        and table_ref.binding_name != item.qualifier.lower()
                    ):
                        continue
                    schema = self.catalog.schema_of(table_ref.name)
                    for column in schema.column_names:
                        inner_exprs.append(
                            E.ColumnRef(column, table_ref.binding_name)
                        )
            elif isinstance(item.expr, A.AggCall):
                return None, conjuncts
            else:
                inner_exprs.append(item.expr)
        if len(inner_exprs) != view.schema.arity:
            return None, conjuncts
        mapping = dict(zip(view.schema.column_names, inner_exprs))

        pushed: List[E.Expr] = []
        residual: List[E.Expr] = []
        for conjunct in conjuncts:
            try:
                def translate(node: E.Expr) -> Optional[E.Expr]:
                    if isinstance(node, E.ColumnRef):
                        if node.qualifier not in (None, binding.alias):
                            raise BindError("foreign reference")
                        replacement = mapping.get(node.name)
                        if replacement is None:
                            raise BindError(f"no view column {node.name}")
                        return replacement
                    return None

                pushed.append(E.rewrite(conjunct, translate))
            except BindError:
                residual.append(conjunct)
        if not pushed:
            return None, conjuncts
        from dataclasses import replace

        new_where = E.conjoin(E.split_conjuncts(query.where) + pushed)
        return replace(query, where=new_where), residual

    def _try_index_path(
        self, binding: _Binding, conjuncts: List[E.Expr]
    ) -> Tuple[Alg.Operator, List[E.Expr]]:
        """Pick the access path: SeqScan vs. index equality vs. index range.

        Without ANALYZE stats this keeps the legacy first-match priority
        (full-key equality, then single-column range, then seq scan).  With
        stats every applicable path is costed — pages for the sequential
        read vs. probe cost times estimated matching rows for the indexes —
        and the cheapest wins.
        """
        table = binding.source
        assert isinstance(table, Table)
        stats = self.stats.get(table.name)

        # (metric, operator, used conjuncts) per applicable access path.
        candidates: List[Tuple[str, Alg.Operator, Set[E.Expr]]] = []
        eq_values: Dict[str, Any] = {}
        eq_conjuncts: Dict[str, E.Expr] = {}
        for conjunct in conjuncts:
            hit = E.const_comparison(conjunct)
            if hit is not None and hit[1] == "=":
                column, _op, value = hit
                eq_values.setdefault(column.name, value)
                eq_conjuncts.setdefault(column.name, conjunct)
        for index in table.indexes.values():
            if all(col in eq_values for col in index.columns):
                key = tuple(eq_values[col] for col in index.columns)
                used = {eq_conjuncts[col] for col in index.columns}
                candidates.append(
                    (
                        "index_eq_scans",
                        Alg.IndexEqScan(table, index, key, binding.alias),
                        used,
                    )
                )
        for conjunct in conjuncts:
            hit = E.const_comparison(conjunct)
            if hit is None or hit[1] in ("=", "!="):
                continue
            column, _op, _value = hit
            index = table.ordered_index_with_prefix(column.name)
            if index is None or len(index.columns) != 1:
                continue
            low, high, incl_low, incl_high, used = self._collect_bounds(
                column.name, conjuncts
            )
            candidates.append(
                (
                    "index_range_scans",
                    Alg.IndexRangeScan(
                        table, index, low, high, incl_low, incl_high, binding.alias
                    ),
                    used,
                )
            )
            break  # one range path per scan, as before

        if stats is None or stats.row_count <= 0:
            # Legacy priority: first equality path, else first range path.
            for metric, op, used in candidates:
                if metric == "index_eq_scans":
                    self.metrics[metric] += 1
                    return op, [c for c in conjuncts if c not in used]
            for metric, op, used in candidates:
                self.metrics[metric] += 1
                return op, [c for c in conjuncts if c not in used]
            self.metrics["seq_scans"] += 1
            return self._seq_scan(table, binding.alias), conjuncts

        rows = float(stats.row_count)
        seq_cost = stats.pages * SEQ_PAGE_COST + rows * CPU_TUPLE_COST
        best_metric = "seq_scans"
        best_op: Alg.Operator = self._seq_scan(table, binding.alias)
        best_used: Set[E.Expr] = set()
        best_cost = seq_cost
        for metric, op, used in candidates:
            matching = rows
            for conjunct in used:
                matching *= stats.selectivity(conjunct)
            cost = RANDOM_PAGE_COST + matching * (
                CPU_TUPLE_COST + RANDOM_PAGE_COST * 0.1
            )
            if cost < best_cost:
                best_metric, best_op, best_used, best_cost = metric, op, used, cost
        self.metrics[best_metric] += 1
        best_op.est_cost = best_cost
        return best_op, [c for c in conjuncts if c not in best_used]

    @staticmethod
    def _collect_bounds(
        column_name: str, conjuncts: List[E.Expr]
    ) -> Tuple[Optional[Tuple], Optional[Tuple], bool, bool, Set[E.Expr]]:
        """Gather all range bounds on *column_name* from the conjunct list."""
        low: Optional[Tuple] = None
        high: Optional[Tuple] = None
        incl_low = incl_high = True
        used: Set[E.Expr] = set()
        from repro.relational.types import sort_key

        for conjunct in conjuncts:
            hit = E.const_comparison(conjunct)
            if hit is None:
                continue
            column, op, value = hit
            if column.name != column_name or value is None:
                continue
            if op in (">", ">="):
                candidate = (value,)
                if low is None or sort_key(low[0]) < sort_key(value) or (
                    low[0] == value and op == ">" and incl_low
                ):
                    low, incl_low = candidate, op == ">="
                used.add(conjunct)
            elif op in ("<", "<="):
                candidate = (value,)
                if high is None or sort_key(value) < sort_key(high[0]) or (
                    high[0] == value and op == "<" and incl_high
                ):
                    high, incl_high = candidate, op == "<="
                used.add(conjunct)
        return low, high, incl_low, incl_high, used

    # -- joins --------------------------------------------------------------

    def _plan_joins(
        self, select: A.Select, bindings: List[_Binding], pool: List[E.Expr]
    ) -> Alg.Operator:
        """Dispatch: cost-based DP enumeration when it applies, else greedy.

        DP requires ANALYZE statistics for *every* joined table (the cost
        model has nothing to price otherwise), inner/cross joins only, and
        a bounded relation count — everything else keeps the legacy greedy
        smallest-first order, so un-analyzed databases plan exactly as
        before.
        """
        if self._dp_applicable(bindings):
            return self._plan_joins_dp(bindings, pool)
        return self._plan_joins_greedy(bindings, pool)

    def _dp_applicable(self, bindings: List[_Binding]) -> bool:
        config = self.config
        if not (
            config.enable_join_reorder
            and config.enable_pushdown
            and config.join_enumeration == "dp"
            and 2 <= len(bindings) <= config.max_dp_relations
        ):
            return False
        if any(b.join_kind == "left" for b in bindings):
            return False
        for binding in bindings:
            if not isinstance(binding.source, Table):
                return False
            if not isinstance(self.stats.get(binding.source.name), TableStats):
                return False
        return True

    def _plan_joins_dp(
        self, bindings: List[_Binding], pool: List[E.Expr]
    ) -> Alg.Operator:
        """Bottom-up (DPsize) join-order enumeration with per-subset pruning.

        Every subset of relations keeps only its cheapest plan; candidate
        join trees are priced from scan costs plus per-strategy join costs,
        with cardinalities from |L ⨝ R| = |L|·|R| / max(ndv) per equi pair.
        Each candidate is offered to :attr:`verify_candidate` (the static
        plan verifier) before it can be retained.  Cross joins are legal
        candidates — their NL pricing keeps them naturally last.
        """
        import itertools

        self.metrics["dp_joins"] += 1
        alias_stats: Dict[str, TableStats] = {
            b.alias: self.stats[b.source.name] for b in bindings
        }
        cells: Dict[frozenset, _DPCell] = {}
        for binding in bindings:
            scan = self._scan_for(binding, pool)
            rows = scan.est_rows if scan.est_rows is not None else 1.0
            cost = scan.est_cost if scan.est_cost is not None else rows * CPU_TUPLE_COST
            cells[frozenset([binding.alias])] = _DPCell(scan, rows, cost, frozenset())

        # Index the surviving pool by referenced alias set; conjuncts are
        # identified positionally so duplicates in the pool stay distinct.
        conjunct_aliases: List[Set[str]] = []
        for conjunct in pool:
            refs = {ref.qualifier for ref in E.column_refs(conjunct)}
            refs.discard(None)
            conjunct_aliases.append(refs)

        all_aliases = [b.alias for b in bindings]
        for size in range(2, len(all_aliases) + 1):
            for combo in itertools.combinations(all_aliases, size):
                subset = frozenset(combo)
                best: Optional[_DPCell] = None
                members = sorted(subset)
                # Ordered (L, R) splits: both build-side choices are costed.
                for left_size in range(1, size):
                    for left_combo in itertools.combinations(members, left_size):
                        left = frozenset(left_combo)
                        right = subset - left
                        left_cell = cells.get(left)
                        right_cell = cells.get(right)
                        if left_cell is None or right_cell is None:
                            continue
                        applied = left_cell.applied | right_cell.applied
                        applicable = [
                            i
                            for i, aliases in enumerate(conjunct_aliases)
                            if i not in applied and aliases and aliases <= subset
                        ]
                        candidate = self._dp_candidate(
                            left_cell, right_cell, left, right,
                            [pool[i] for i in applicable], alias_stats,
                        )
                        if candidate is None:
                            continue
                        candidate.applied = applied | frozenset(applicable)
                        if best is None or candidate.cost < best.cost:
                            best = candidate
                if best is None:  # unreachable: cross joins always legal
                    raise PlanError("join enumeration found no plan")
                cells[subset] = best

        final = cells[frozenset(all_aliases)]
        pool[:] = [c for i, c in enumerate(pool) if i not in final.applied]
        self._count_final_joins(final.plan)
        return final.plan

    def _dp_candidate(
        self,
        left_cell: "_DPCell",
        right_cell: "_DPCell",
        left_aliases: frozenset,
        right_aliases: frozenset,
        conjuncts: List[E.Expr],
        alias_stats: Dict[str, TableStats],
    ) -> Optional["_DPCell"]:
        """Cost one join of two DP cells under the configured strategy."""
        left_plan, right_plan = left_cell.plan, right_cell.plan
        combined_layout = left_plan.layout + right_plan.layout
        equi: List[Tuple[E.ColumnRef, E.ColumnRef]] = []
        residual: List[E.Expr] = []
        for conjunct in conjuncts:
            pair = E.equality_pair(conjunct)
            if pair is not None:
                a, b = pair
                if a.qualifier in left_aliases and b.qualifier in right_aliases:
                    equi.append((a, b))
                    continue
                if b.qualifier in left_aliases and a.qualifier in right_aliases:
                    equi.append((b, a))
                    continue
            residual.append(conjunct)

        # Cardinality: the classic containment-of-values formula per equi
        # pair, textbook default per residual predicate.
        out_rows = left_cell.rows * right_cell.rows
        for outer_ref, inner_ref in equi:
            ndv = 1
            for ref in (outer_ref, inner_ref):
                stats = alias_stats.get(ref.qualifier)
                column = stats.columns.get(ref.name) if stats is not None else None
                if column is not None:
                    ndv = max(ndv, column.n_distinct)
            out_rows /= ndv
        out_rows *= DEFAULT_RANGE_SELECTIVITY ** len(residual)

        strategy = self.config.join_strategy
        if strategy == "nl" or not equi:
            predicate = E.conjoin(conjuncts)
            bound_predicate = (
                E.bind(predicate, combined_layout) if predicate is not None else None
            )
            joined: Alg.Operator = Alg.NestedLoopJoin(
                left_plan, right_plan, bound_predicate, False
            )
            join_cost = left_cell.rows * right_cell.rows * CPU_TUPLE_COST
        else:
            outer_positions = [
                left_plan.layout.resolve(ref.qualifier, ref.name) for ref, _ in equi
            ]
            inner_positions = [
                right_plan.layout.resolve(ref.qualifier, ref.name) for _, ref in equi
            ]
            residual_expr = E.conjoin(residual)
            bound_residual = (
                E.bind(residual_expr, combined_layout)
                if residual_expr is not None
                else None
            )
            if strategy == "merge":
                joined = Alg.MergeJoin(
                    left_plan, right_plan, outer_positions, inner_positions
                )
                if bound_residual is not None:
                    joined = Alg.Filter(joined, bound_residual)
                # Both inputs are sorted then merged; charge a few passes.
                join_cost = (
                    (left_cell.rows + right_cell.rows) * CPU_TUPLE_COST * 4
                    + out_rows * CPU_TUPLE_COST
                )
            else:
                joined = Alg.HashJoin(
                    left_plan, right_plan, outer_positions, inner_positions,
                    bound_residual, False,
                )
                join_cost = (
                    right_cell.rows * (CPU_TUPLE_COST + HASH_BUILD_COST)
                    + left_cell.rows * CPU_TUPLE_COST
                    + out_rows * CPU_TUPLE_COST
                )

        joined.est_rows = clamp_rows(out_rows)
        cost = left_cell.cost + right_cell.cost + join_cost
        joined.est_cost = cost
        self.metrics["join_candidates"] += 1
        if self.verify_candidate is not None:
            self.verify_candidate(joined)
        return _DPCell(joined, clamp_rows(out_rows), cost, frozenset())

    def _count_final_joins(self, plan: Alg.Operator) -> None:
        """Metric bookkeeping for the joins in the chosen DP plan only
        (candidates that lost the enumeration are not counted)."""
        if isinstance(plan, Alg.HashJoin):
            self.metrics["hash_joins"] += 1
        elif isinstance(plan, Alg.MergeJoin):
            self.metrics["merge_joins"] += 1
        elif isinstance(plan, Alg.NestedLoopJoin):
            self.metrics["nl_joins"] += 1
        for child in plan.children():
            self._count_final_joins(child)

    def _plan_joins_greedy(
        self, bindings: List[_Binding], pool: List[E.Expr]
    ) -> Alg.Operator:
        base = bindings[0]
        plan = self._scan_for(base, pool)
        bound = {base.alias}
        remaining = bindings[1:]

        has_left = any(b.join_kind == "left" for b in remaining)
        reorder = self.config.enable_join_reorder and not has_left

        while remaining:
            next_binding = None
            if reorder:
                # Prefer a binding connected by an equi-conjunct; among those,
                # the one with the smallest estimated cardinality.
                candidates = []
                for binding in remaining:
                    keys = self._equi_keys(pool, bound, binding.alias)
                    if keys:
                        candidates.append((self._estimate(binding), binding))
                if candidates:
                    candidates.sort(key=lambda pair: pair[0])
                    next_binding = candidates[0][1]
            if next_binding is None:
                next_binding = remaining[0]
            remaining.remove(next_binding)
            plan = self._join_step(plan, next_binding, bound, pool)
            bound.add(next_binding.alias)
        return plan

    def _join_step(
        self,
        plan: Alg.Operator,
        binding: _Binding,
        bound: Set[str],
        pool: List[E.Expr],
    ) -> Alg.Operator:
        left_outer = binding.join_kind == "left"
        if left_outer:
            # LEFT JOIN: the scan must not consume WHERE conjuncts from the
            # pool (they apply after padding); only the ON condition is used.
            scan = self._scan_for(binding, [])
            on_conjuncts = E.split_conjuncts(binding.join_condition)
        else:
            scan = self._scan_for(binding, pool)
            on_conjuncts = []
            # Pull every pool conjunct that now becomes evaluable.
            usable = []
            rest = []
            for conjunct in pool:
                if E.references_only(conjunct, list(bound | {binding.alias})):
                    usable.append(conjunct)
                else:
                    rest.append(conjunct)
            pool[:] = rest
            on_conjuncts = usable

        combined_layout = plan.layout + scan.layout
        equi, residual = self._split_equi(on_conjuncts, bound, binding.alias)

        strategy = self.config.join_strategy
        if strategy == "nl" or not equi:
            predicate = E.conjoin(on_conjuncts)
            bound_predicate = (
                E.bind(predicate, combined_layout) if predicate is not None else None
            )
            self.metrics["nl_joins"] += 1
            return Alg.NestedLoopJoin(plan, scan, bound_predicate, left_outer)

        outer_positions = [
            plan.layout.resolve(ref.qualifier, ref.name) for ref, _ in equi
        ]
        inner_positions = [
            scan.layout.resolve(ref.qualifier, ref.name) for _, ref in equi
        ]
        residual_expr = E.conjoin(residual)
        bound_residual = (
            E.bind(residual_expr, combined_layout) if residual_expr is not None else None
        )
        if strategy == "merge" and not left_outer:
            self.metrics["merge_joins"] += 1
            joined: Alg.Operator = Alg.MergeJoin(
                plan, scan, outer_positions, inner_positions
            )
            if bound_residual is not None:
                joined = Alg.Filter(joined, bound_residual)
            return joined
        self.metrics["hash_joins"] += 1
        return Alg.HashJoin(
            plan, scan, outer_positions, inner_positions, bound_residual, left_outer
        )

    @staticmethod
    def _split_equi(
        conjuncts: List[E.Expr], bound: Set[str], new_alias: str
    ) -> Tuple[List[Tuple[E.ColumnRef, E.ColumnRef]], List[E.Expr]]:
        """Partition join conjuncts into (outer_col = inner_col) pairs and rest."""
        equi: List[Tuple[E.ColumnRef, E.ColumnRef]] = []
        residual: List[E.Expr] = []
        for conjunct in conjuncts:
            pair = E.equality_pair(conjunct)
            if pair is not None:
                a, b = pair
                if a.qualifier in bound and b.qualifier == new_alias:
                    equi.append((a, b))
                    continue
                if b.qualifier in bound and a.qualifier == new_alias:
                    equi.append((b, a))
                    continue
            residual.append(conjunct)
        return equi, residual

    def _equi_keys(
        self, pool: List[E.Expr], bound: Set[str], alias: str
    ) -> List[Tuple[E.ColumnRef, E.ColumnRef]]:
        equi, _ = self._split_equi(
            [
                c
                for c in pool
                if E.references_only(c, list(bound | {alias}))
            ],
            bound,
            alias,
        )
        return equi

    def _estimate(self, binding: _Binding) -> int:
        if isinstance(binding.source, Table):
            stats = self.stats.get(binding.source.name)
            if stats is not None:
                return stats.row_count
            return binding.source.count()
        return 1000  # views: flat guess; good enough for greedy ordering

    # -- aggregation ----------------------------------------------------------

    def _plan_aggregate(
        self,
        select: A.Select,
        plan: Alg.Operator,
        qualifier: "_Qualifier",
        order_items: List[A.OrderItem],
    ) -> Alg.Operator:
        group_entries: List[Tuple[E.Expr, str, ColumnType]] = []
        group_unbound: List[E.Expr] = []
        for pos, expr in enumerate(select.group_by):
            expr = qualifier.qualify(expr)
            group_unbound.append(expr)
            name = expr.name if isinstance(expr, E.ColumnRef) else f"group{pos}"
            ctype = infer_expr_type(expr, plan.layout)
            group_entries.append((E.bind(expr, plan.layout), name, ctype))

        # Gather aggregate calls from select items, HAVING, and ORDER BY.
        agg_calls: List[A.AggCall] = []

        def register(call: A.AggCall) -> int:
            for pos, existing in enumerate(agg_calls):
                if (
                    existing.func == call.func
                    and existing.arg == call.arg
                    and existing.distinct == call.distinct
                ):
                    return pos
            agg_calls.append(call)
            return len(agg_calls) - 1

        item_plan: List[Tuple[str, int, str]] = []  # (kind, index, out_name)
        for pos, item in enumerate(select.items):
            if item.star:
                raise PlanError("SELECT * cannot be combined with GROUP BY")
            if isinstance(item.expr, A.AggCall):
                call = A.AggCall(
                    item.expr.func,
                    qualifier.qualify(item.expr.arg) if item.expr.arg is not None else None,
                    item.expr.distinct,
                )
                agg_index = register(call)
                out_name = item.alias or call.func
                item_plan.append(("agg", agg_index, out_name))
            else:
                expr = qualifier.qualify(item.expr)
                group_index = _index_of_expr(expr, group_unbound)
                if group_index is None:
                    raise PlanError(
                        f"{expr.to_sql()} must appear in GROUP BY or an aggregate"
                    )
                out_name = item.alias or (
                    expr.name if isinstance(expr, E.ColumnRef) else f"col{pos}"
                )
                item_plan.append(("group", group_index, out_name))

        def lift(expr: E.Expr) -> E.Expr:
            """Rewrite AggExpr and group expressions to agg-output ColumnRefs."""
            qualified_expr = qualifier.qualify(expr)

            def replace(node: E.Expr) -> Optional[E.Expr]:
                if isinstance(node, AggExpr):
                    call = A.AggCall(
                        node.call.func,
                        qualifier.qualify(node.call.arg)
                        if node.call.arg is not None
                        else None,
                        node.call.distinct,
                    )
                    agg_index = register(call)
                    return E.ColumnRef(f"__agg{agg_index}")
                group_index = _index_of_expr(node, group_unbound)
                if group_index is not None:
                    return E.ColumnRef(f"__group{group_index}")
                return None

            return E.rewrite(qualified_expr, replace)

        having_lifted = lift(select.having) if select.having is not None else None

        def lift_order(expr: E.Expr) -> E.Expr:
            # ORDER BY may name a select-item alias (ORDER BY y).
            if isinstance(expr, E.ColumnRef) and expr.qualifier is None:
                for kind, index, out_name in item_plan:
                    if out_name == expr.name:
                        internal = f"__agg{index}" if kind == "agg" else f"__group{index}"
                        return E.ColumnRef(internal)
            return lift(expr)

        order_lifted = [(lift_order(item.expr), item.ascending) for item in order_items]

        specs = []
        for pos, call in enumerate(agg_calls):
            out_type = _agg_output_type(call, plan.layout)
            bound_arg = E.bind(call.arg, plan.layout) if call.arg is not None else None
            specs.append(
                Alg.AggSpec(call.func, bound_arg, f"__agg{pos}", out_type, call.distinct)
            )
        internal_groups = [
            (bound, f"__group{pos}", ctype)
            for pos, (bound, _name, ctype) in enumerate(group_entries)
        ]
        agg_op = Alg.Aggregate(plan, internal_groups, specs)

        if having_lifted is not None:
            agg_op = Alg.Filter(agg_op, E.bind(having_lifted, agg_op.layout))

        sort_keys = [
            (E.bind(expr, agg_op.layout), ascending)
            for expr, ascending in order_lifted
        ]

        # Final projection: select items in order, with user-facing names.
        out_exprs: List[E.Expr] = []
        out_names: List[str] = []
        out_types: List[ColumnType] = []
        for kind, index, out_name in item_plan:
            source = f"__agg{index}" if kind == "agg" else f"__group{index}"
            position = agg_op.layout.resolve(None, source)
            out_exprs.append(E.ColumnRef(source, index=position))
            out_names.append(out_name)
            out_types.append(agg_op.layout.type_at(position))

        result: Alg.Operator = agg_op
        if sort_keys:
            result = Alg.Sort(result, sort_keys)
        return Alg.Project(result, out_exprs, out_names, out_types)

    # -- projection / order ---------------------------------------------------

    def _plan_projection(
        self,
        select: A.Select,
        plan: Alg.Operator,
        qualifier: "_Qualifier",
        order_items: List[A.OrderItem],
    ) -> Tuple[Alg.Operator, List[A.OrderItem]]:
        exprs: List[E.Expr] = []
        names: List[str] = []
        types: List[ColumnType] = []
        for pos, item in enumerate(select.items):
            if item.star:
                for slot_pos, (slot_q, slot_name, slot_type) in enumerate(
                    plan.layout.slots
                ):
                    if item.qualifier is not None and slot_q != item.qualifier.lower():
                        continue
                    exprs.append(E.ColumnRef(slot_name, slot_q, index=slot_pos))
                    names.append(slot_name)
                    types.append(slot_type)
                if item.qualifier is not None and not any(
                    slot_q == item.qualifier.lower() for slot_q, _n, _t in plan.layout.slots
                ):
                    raise BindError(f"unknown alias {item.qualifier!r} in select list")
                continue
            if isinstance(item.expr, A.AggCall):  # pragma: no cover - guarded earlier
                raise PlanError("aggregate outside aggregate query")
            expr = qualifier.qualify(item.expr)
            name = item.alias or (
                expr.name if isinstance(expr, E.ColumnRef) else f"col{pos}"
            )
            exprs.append(E.bind(expr, plan.layout))
            names.append(name)
            types.append(infer_expr_type(expr, plan.layout))

        # ORDER BY binds against the pre-projection layout when possible,
        # falling back to output names (SQL lets you order by an alias).
        if order_items and not select.distinct:
            sort_keys: List[Tuple[E.Expr, bool]] = []
            pre_projection = True
            for item in order_items:
                if isinstance(item.expr, AggExpr):
                    raise PlanError("ORDER BY aggregate requires a GROUP BY query")
                try:
                    qualified_expr = qualifier.qualify(item.expr)
                    sort_keys.append(
                        (E.bind(qualified_expr, plan.layout), item.ascending)
                    )
                except BindError:
                    pre_projection = False
                    break
            if pre_projection:
                order_items = []
                plan = Alg.Sort(plan, sort_keys)
        return Alg.Project(plan, exprs, names, types), order_items

    @staticmethod
    def _plan_order_by(
        order_items: List[A.OrderItem], plan: Alg.Operator
    ) -> Alg.Operator:
        """Sort over the final (projected) layout, e.g. by output alias."""
        sort_keys = []
        for item in order_items:
            if isinstance(item.expr, AggExpr):
                raise PlanError("ORDER BY aggregate requires a GROUP BY query")
            sort_keys.append((E.bind(item.expr, plan.layout), item.ascending))
        return Alg.Sort(plan, sort_keys)


class _Qualifier:
    """Rewrites bare column references to qualified ones against a layout.

    Also runs the planner's subquery resolver first, so every expression
    that goes through qualification has its subqueries materialised.
    """

    def __init__(self, layout: E.RowLayout, resolver=None) -> None:
        self._layout = layout
        self._resolver = resolver

    def qualify(self, expr: E.Expr) -> E.Expr:
        if self._resolver is not None:
            expr = self._resolver(expr)

        def fix(node: E.Expr) -> Optional[E.Expr]:
            if isinstance(node, AggExpr):
                return None  # handled by the aggregate planner
            if isinstance(node, E.ColumnRef) and node.qualifier is None:
                position = self._layout.resolve(None, node.name)
                slot_q, slot_name, _t = self._layout.slots[position]
                return E.ColumnRef(slot_name, slot_q)
            if isinstance(node, E.ColumnRef):
                self._layout.resolve(node.qualifier, node.name)  # existence check
            return None

        return E.rewrite(expr, fix)


def _index_of_expr(expr: E.Expr, pool: Sequence[E.Expr]) -> Optional[int]:
    for pos, candidate in enumerate(pool):
        if candidate == expr:
            return pos
    return None


def infer_expr_type(expr: E.Expr, layout: E.RowLayout) -> ColumnType:
    """Best-effort static type of *expr* over *layout* (for output schemas)."""
    if isinstance(expr, E.Param):
        return ColumnType.TEXT  # arbitrary; a `?` has no static type
    if isinstance(expr, E.Literal):
        if expr.value is None:
            return ColumnType.TEXT  # arbitrary; NULL literal has no type
        from repro.relational.types import infer_type

        return infer_type(expr.value)
    if isinstance(expr, E.ColumnRef):
        position = layout.resolve(expr.qualifier, expr.name)
        return layout.type_at(position)
    if isinstance(expr, E.BinOp):
        if expr.op in ("and", "or", "=", "!=", "<", "<=", ">", ">="):
            return ColumnType.BOOL
        left = infer_expr_type(expr.left, layout)
        right = infer_expr_type(expr.right, layout)
        if expr.op == "+" and left is ColumnType.TEXT:
            return ColumnType.TEXT
        if expr.op == "/":
            return ColumnType.FLOAT
        if ColumnType.FLOAT in (left, right):
            return ColumnType.FLOAT
        return ColumnType.INT
    if isinstance(expr, E.UnaryOp):
        if expr.op == "not":
            return ColumnType.BOOL
        return infer_expr_type(expr.operand, layout)
    if isinstance(expr, (E.IsNull, E.Like, E.InList)):
        return ColumnType.BOOL
    if isinstance(expr, E.Case):
        return infer_expr_type(expr.branches[0][1], layout)
    if isinstance(expr, E.FuncCall):
        if expr.func in ("lower", "upper", "substr", "trim", "ltrim", "rtrim", "replace"):
            return ColumnType.TEXT
        if expr.func in ("length", "year", "month", "day"):
            return ColumnType.INT
        if expr.func in ("abs", "coalesce", "round", "nullif"):
            return infer_expr_type(expr.args[0], layout)
    raise PlanError(f"cannot infer type of {expr.to_sql()}")


def _agg_output_type(call: A.AggCall, layout: E.RowLayout) -> ColumnType:
    if call.func == "count":
        return ColumnType.INT
    arg_type = infer_expr_type(call.arg, layout)
    if call.func == "avg":
        return ColumnType.FLOAT
    if call.func == "sum":
        return arg_type if arg_type in (ColumnType.INT, ColumnType.FLOAT) else ColumnType.FLOAT
    return arg_type  # min/max preserve the argument type
