"""Table statistics (ANALYZE) and selectivity estimation.

A single pass over a table collects, per column: distinct-value count,
null count, and min/max.  The planner uses these for its greedy join
ordering and the estimator exposes classic System-R-style selectivities:

* ``col = literal``  ->  1 / n_distinct
* range predicate    ->  1/3 (the textbook default)
* IS NULL            ->  null_fraction
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.relational import expr as E
from repro.relational.table import Table
from repro.relational.types import sort_key

DEFAULT_RANGE_SELECTIVITY = 1.0 / 3.0
DEFAULT_EQ_SELECTIVITY = 0.1


@dataclass
class ColumnStats:
    n_distinct: int = 0
    null_count: int = 0
    min_value: Any = None
    max_value: Any = None


@dataclass
class TableStats:
    row_count: int = 0
    columns: Dict[str, ColumnStats] = field(default_factory=dict)

    def selectivity(self, conjunct: E.Expr) -> float:
        """Estimated fraction of rows satisfying one conjunct."""
        if isinstance(conjunct, E.IsNull):
            operand = conjunct.operand
            if isinstance(operand, E.ColumnRef) and self.row_count:
                column = self.columns.get(operand.name)
                if column is not None:
                    fraction = column.null_count / self.row_count
                    return (1.0 - fraction) if conjunct.negated else fraction
            return DEFAULT_EQ_SELECTIVITY
        hit = E.const_comparison(conjunct)
        if hit is not None:
            column_ref, op, _value = hit
            column = self.columns.get(column_ref.name)
            if op == "=":
                if column is not None and column.n_distinct > 0:
                    return 1.0 / column.n_distinct
                return DEFAULT_EQ_SELECTIVITY
            if op == "!=":
                if column is not None and column.n_distinct > 0:
                    return 1.0 - 1.0 / column.n_distinct
                return 1.0 - DEFAULT_EQ_SELECTIVITY
            return DEFAULT_RANGE_SELECTIVITY
        if isinstance(conjunct, E.Like):
            return DEFAULT_RANGE_SELECTIVITY
        if isinstance(conjunct, E.InList):
            column = None
            if isinstance(conjunct.operand, E.ColumnRef):
                column = self.columns.get(conjunct.operand.name)
            per_item = (
                1.0 / column.n_distinct
                if column is not None and column.n_distinct > 0
                else DEFAULT_EQ_SELECTIVITY
            )
            return min(1.0, per_item * len(conjunct.items))
        return 0.5  # unknown shapes: coin flip

    def estimate_rows(self, conjuncts) -> float:
        """Estimated output rows for an AND of *conjuncts* over this table."""
        rows = float(self.row_count)
        for conjunct in conjuncts:
            rows *= self.selectivity(conjunct)
        return rows


def analyze_table(table: Table) -> TableStats:
    """One full scan collecting row count and per-column statistics."""
    stats = TableStats()
    distinct: Dict[str, set] = {c: set() for c in table.schema.column_names}
    nulls: Dict[str, int] = {c: 0 for c in table.schema.column_names}
    minmax: Dict[str, Optional[tuple]] = {c: None for c in table.schema.column_names}
    for row in table.rows():
        stats.row_count += 1
        for column, value in zip(table.schema.column_names, row):
            if value is None:
                nulls[column] += 1
                continue
            distinct[column].add(value)
            current = minmax[column]
            if current is None:
                minmax[column] = (value, value)
            else:
                low, high = current
                if sort_key(value) < sort_key(low):
                    low = value
                if sort_key(high) < sort_key(value):
                    high = value
                minmax[column] = (low, high)
    for column in table.schema.column_names:
        bounds = minmax[column]
        stats.columns[column] = ColumnStats(
            n_distinct=len(distinct[column]),
            null_count=nulls[column],
            min_value=bounds[0] if bounds else None,
            max_value=bounds[1] if bounds else None,
        )
    return stats
