"""Table statistics (ANALYZE), histograms, and selectivity estimation.

A single pass over a table collects, per column: a bounded-memory distinct
count (KMV sketch), null count, min/max, and — for columns with enough
non-null rows — an equi-depth histogram built from a deterministic
bottom-k sample.  Memory is O(sketch + sample) per column regardless of
table size; the old implementation kept every distinct value in a Python
set, which on a wide million-row table was a second copy of the data.

The estimator exposes classic System-R-style selectivities, refined by the
histogram when one exists:

* ``col = literal``  ->  1 / n_distinct (0 outside the observed range)
* range predicate    ->  histogram fraction, else 1/3 (textbook default)
* IS [NOT] NULL      ->  null_fraction (or its complement)
* ``IN (...)``       ->  sum over *distinct* items, complemented for NOT IN

Every cardinality the planner annotates goes through :func:`clamp_rows`
(ceil, floored at one row) — the same helper the static plan verifier uses
to reject non-normalized estimates — so EXPLAIN never shows ``[~0 rows]``
and downstream cost math never sees a negative or fractional row count.
"""

from __future__ import annotations

import heapq
import math
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.relational import expr as E
from repro.relational.table import Table
from repro.relational.types import sort_key

DEFAULT_RANGE_SELECTIVITY = 1.0 / 3.0
DEFAULT_EQ_SELECTIVITY = 0.1

#: equi-depth histogram resolution (bucket count)
HISTOGRAM_BUCKETS = 16
#: columns with fewer non-null values carry no histogram: over a handful of
#: rows the textbook defaults are as good as any bucket math (and the
#: tiny-table estimates are pinned by long-standing tests)
HISTOGRAM_MIN_ROWS = 100
#: histogram sample bound: the k smallest-hashed values stand in for the
#: column; at or below this many rows the "sample" is the whole column
HISTOGRAM_SAMPLE = 4096
#: KMV sketch size: up to this many distinct values the count is exact
NDV_SKETCH_SIZE = 256

#: the floor every normalized cardinality estimate respects
MIN_EST_ROWS = 1.0


def clamp_rows(value: float) -> float:
    """Normalize a cardinality estimate: ceil, floored at one row.

    Selectivity products routinely land below one (rendering as
    ``[~0 rows]`` in EXPLAIN) and a buggy path could go negative; this is
    the single normalization point shared by the planner's annotations and
    the static plan verifier's estimate check.
    """
    value = float(value)
    if not math.isfinite(value):
        return MIN_EST_ROWS
    return float(max(MIN_EST_ROWS, math.ceil(value)))


def is_valid_estimate(value: Any) -> bool:
    """True when *value* is a normalized estimate (what clamp_rows emits)."""
    try:
        number = float(value)
    except (TypeError, ValueError):
        return False
    return math.isfinite(number) and number >= MIN_EST_ROWS


def _hash01(value: Any) -> float:
    """Deterministic hash of *value* into [0, 1).

    crc32 over a type-tagged repr: stable across processes (unlike builtin
    ``hash`` under PYTHONHASHSEED) and cheap enough for an ANALYZE scan.
    """
    data = repr((type(value).__name__, value)).encode("utf-8", "backslashreplace")
    return zlib.crc32(data) / 4294967296.0


class DistinctSketch:
    """Bounded-memory distinct counter: the k minimum hash values (KMV).

    Below *k* distinct values the count is exact; beyond, the classic
    ``(k - 1) / kth_smallest_hash`` estimator.  Memory is O(k) no matter
    how many values stream through.
    """

    __slots__ = ("k", "_members", "_neg_heap", "_saturated")

    def __init__(self, k: int = NDV_SKETCH_SIZE) -> None:
        self.k = max(2, k)
        self._members: set = set()
        self._neg_heap: List[float] = []  # max-heap of kept hashes, negated
        self._saturated = False

    def add(self, value: Any) -> None:
        h = _hash01(value)
        if h in self._members:
            return
        if len(self._members) < self.k:
            self._members.add(h)
            heapq.heappush(self._neg_heap, -h)
            return
        self._saturated = True
        largest = -self._neg_heap[0]
        if h < largest:
            self._members.discard(largest)
            self._members.add(h)
            heapq.heapreplace(self._neg_heap, -h)

    def estimate(self) -> int:
        if not self._saturated:
            return len(self._members)
        kth = -self._neg_heap[0]
        if kth <= 0.0:
            return len(self._members)
        return max(self.k, int(round((self.k - 1) / kth)))


@dataclass
class Histogram:
    """Equi-depth histogram over one column's non-null values.

    ``bounds`` has ``len(counts) + 1`` edges; bucket *i* spans
    ``(bounds[i], bounds[i+1]]`` (the first bucket includes its lower edge)
    and holds ``counts[i]`` sampled values.  Selectivities are fractions of
    the sampled population, so no rescaling to the full table is needed.
    """

    bounds: List[Any]
    counts: List[int]

    @property
    def total(self) -> int:
        return sum(self.counts)

    def out_of_range(self, value: Any) -> bool:
        key = sort_key(value)
        return key < sort_key(self.bounds[0]) or sort_key(self.bounds[-1]) < key

    def _fraction_below(self, value: Any) -> float:
        """Approximate fraction of values strictly below *value*."""
        key = sort_key(value)
        total = self.total
        if total <= 0:
            return 0.0
        below = 0.0
        for i, count in enumerate(self.counts):
            lo, hi = self.bounds[i], self.bounds[i + 1]
            if sort_key(hi) < key:
                below += count
            elif not (sort_key(lo) < key):  # sort keys only define ``<``
                break
            else:
                below += count * self._within(lo, hi, value)
                break
        return min(1.0, below / total)

    @staticmethod
    def _within(lo: Any, hi: Any, value: Any) -> float:
        """Position of *value* inside (lo, hi]: interpolated when numeric."""
        if (
            isinstance(lo, (int, float))
            and isinstance(hi, (int, float))
            and isinstance(value, (int, float))
            and hi > lo
        ):
            return min(1.0, max(0.0, (value - lo) / (hi - lo)))
        return 0.5  # non-numeric bucket: assume the middle

    def selectivity_range(self, op: str, value: Any) -> float:
        below = self._fraction_below(value)
        if op in ("<", "<="):
            return below
        return max(0.0, 1.0 - below)

    def to_doc(self) -> Dict[str, Any]:
        return {
            "bounds": [stat_value_to_doc(b) for b in self.bounds],
            "counts": list(self.counts),
        }

    @classmethod
    def from_doc(cls, doc: Dict[str, Any]) -> Optional["Histogram"]:
        try:
            bounds = [stat_value_from_doc(b) for b in doc["bounds"]]
            counts = [int(c) for c in doc["counts"]]
        except (KeyError, TypeError, ValueError):
            return None
        if len(bounds) != len(counts) + 1 or not counts:
            return None
        return cls(bounds, counts)


def build_histogram(values: List[Any], buckets: int = HISTOGRAM_BUCKETS) -> Optional[Histogram]:
    """An equi-depth histogram over *values* (a sample of the column)."""
    if not values:
        return None
    ordered = sorted(values, key=sort_key)
    n = len(ordered)
    buckets = max(1, min(buckets, n))
    bounds: List[Any] = [ordered[0]]
    counts: List[int] = []
    prev = 0
    for b in range(1, buckets + 1):
        hi = (b * n) // buckets
        if hi <= prev:
            continue
        bounds.append(ordered[hi - 1])
        counts.append(hi - prev)
        prev = hi
    return Histogram(bounds, counts)


@dataclass
class ColumnStats:
    n_distinct: int = 0
    null_count: int = 0
    min_value: Any = None
    max_value: Any = None
    histogram: Optional[Histogram] = None


@dataclass
class TableStats:
    row_count: int = 0
    columns: Dict[str, ColumnStats] = field(default_factory=dict)
    #: heap pages at ANALYZE time — the cost model's I/O term
    pages: int = 0

    def selectivity(self, conjunct: E.Expr) -> float:
        """Estimated fraction of rows satisfying one conjunct."""
        if isinstance(conjunct, E.IsNull):
            operand = conjunct.operand
            if isinstance(operand, E.ColumnRef) and self.row_count:
                column = self.columns.get(operand.name)
                if column is not None:
                    fraction = column.null_count / self.row_count
                    return (1.0 - fraction) if conjunct.negated else fraction
            # No stats: IS NULL matches few rows; IS NOT NULL is its
            # complement, not equally selective.
            if conjunct.negated:
                return 1.0 - DEFAULT_EQ_SELECTIVITY
            return DEFAULT_EQ_SELECTIVITY
        hit = E.const_comparison(conjunct)
        if hit is not None:
            column_ref, op, value = hit
            column = self.columns.get(column_ref.name)
            if op == "=":
                return self._eq_selectivity(column, value)
            if op == "!=":
                return 1.0 - self._eq_selectivity(column, value)
            return self._range_selectivity(column, op, value)
        if isinstance(conjunct, E.Like):
            return DEFAULT_RANGE_SELECTIVITY
        if isinstance(conjunct, E.InList):
            return self._in_list_selectivity(conjunct)
        return 0.5  # unknown shapes: coin flip

    def _eq_selectivity(self, column: Optional[ColumnStats], value: Any) -> float:
        if column is not None and self.row_count and column.null_count >= self.row_count:
            return 0.0  # all-NULL column: equality never matches
        if column is None or column.n_distinct <= 0:
            return DEFAULT_EQ_SELECTIVITY
        if value is not None and column.histogram is not None:
            try:
                if column.histogram.out_of_range(value):
                    return 0.0  # outside the observed domain
            except TypeError:
                pass  # cross-type comparison: no histogram information
        return 1.0 / column.n_distinct

    def _range_selectivity(
        self, column: Optional[ColumnStats], op: str, value: Any
    ) -> float:
        if column is not None and column.histogram is not None and value is not None:
            try:
                return column.histogram.selectivity_range(op, value)
            except TypeError:
                return DEFAULT_RANGE_SELECTIVITY
        return DEFAULT_RANGE_SELECTIVITY

    def _in_list_selectivity(self, conjunct: E.InList) -> float:
        column = None
        if isinstance(conjunct.operand, E.ColumnRef):
            column = self.columns.get(conjunct.operand.name)
        # Dedupe constant items: IN (1, 1, 1) hits at most one distinct value.
        seen: set = set()
        items: List[E.Expr] = []
        for item in conjunct.items:
            if isinstance(item, E.Literal):
                marker: Tuple[str, Any] = (type(item.value).__name__, item.value)
                try:
                    if marker in seen:
                        continue
                    seen.add(marker)
                except TypeError:
                    pass  # unhashable literal: keep it
            items.append(item)
        selectivity = 0.0
        for item in items:
            if isinstance(item, E.Literal):
                selectivity += self._eq_selectivity(column, item.value)
            else:
                selectivity += self._eq_selectivity(column, None)
        selectivity = min(1.0, selectivity)
        # NOT IN is the complement, not the same estimate.
        return (1.0 - selectivity) if conjunct.negated else selectivity

    def estimate_rows(self, conjuncts) -> float:
        """Estimated output rows for an AND of *conjuncts* over this table,
        normalized through :func:`clamp_rows` (always a whole number >= 1)."""
        return clamp_rows(self.estimate_rows_raw(conjuncts))

    def estimate_rows_raw(self, conjuncts) -> float:
        """The un-normalized selectivity product (internal cost math only)."""
        rows = float(self.row_count)
        for conjunct in conjuncts:
            rows *= self.selectivity(conjunct)
        return rows


class _BottomKSample:
    """A deterministic uniform sample: keep the k values whose position hash
    is smallest.  Hash-ranked rather than random.random-reservoir because
    ``relational/`` is a crash-replayed engine path (see wowlint WOW004)."""

    __slots__ = ("k", "_neg_heap")

    def __init__(self, k: int = HISTOGRAM_SAMPLE) -> None:
        self.k = k
        self._neg_heap: List[Tuple[float, int, Any]] = []

    def add(self, ordinal: int, value: Any) -> None:
        rank = -_hash01(ordinal)
        if len(self._neg_heap) < self.k:
            heapq.heappush(self._neg_heap, (rank, ordinal, value))
        elif rank > self._neg_heap[0][0]:
            heapq.heapreplace(self._neg_heap, (rank, ordinal, value))

    def values(self) -> List[Any]:
        return [entry[2] for entry in self._neg_heap]


def analyze_table(
    table: Table,
    buckets: int = HISTOGRAM_BUCKETS,
    sketch_size: int = NDV_SKETCH_SIZE,
) -> TableStats:
    """One full scan collecting row count and per-column statistics.

    Per-column memory is bounded: distinct values go through a KMV sketch,
    histogram input through a bottom-k sample.  Columns whose non-null count
    is below :data:`HISTOGRAM_MIN_ROWS` get min/max and NDV only.
    """
    stats = TableStats()
    names = table.schema.column_names
    sketches: Dict[str, DistinctSketch] = {c: DistinctSketch(sketch_size) for c in names}
    samples: Dict[str, _BottomKSample] = {c: _BottomKSample() for c in names}
    nulls: Dict[str, int] = {c: 0 for c in names}
    minmax: Dict[str, Optional[tuple]] = {c: None for c in names}
    ordinal = 0
    for row in table.rows():
        stats.row_count += 1
        ordinal += 1
        for column, value in zip(names, row):
            if value is None:
                nulls[column] += 1
                continue
            sketches[column].add(value)
            samples[column].add(ordinal, value)
            current = minmax[column]
            if current is None:
                minmax[column] = (value, value)
            else:
                low, high = current
                if sort_key(value) < sort_key(low):
                    low = value
                if sort_key(high) < sort_key(value):
                    high = value
                minmax[column] = (low, high)
    for column in names:
        bounds = minmax[column]
        non_null = stats.row_count - nulls[column]
        histogram = None
        if non_null >= HISTOGRAM_MIN_ROWS:
            histogram = build_histogram(samples[column].values(), buckets)
        stats.columns[column] = ColumnStats(
            # The KMV estimate can overshoot the true count; there are
            # never more distinct values than non-null rows.
            n_distinct=min(sketches[column].estimate(), non_null),
            null_count=nulls[column],
            min_value=bounds[0] if bounds else None,
            max_value=bounds[1] if bounds else None,
            histogram=histogram,
        )
    page_count = getattr(table.heap, "page_count", None)
    stats.pages = int(page_count()) if callable(page_count) else 0
    return stats


# -- catalog persistence -----------------------------------------------------


def stat_value_to_doc(value: Any) -> Any:
    """A JSON-safe form of a statistics value (min/max, histogram bounds)."""
    import datetime

    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, datetime.date):
        return {"$date": value.isoformat()}
    return None  # exotic type: drop rather than corrupt the catalog doc


def stat_value_from_doc(doc: Any) -> Any:
    import datetime

    if isinstance(doc, dict) and "$date" in doc:
        try:
            return datetime.date.fromisoformat(doc["$date"])
        except (TypeError, ValueError):
            return None
    return doc


def stats_to_doc(stats: TableStats) -> Dict[str, Any]:
    """Serialize one table's statistics for the catalog JSON document."""
    return {
        "row_count": stats.row_count,
        "pages": stats.pages,
        "columns": {
            name: {
                "n_distinct": column.n_distinct,
                "null_count": column.null_count,
                "min": stat_value_to_doc(column.min_value),
                "max": stat_value_to_doc(column.max_value),
                "histogram": (
                    None if column.histogram is None else column.histogram.to_doc()
                ),
            }
            for name, column in sorted(stats.columns.items())
        },
    }


def stats_from_doc(doc: Dict[str, Any]) -> Optional[TableStats]:
    """Rebuild TableStats from :func:`stats_to_doc` output (None if torn)."""
    try:
        stats = TableStats(row_count=int(doc["row_count"]), pages=int(doc.get("pages", 0)))
        for name, column_doc in doc.get("columns", {}).items():
            histogram_doc = column_doc.get("histogram")
            stats.columns[name] = ColumnStats(
                n_distinct=int(column_doc["n_distinct"]),
                null_count=int(column_doc["null_count"]),
                min_value=stat_value_from_doc(column_doc.get("min")),
                max_value=stat_value_from_doc(column_doc.get("max")),
                histogram=(
                    None if histogram_doc is None else Histogram.from_doc(histogram_doc)
                ),
            )
    except (KeyError, TypeError, ValueError):
        return None
    return stats
