"""CSV import/export — the bulk-data side door every 1983 site needed.

Exports render values with the same formatter the forms use, so a round
trip through CSV is lossless for every supported type (NULL becomes the
empty string, and empty TEXT exports as a quoted empty string to stay
distinguishable).
"""

from __future__ import annotations

import csv
import io
import os
from typing import Iterable, List, Optional, Sequence, TextIO, Union

from repro.errors import SchemaError
from repro.relational.database import Database
from repro.relational.faults import DEFAULT_IO
from repro.relational.types import ColumnType, format_value, parse_input

_NULL_TOKEN = ""


def export_csv(
    db: Database,
    source: str,
    out: Union[str, TextIO],
    header: bool = True,
    where: Optional[str] = None,
) -> int:
    """Write all rows of a table or view to CSV; returns the row count.

    *out* is a file path or a writable text stream.
    """
    schema = db.catalog.schema_of(source)
    sql = f"SELECT * FROM {source}"
    if where:
        sql += f" WHERE {where}"
    if schema.primary_key:
        sql += " ORDER BY " + ", ".join(schema.primary_key)
    rows = db.query(sql)

    def write(stream: TextIO) -> None:
        writer = csv.writer(stream, lineterminator="\n")
        if header:
            writer.writerow(schema.column_names)
        for row in rows:
            writer.writerow(
                [
                    _NULL_TOKEN if value is None else format_value(value)
                    for value in row
                ]
            )

    if isinstance(out, str):
        # Path target: buffer the CSV and write it through the database's
        # IOShim, so crash exhaustion covers exports like any engine write.
        buffer = io.StringIO()
        write(buffer)
        io_shim = getattr(db, "_io", None) or DEFAULT_IO
        fd = io_shim.open(out, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
        try:
            io_shim.write_all(fd, buffer.getvalue().encode("utf-8"))
            io_shim.fsync(fd)
        finally:
            os.close(fd)
    else:
        write(out)
    return len(rows)


def import_csv(
    db: Database,
    target: str,
    source: Union[str, TextIO],
    header: bool = True,
    columns: Optional[Sequence[str]] = None,
) -> int:
    """Load CSV rows into a table or updatable view; returns the row count.

    With ``header=True`` (default) the first line names the columns; with
    ``header=False`` the caller must pass *columns* (or the file must have
    exactly the target's full width, in declaration order).  Values are
    parsed with the same rules as form input: the empty string is NULL for
    non-TEXT columns (TEXT keeps it as an empty string only when quoted —
    csv cannot distinguish, so for TEXT the empty cell imports as NULL too;
    use a placeholder if you need empty strings).  The whole import is one
    statement: any bad row rolls everything back.
    """
    schema = db.catalog.schema_of(target)

    def load(stream: TextIO) -> int:
        reader = csv.reader(stream)
        rows = list(reader)
        if not rows:
            return 0
        if header:
            names = [name.strip().lower() for name in rows[0]]
            body = rows[1:]
        elif columns is not None:
            names = [name.lower() for name in columns]
            body = rows
        else:
            names = list(schema.column_names)
            body = rows
        for name in names:
            if not schema.has_column(name):
                raise SchemaError(f"{target!r} has no column {name!r}")
        count = 0
        own_txn = not db.txn.active
        if own_txn:
            db.execute("BEGIN")
        else:
            db.execute("SAVEPOINT __csv_import")
        try:
            for line_no, raw in enumerate(body, start=2 if header else 1):
                if not raw:
                    continue
                if len(raw) != len(names):
                    raise SchemaError(
                        f"CSV line {line_no}: expected {len(names)} values, "
                        f"got {len(raw)}"
                    )
                values = {}
                for name, text in zip(names, raw):
                    ctype = schema.column(name).ctype
                    if ctype is ColumnType.TEXT:
                        # Preserve the cell exactly (whitespace included);
                        # only a fully empty cell means NULL.
                        values[name] = text if text != "" else None
                    else:
                        values[name] = parse_input(text, ctype)
                db.insert(target, values)
                count += 1
        except Exception:
            if own_txn:
                db.execute("ROLLBACK")
            else:
                db.execute("ROLLBACK TO __csv_import")
            raise
        if own_txn:
            db.execute("COMMIT")
        else:
            db.execute("RELEASE SAVEPOINT __csv_import")
        return count

    if isinstance(source, str):
        with open(source, "r", encoding="utf-8", newline="") as fh:
            return load(fh)
    return load(source)


def export_csv_text(db: Database, source: str, **kwargs) -> str:
    """Convenience: export to a string (tests and small dumps)."""
    buffer = io.StringIO()
    export_csv(db, source, buffer, **kwargs)
    return buffer.getvalue()


def import_csv_text(db: Database, target: str, text: str, **kwargs) -> int:
    """Convenience: import from a string."""
    return import_csv(db, target, io.StringIO(text), **kwargs)
