"""Table schemas: columns, constraints, and row validation.

A :class:`TableSchema` is an immutable description of a relation: an ordered
list of :class:`Column` plus table-level constraints (primary key, unique
sets, foreign keys).  Rows flowing through the engine are plain tuples whose
positions match the schema's column order; the schema is the single authority
for turning user-supplied dicts into validated tuples and back.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ConstraintError, SchemaError
from repro.relational.types import ColumnType, coerce

_IDENT_OK = set("abcdefghijklmnopqrstuvwxyz0123456789_")


def check_identifier(name: str, what: str = "identifier") -> str:
    """Validate and normalise an identifier (lower-cased, [a-z_][a-z0-9_]*)."""
    lowered = name.lower()
    if not lowered or lowered[0].isdigit() or not set(lowered) <= _IDENT_OK:
        raise SchemaError(f"invalid {what}: {name!r}")
    return lowered


@dataclass(frozen=True)
class Column:
    """A single attribute of a relation."""

    name: str
    ctype: ColumnType
    nullable: bool = True
    default: Any = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "name", check_identifier(self.name, "column name"))
        if self.default is not None:
            object.__setattr__(self, "default", coerce(self.default, self.ctype))


@dataclass(frozen=True)
class ForeignKey:
    """A referential constraint: columns -> parent_table(parent_columns)."""

    columns: Tuple[str, ...]
    parent_table: str
    parent_columns: Tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.columns) != len(self.parent_columns):
            raise SchemaError("foreign key column count mismatch")
        if not self.columns:
            raise SchemaError("foreign key needs at least one column")


class TableSchema:
    """Ordered columns plus table-level constraints for one relation.

    Parameters
    ----------
    name:
        Table name (normalised to lower case).
    columns:
        Ordered column definitions; at least one, names unique.
    primary_key:
        Optional sequence of column names forming the primary key.  Primary
        key columns are implicitly NOT NULL.
    unique:
        Optional iterable of column-name sequences, each enforced unique.
    foreign_keys:
        Optional iterable of :class:`ForeignKey`.
    """

    def __init__(
        self,
        name: str,
        columns: Sequence[Column],
        primary_key: Optional[Sequence[str]] = None,
        unique: Optional[Iterable[Sequence[str]]] = None,
        foreign_keys: Optional[Iterable[ForeignKey]] = None,
        checks: Optional[Iterable[Any]] = None,
    ) -> None:
        self.name = check_identifier(name, "table name")
        if not columns:
            raise SchemaError(f"table {name!r} must have at least one column")
        self.columns: Tuple[Column, ...] = tuple(columns)
        self._index_of: Dict[str, int] = {}
        for pos, col in enumerate(self.columns):
            if col.name in self._index_of:
                raise SchemaError(f"duplicate column {col.name!r} in {name!r}")
            self._index_of[col.name] = pos

        self.primary_key: Tuple[str, ...] = tuple(
            self._require(c) for c in (primary_key or ())
        )
        if len(set(self.primary_key)) != len(self.primary_key):
            raise SchemaError("duplicate column in primary key")
        if self.primary_key:
            # PK columns are implicitly NOT NULL.
            fixed = []
            for col in self.columns:
                if col.name in self.primary_key and col.nullable:
                    fixed.append(Column(col.name, col.ctype, False, col.default))
                else:
                    fixed.append(col)
            self.columns = tuple(fixed)

        self.unique: Tuple[Tuple[str, ...], ...] = tuple(
            tuple(self._require(c) for c in group) for group in (unique or ())
        )
        for group in self.unique:
            if len(set(group)) != len(group):
                raise SchemaError("duplicate column in unique constraint")

        self.foreign_keys: Tuple[ForeignKey, ...] = tuple(foreign_keys or ())
        for fk in self.foreign_keys:
            for col in fk.columns:
                self._require(col)

        #: CHECK constraint expressions (unbound Expr trees over this
        #: table's columns); enforced by the database layer on every write.
        self.checks: Tuple[Any, ...] = tuple(checks or ())

    # -- column addressing --------------------------------------------------

    def _require(self, name: str) -> str:
        lowered = name.lower()
        if lowered not in self._index_of:
            raise SchemaError(f"no column {name!r} in table {self.name!r}")
        return lowered

    def column_index(self, name: str) -> int:
        """Position of column *name* (case-insensitive); SchemaError if absent."""
        return self._index_of[self._require(name)]

    def column(self, name: str) -> Column:
        """The :class:`Column` named *name*."""
        return self.columns[self.column_index(name)]

    def has_column(self, name: str) -> bool:
        """True if a column of that (case-insensitive) name exists."""
        return name.lower() in self._index_of

    @property
    def column_names(self) -> Tuple[str, ...]:
        """Column names in declaration order."""
        return tuple(col.name for col in self.columns)

    @property
    def arity(self) -> int:
        """Number of columns."""
        return len(self.columns)

    # -- row construction and validation ------------------------------------

    def row_from_mapping(self, values: Mapping[str, Any]) -> Tuple[Any, ...]:
        """Build a validated row tuple from a column-name -> value mapping.

        Missing columns take their default (or NULL); unknown keys raise.
        """
        unknown = [k for k in values if not self.has_column(k)]
        if unknown:
            raise SchemaError(
                f"unknown column(s) {unknown!r} for table {self.name!r}"
            )
        normalised = {k.lower(): v for k, v in values.items()}
        row = []
        for col in self.columns:
            if col.name in normalised:
                row.append(coerce(normalised[col.name], col.ctype))
            else:
                row.append(col.default)
        return self.validate_row(tuple(row))

    def validate_row(self, row: Sequence[Any]) -> Tuple[Any, ...]:
        """Coerce and NOT-NULL-check a positional row; returns the clean tuple."""
        if len(row) != self.arity:
            raise SchemaError(
                f"table {self.name!r} expects {self.arity} values, got {len(row)}"
            )
        clean = []
        for col, value in zip(self.columns, row):
            value = coerce(value, col.ctype)
            if value is None and not col.nullable:
                raise ConstraintError(
                    f"column {self.name}.{col.name} is NOT NULL"
                )
            clean.append(value)
        return tuple(clean)

    def row_to_mapping(self, row: Sequence[Any]) -> Dict[str, Any]:
        """Inverse of :meth:`row_from_mapping` (no validation)."""
        return dict(zip(self.column_names, row))

    def key_of(self, row: Sequence[Any]) -> Tuple[Any, ...]:
        """Extract the primary-key values of *row* (empty tuple if keyless)."""
        return tuple(row[self.column_index(c)] for c in self.primary_key)

    def project(self, names: Sequence[str]) -> "TableSchema":
        """A new anonymous schema with just *names*, preserving their types."""
        cols = [self.column(n) for n in names]
        return TableSchema(self.name, cols)

    # -- misc ----------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TableSchema):
            return NotImplemented
        return (
            self.name == other.name
            and self.columns == other.columns
            and self.primary_key == other.primary_key
            and self.unique == other.unique
            and self.foreign_keys == other.foreign_keys
            and self.checks == other.checks
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cols = ", ".join(f"{c.name} {c.ctype}" for c in self.columns)
        return f"TableSchema({self.name}: {cols})"
