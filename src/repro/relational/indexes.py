"""Secondary indexes: hash (equality) and B+-tree (equality + range).

An index maps a key — the tuple of the indexed columns' values — to the
RowIds of the rows bearing that key.  Unique indexes reject duplicate keys,
except that (per SQL convention) keys containing NULL never conflict.

Indexes are maintained eagerly by the table layer on every insert, delete,
and update, and can be rebuilt from a full scan after recovery.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ConstraintError, SchemaError
from repro.relational.btree import BPlusTree
from repro.relational.heap import RowId
from repro.relational.types import sort_key

Key = Tuple[Any, ...]


def _has_null(key: Key) -> bool:
    return any(component is None for component in key)


class Index:
    """Common interface for all index kinds."""

    #: True if this index supports ordered range scans.
    ordered = False

    def __init__(self, name: str, table: str, columns: Sequence[str], unique: bool) -> None:
        if not columns:
            raise SchemaError("an index needs at least one column")
        if len(set(columns)) != len(columns):
            raise SchemaError(f"duplicate column in index {name!r}")
        self.name = name
        self.table = table
        self.columns: Tuple[str, ...] = tuple(columns)
        self.unique = unique

    def insert(self, key: Key, rid: RowId) -> None:
        raise NotImplementedError

    def delete(self, key: Key, rid: RowId) -> None:
        raise NotImplementedError

    def lookup(self, key: Key) -> List[RowId]:
        raise NotImplementedError

    def clear(self) -> None:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def _check_unique(self, key: Key, existing: Sequence[RowId]) -> None:
        if self.unique and existing and not _has_null(key):
            raise ConstraintError(
                f"duplicate key {key!r} for unique index {self.name!r}"
            )


class HashIndex(Index):
    """Equality-only index backed by a dict of key -> [RowId]."""

    def __init__(self, name: str, table: str, columns: Sequence[str], unique: bool = False) -> None:
        super().__init__(name, table, columns, unique)
        self._map: Dict[Key, List[RowId]] = {}

    def insert(self, key: Key, rid: RowId) -> None:
        bucket = self._map.setdefault(key, [])
        self._check_unique(key, bucket)
        bucket.append(rid)

    def delete(self, key: Key, rid: RowId) -> None:
        bucket = self._map.get(key)
        if not bucket or rid not in bucket:
            raise SchemaError(f"index {self.name!r} has no entry {key!r} -> {rid}")
        bucket.remove(rid)
        if not bucket:
            del self._map[key]

    def lookup(self, key: Key) -> List[RowId]:
        return list(self._map.get(key, ()))

    def clear(self) -> None:
        self._map.clear()

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._map.values())


class _OrderedKey:
    """Comparable wrapper giving tuple keys the engine's NULLS FIRST order."""

    __slots__ = ("raw", "wrapped")

    def __init__(self, raw: Key) -> None:
        self.raw = raw
        self.wrapped = tuple(sort_key(component) for component in raw)

    def __lt__(self, other: "_OrderedKey") -> bool:
        return self.wrapped < other.wrapped

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, _OrderedKey):
            return NotImplemented
        return self.wrapped == other.wrapped


class BTreeIndex(Index):
    """Ordered index supporting equality and range scans."""

    ordered = True

    def __init__(
        self,
        name: str,
        table: str,
        columns: Sequence[str],
        unique: bool = False,
        branching: int = 64,
    ) -> None:
        super().__init__(name, table, columns, unique)
        self._tree = BPlusTree(branching=branching)
        self._size = 0

    def insert(self, key: Key, rid: RowId) -> None:
        wrapped = _OrderedKey(key)
        bucket = self._tree.get(wrapped)
        if bucket is None:
            bucket = []
            self._tree.insert(wrapped, bucket)
        self._check_unique(key, bucket)
        bucket.append(rid)
        self._size += 1

    def delete(self, key: Key, rid: RowId) -> None:
        wrapped = _OrderedKey(key)
        bucket = self._tree.get(wrapped)
        if not bucket or rid not in bucket:
            raise SchemaError(f"index {self.name!r} has no entry {key!r} -> {rid}")
        bucket.remove(rid)
        if not bucket:
            self._tree.delete(wrapped)
        self._size -= 1

    def lookup(self, key: Key) -> List[RowId]:
        bucket = self._tree.get(_OrderedKey(key))
        return list(bucket) if bucket else []

    def range_scan(
        self,
        low: Optional[Key] = None,
        high: Optional[Key] = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> Iterator[Tuple[Key, RowId]]:
        """Yield (key, rid) in key order for low <= key <= high.

        A one-sided or unbounded scan is expressed by passing None for the
        missing bound.  Bounds are full key tuples (prefix bounds are the
        planner's job: it pads with -inf/+inf semantics by using one-sided
        scans plus residual filters).
        """
        wrapped_low = _OrderedKey(low) if low is not None else None
        wrapped_high = _OrderedKey(high) if high is not None else None
        for wrapped, bucket in self._tree.range(
            wrapped_low, wrapped_high, include_low, include_high
        ):
            for rid in bucket:
                yield wrapped.raw, rid

    def clear(self) -> None:
        self._tree = BPlusTree()
        self._size = 0

    def __len__(self) -> int:
        return self._size


def make_index(
    kind: str, name: str, table: str, columns: Sequence[str], unique: bool = False
) -> Index:
    """Factory used by the catalog: kind is 'hash' or 'btree'."""
    kind = kind.lower()
    if kind == "hash":
        return HashIndex(name, table, columns, unique)
    if kind == "btree":
        return BTreeIndex(name, table, columns, unique)
    raise SchemaError(f"unknown index kind {kind!r}")
