"""An in-memory B+-tree keyed by comparable keys.

Used by the ordered secondary indexes (`repro.relational.indexes`).  Leaves
hold (key, payload) pairs and are chained left-to-right, so range scans are
a leaf walk.  The tree maps each key to exactly one payload object; the
index layer stores a list of RowIds as the payload for non-unique indexes.

The implementation is a textbook order-``branching`` B+-tree with node
splits on the way down (preemptive splitting keeps the code free of parent
back-tracking).
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator, List, Optional, Tuple


class _Node:
    __slots__ = ("keys", "children", "values", "next_leaf")

    def __init__(self, leaf: bool) -> None:
        self.keys: List[Any] = []
        # Interior nodes use .children; leaves use .values and .next_leaf.
        self.children: Optional[List["_Node"]] = None if leaf else []
        self.values: Optional[List[Any]] = [] if leaf else None
        self.next_leaf: Optional["_Node"] = None

    @property
    def is_leaf(self) -> bool:
        return self.values is not None


class BPlusTree:
    """Ordered map with range scans; keys must be mutually comparable."""

    def __init__(self, branching: int = 64) -> None:
        if branching < 4:
            raise ValueError("branching factor must be >= 4")
        self._branching = branching
        self._root = _Node(leaf=True)
        self._size = 0
        #: lifetime count of nodes touched by descents (get/insert/delete/
        #: range); maintained with one local accumulation per operation so
        #: the hot loops stay branch-free
        self.node_visits = 0

    def __len__(self) -> int:
        return self._size

    # -- mutation -------------------------------------------------------------

    def insert(self, key: Any, value: Any) -> None:
        """Set ``tree[key] = value`` (replaces any existing payload)."""
        root = self._root
        if self._is_full(root):
            new_root = _Node(leaf=False)
            new_root.children.append(root)
            self._split_child(new_root, 0)
            self._root = new_root
            root = new_root
        self._insert_nonfull(root, key, value)

    def get(self, key: Any, default: Any = None) -> Any:
        """Payload stored at *key*, or *default*."""
        node = self._root
        visited = 1
        while not node.is_leaf:
            idx = bisect.bisect_right(node.keys, key)
            node = node.children[idx]
            visited += 1
        self.node_visits += visited
        idx = bisect.bisect_left(node.keys, key)
        if idx < len(node.keys) and not (node.keys[idx] < key or key < node.keys[idx]):
            return node.values[idx]
        return default

    def delete(self, key: Any) -> bool:
        """Remove *key*; returns True if it was present.

        Uses lazy deletion at the leaf (no rebalancing).  Lookup and scan
        performance degrade only if a workload deletes most of a large tree,
        which the engine's table-rewrite path avoids by rebuilding indexes.
        """
        node = self._root
        visited = 1
        while not node.is_leaf:
            idx = bisect.bisect_right(node.keys, key)
            node = node.children[idx]
            visited += 1
        self.node_visits += visited
        idx = bisect.bisect_left(node.keys, key)
        if idx < len(node.keys) and not (node.keys[idx] < key or key < node.keys[idx]):
            node.keys.pop(idx)
            node.values.pop(idx)
            self._size -= 1
            return True
        return False

    # -- scans ------------------------------------------------------------

    def items(self) -> Iterator[Tuple[Any, Any]]:
        """All (key, payload) pairs in key order."""
        node = self._leftmost_leaf()
        while node is not None:
            for key, value in zip(node.keys, node.values):
                yield key, value
            node = node.next_leaf

    def range(
        self,
        low: Any = None,
        high: Any = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> Iterator[Tuple[Any, Any]]:
        """(key, payload) pairs with low <= key <= high (bounds optional)."""
        if low is None:
            node = self._leftmost_leaf()
            idx = 0
        else:
            node = self._root
            visited = 1
            while not node.is_leaf:
                child = bisect.bisect_right(node.keys, low)
                node = node.children[child]
                visited += 1
            self.node_visits += visited
            if include_low:
                idx = bisect.bisect_left(node.keys, low)
            else:
                idx = bisect.bisect_right(node.keys, low)
        while node is not None:
            while idx < len(node.keys):
                key = node.keys[idx]
                if high is not None:
                    if include_high:
                        if high < key:
                            return
                    elif not key < high:
                        return
                yield key, node.values[idx]
                idx += 1
            node = node.next_leaf
            idx = 0

    def min_key(self) -> Any:
        """Smallest key, or None if empty."""
        node = self._leftmost_leaf()
        while node is not None:
            if node.keys:
                return node.keys[0]
            node = node.next_leaf
        return None

    def depth(self) -> int:
        """Tree height (1 = a single leaf), for tests and stats."""
        depth = 1
        node = self._root
        while not node.is_leaf:
            depth += 1
            node = node.children[0]
        return depth

    # -- internals ---------------------------------------------------------

    def _is_full(self, node: _Node) -> bool:
        return len(node.keys) >= 2 * self._branching - 1

    def _leftmost_leaf(self) -> _Node:
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
        return node

    def _split_child(self, parent: _Node, idx: int) -> None:
        child = parent.children[idx]
        mid = len(child.keys) // 2
        sibling = _Node(leaf=child.is_leaf)
        if child.is_leaf:
            sibling.keys = child.keys[mid:]
            sibling.values = child.values[mid:]
            child.keys = child.keys[:mid]
            child.values = child.values[:mid]
            sibling.next_leaf = child.next_leaf
            child.next_leaf = sibling
            separator = sibling.keys[0]
        else:
            separator = child.keys[mid]
            sibling.keys = child.keys[mid + 1 :]
            sibling.children = child.children[mid + 1 :]
            child.keys = child.keys[:mid]
            child.children = child.children[: mid + 1]
        parent.keys.insert(idx, separator)
        parent.children.insert(idx + 1, sibling)

    def _insert_nonfull(self, node: _Node, key: Any, value: Any) -> None:
        visited = 1
        while not node.is_leaf:
            idx = bisect.bisect_right(node.keys, key)
            child = node.children[idx]
            if self._is_full(child):
                self._split_child(node, idx)
                if node.keys[idx] < key:
                    idx += 1
                child = node.children[idx]
            node = child
            visited += 1
        self.node_visits += visited
        idx = bisect.bisect_left(node.keys, key)
        if idx < len(node.keys) and not (node.keys[idx] < key or key < node.keys[idx]):
            node.values[idx] = value
        else:
            node.keys.insert(idx, key)
            node.values.insert(idx, value)
            self._size += 1
