"""Deterministic fault injection for the storage layer.

Every durability-relevant I/O call made by :class:`~repro.relational.pager.
FilePager`, :class:`~repro.relational.wal.WriteAheadLog`, and the catalog
checkpoint goes through an :class:`IOShim`.  The default shim simply calls
the ``os`` functions; tests inject a :class:`FaultInjector` instead, which
counts calls and can

* **crash** (raise :class:`InjectedCrash`) at the Nth I/O call, optionally
  tearing the in-flight write by persisting only a prefix of it first;
* simulate **short writes** (every ``write`` persists at most a few bytes,
  exercising the callers' retry loops);
* **fail fsync** with ``OSError``, the way a dying disk does.

:class:`InjectedCrash` deliberately does *not* subclass ``WowError`` — it
models the process dying, so nothing in the engine may catch it.

The crash-point exhaustion harness (:func:`crash_points`,
:func:`exhaust_crash_points`) is the reusable driver behind
``tests/test_crash_consistency.py``: count the I/O calls of a workload,
then re-run it once per call with a crash injected there and hand each
crashed world to a verifier.  New subsystems that add I/O paths get crash
coverage by routing them through the shim — no harness changes needed.
"""

from __future__ import annotations

import contextlib
import os
from typing import Callable, List, Optional, Tuple


class InjectedCrash(BaseException):
    """A simulated kill -9 at an I/O boundary (never caught by the engine)."""


class IOShim:
    """Pass-through I/O layer; subclass to observe or perturb calls."""

    def open(self, path: str, flags: int, mode: int = 0o644) -> int:
        """``os.open`` for writable descriptors (pager, WAL, checkpoint
        temp files).  Counted so a crash can land between file creation
        and the first write into it."""
        return os.open(path, flags, mode)

    def write(self, fd: int, data: bytes) -> int:
        """One ``os.write`` attempt; may write fewer bytes than given."""
        return os.write(fd, data)

    def write_all(self, fd: int, data: bytes) -> None:
        """Write *data* fully, retrying short writes until done."""
        view = memoryview(data)
        while view:
            written = self.write(fd, bytes(view))
            if written <= 0:
                raise OSError(f"write returned {written}")
            view = view[written:]

    def pread(self, fd: int, length: int, offset: int) -> bytes:
        """Positioned read (pager page fetches, WAL recovery scans).

        Reads are not durability-*mutating*, but a dying disk fails them
        too; routing them through the shim lets the exhaustion harness
        crash between a read and the decision made from it, and lets
        tests inject short/failing reads.
        """
        return os.pread(fd, length, offset)

    def fstat(self, fd: int) -> os.stat_result:
        """``os.fstat`` for engine file descriptors (size probes)."""
        return os.fstat(fd)

    def fsync(self, fd: int) -> None:
        os.fsync(fd)

    def ftruncate(self, fd: int, length: int) -> None:
        os.ftruncate(fd, length)

    def replace(self, src: str, dst: str) -> None:
        os.replace(src, dst)

    def remove(self, path: str) -> None:
        os.remove(path)

    def fsync_dir(self, path: str) -> None:
        """fsync a directory so a rename within it is durable."""
        with contextlib.suppress(OSError):
            dir_fd = os.open(path, os.O_RDONLY)
            try:
                os.fsync(dir_fd)
            finally:
                os.close(dir_fd)


#: the process-wide default shim (plain ``os`` calls)
DEFAULT_IO = IOShim()


class FaultInjector(IOShim):
    """An :class:`IOShim` that counts calls and injects failures.

    Parameters
    ----------
    crash_at:
        Crash (raise :class:`InjectedCrash`) when the running I/O-call
        count reaches this 1-based number, *before* the call takes effect.
        ``None`` just counts — the enumeration pass of the harness.
    torn:
        When crashing on a ``write``, first persist roughly half of the
        payload, simulating a torn sector-straddling write.
    short_writes:
        Every ``write`` persists at most *short_writes* bytes, forcing
        callers' retry loops to iterate (no crash).
    fail_fsync:
        Every ``fsync``/``fsync_dir`` raises ``OSError`` (disk reporting a
        flush failure) instead of syncing.
    fail_reads:
        Every ``pread`` raises ``OSError`` (unreadable sector) — the read
        fault point the buffer pool must surface as a StorageError, never
        as silently zeroed data.
    real_fsync:
        When False (the default), counted fsyncs skip the actual
        ``os.fsync`` — same-process reopen sees ``os.write`` data anyway,
        and skipping keeps exhaustion runs fast on slow filesystems.
    """

    def __init__(
        self,
        crash_at: Optional[int] = None,
        *,
        torn: bool = False,
        short_writes: Optional[int] = None,
        fail_fsync: bool = False,
        fail_reads: bool = False,
        real_fsync: bool = False,
    ) -> None:
        self.crash_at = crash_at
        self.torn = torn
        self.short_writes = short_writes
        self.fail_fsync = fail_fsync
        self.fail_reads = fail_reads
        self.real_fsync = real_fsync
        #: running I/O call count (1-based at the first call)
        self.io_calls = 0
        #: (op, detail) log of every intercepted call, for diagnostics
        self.calls: List[Tuple[str, str]] = []

    # -- interception core ---------------------------------------------------

    def _point(self, op: str, detail: str, tear: Optional[Callable[[], None]] = None) -> None:
        """Count one I/O point; crash here if it is the chosen one."""
        self.io_calls += 1
        self.calls.append((op, detail))
        if self.crash_at is not None and self.io_calls >= self.crash_at:
            if tear is not None and self.torn:
                tear()
            raise InjectedCrash(f"injected crash at I/O call {self.io_calls}: {op} {detail}")

    # -- IOShim overrides ----------------------------------------------------

    def open(self, path: str, flags: int, mode: int = 0o644) -> int:
        self._point("open", os.path.basename(path))
        return os.open(path, flags, mode)

    def write(self, fd: int, data: bytes) -> int:
        self._point(
            "write",
            f"fd={fd} len={len(data)}",
            tear=lambda: os.write(fd, data[: max(1, len(data) // 2)]),
        )
        if self.short_writes is not None and len(data) > self.short_writes:
            return os.write(fd, data[: self.short_writes])
        return os.write(fd, data)

    def pread(self, fd: int, length: int, offset: int) -> bytes:
        self._point("pread", f"fd={fd} len={length} off={offset}")
        if self.fail_reads:
            raise OSError(f"injected read failure on fd {fd}")
        return os.pread(fd, length, offset)

    def fstat(self, fd: int) -> os.stat_result:
        self._point("fstat", f"fd={fd}")
        return os.fstat(fd)

    def fsync(self, fd: int) -> None:
        self._point("fsync", f"fd={fd}")
        if self.fail_fsync:
            raise OSError(f"injected fsync failure on fd {fd}")
        if self.real_fsync:
            os.fsync(fd)

    def ftruncate(self, fd: int, length: int) -> None:
        self._point("ftruncate", f"fd={fd} len={length}")
        os.ftruncate(fd, length)

    def replace(self, src: str, dst: str) -> None:
        self._point("replace", f"{os.path.basename(src)} -> {os.path.basename(dst)}")
        os.replace(src, dst)

    def remove(self, path: str) -> None:
        self._point("remove", os.path.basename(path))
        os.remove(path)

    def fsync_dir(self, path: str) -> None:
        self._point("fsync_dir", os.path.basename(path) or path)
        if self.fail_fsync:
            raise OSError(f"injected fsync failure on directory {path}")
        if self.real_fsync:
            super().fsync_dir(path)


# ---------------------------------------------------------------------------
# Crash-point exhaustion harness
# ---------------------------------------------------------------------------

def crash_points(run: Callable[[FaultInjector], None]) -> FaultInjector:
    """Run *run* with a counting injector; returns it (see ``io_calls``)."""
    shim = FaultInjector()
    run(shim)
    return shim


def select_points(total: int, max_points: Optional[int]) -> List[int]:
    """The 1-based crash points to exercise: all, or an even sample."""
    if total <= 0 or (max_points is not None and max_points <= 0):
        return []
    if max_points is None or total <= max_points:
        return list(range(1, total + 1))
    if max_points == 1:
        return [1]
    # Even sample that always includes the first and last point.
    step = (total - 1) / (max_points - 1)
    points = sorted({round(1 + i * step) for i in range(max_points)})
    return points


def exhaust_crash_points(
    run: Callable[[FaultInjector], None],
    verify: Callable[[FaultInjector], None],
    *,
    torn: bool = False,
    max_points: Optional[int] = None,
) -> List[int]:
    """Crash *run* at every enumerated I/O point and verify each world.

    *run* must be self-contained (fresh directory per call) and is expected
    to raise :class:`InjectedCrash` when a crash point is armed; *verify*
    is then called with the injector (which carries the call log) and
    should reopen the workload's directory and assert its invariants.
    Returns the list of crash points exercised.
    """
    total = crash_points(run).io_calls
    points = select_points(total, max_points)
    for point in points:
        shim = FaultInjector(crash_at=point, torn=torn)
        try:
            run(shim)
        except InjectedCrash:
            pass
        verify(shim)
    return points
