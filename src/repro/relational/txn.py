"""Transactions: an undo log with rollback, plus savepoint-free semantics.

The engine runs in autocommit mode unless ``BEGIN`` opens an explicit
transaction.  While a transaction is open, every row-level change appends an
undo entry; ``ROLLBACK`` replays them in reverse.

RowIds are not stable across updates that move a record between pages, so
rollback maintains a translation map: whenever undoing an entry moves a row,
later (earlier-in-time) entries' RowIds are translated through the map.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import TransactionError
from repro.relational.heap import RowId
from repro.relational.table import Table


@dataclass
class UndoEntry:
    """One logged row-level change.

    kind is 'insert' (undo = delete rid), 'delete' (undo = re-insert row),
    or 'update' (undo = write old_row back at rid).
    """

    kind: str
    table: Table
    rid: Optional[RowId] = None
    row: Optional[Tuple[Any, ...]] = None


class TransactionManager:
    """Tracks the open transaction (if any) and performs rollback."""

    def __init__(self) -> None:
        self._entries: Optional[List[UndoEntry]] = None
        self._txn_counter = 0
        #: callbacks fired after COMMIT/ROLLBACK, e.g. WAL hooks
        self.on_commit: List[Callable[[], None]] = []
        self.on_rollback: List[Callable[[], None]] = []
        #: callbacks fired when an undo walk fails partway — the database
        #: registers one that degrades to read-only, because a half-rolled-
        #: back transaction leaves the heaps in a state no retry can fix
        self.on_undo_failure: List[Callable[[BaseException], None]] = []
        #: lifetime counters, exposed through Database.metrics_snapshot()
        self.stats: Dict[str, int] = {
            "begins": 0, "commits": 0, "rollbacks": 0, "undo_failures": 0
        }

    # -- state ------------------------------------------------------------

    @property
    def active(self) -> bool:
        """True while an explicit transaction is open."""
        return self._entries is not None

    def begin(self) -> int:
        """Open a transaction; returns its id.  Nested BEGIN is an error."""
        if self.active:
            raise TransactionError("a transaction is already open")
        self._entries = []
        self._txn_counter += 1
        self.stats["begins"] += 1
        return self._txn_counter

    def commit(self) -> None:
        """Close the open transaction, keeping its effects."""
        if not self.active:
            raise TransactionError("COMMIT without BEGIN")
        self._entries = None
        self.stats["commits"] += 1
        for hook in self.on_commit:
            hook()

    def rollback(self) -> None:
        """Undo every change of the open transaction, newest first.

        If the undo walk itself fails partway (a heap write error while
        re-inserting a deleted row, say), the transaction is left
        half-rolled-back: some entries were undone, the rest cannot be.
        That state is unrecoverable in place, so the failure is *recorded*
        — ``undo_failures`` counts it and every ``on_undo_failure`` hook
        fires (the database's hook degrades to read-only) — and a
        :class:`TransactionError` chains the original cause.  The rollback
        hooks still run so pending WAL records never leak into a later
        commit.
        """
        if not self.active:
            raise TransactionError("ROLLBACK without BEGIN")
        entries = self._entries
        self._entries = None  # log nothing while undoing
        self.stats["rollbacks"] += 1
        try:
            self._undo(entries)
        # the cause is re-raised chained as TransactionError below
        except Exception as exc:  # wowlint: allow WOW002
            self._undo_failed(exc)
            raise TransactionError(
                f"rollback failed partway; remaining undo entries are "
                f"unrecoverable: {exc}"
            ) from exc
        finally:
            for hook in self.on_rollback:
                hook()

    def mark(self) -> int:
        """Current undo-log position (for statement-level atomicity)."""
        return len(self._entries) if self._entries is not None else 0

    def rollback_to(self, mark: int) -> None:
        """Undo entries logged after *mark*, keeping the transaction open.

        Like :meth:`rollback`, a failure inside the undo walk leaves rows
        no later undo can reach; it is recorded and degrades the database
        rather than silently dropping the remaining entries.
        """
        if self._entries is None:
            raise TransactionError("rollback_to outside a transaction")
        tail = self._entries[mark:]
        del self._entries[mark:]
        keep, self._entries = self._entries, None  # log nothing while undoing
        try:
            self._undo(tail)
        # the cause is re-raised chained as TransactionError below
        except Exception as exc:  # wowlint: allow WOW002
            self._undo_failed(exc)
            raise TransactionError(
                f"statement rollback failed partway; remaining undo entries "
                f"are unrecoverable: {exc}"
            ) from exc
        finally:
            self._entries = keep

    def _undo_failed(self, exc: BaseException) -> None:
        """Record a partial undo: count it and fire the degradation hooks."""
        self.stats["undo_failures"] += 1
        for hook in self.on_undo_failure:
            hook(exc)

    def _undo(self, entries: List[UndoEntry]) -> None:
        translation: Dict[Tuple[int, RowId], RowId] = {}

        def resolve(table: Table, rid: RowId) -> RowId:
            return translation.get((id(table), rid), rid)

        for entry in reversed(entries):
            if entry.kind == "insert":
                entry.table.delete(resolve(entry.table, entry.rid))
            elif entry.kind == "delete":
                new_rid = entry.table.insert(entry.row)
                # The row rarely lands back on its old slot.  Earlier
                # entries (still to be undone) reference the freed rid, so
                # route them to the re-inserted copy.
                if entry.rid is not None and new_rid != entry.rid:
                    translation[(id(entry.table), entry.rid)] = new_rid
            elif entry.kind == "update":
                current = resolve(entry.table, entry.rid)
                new_rid, _old = entry.table.update(current, entry.row)
                if new_rid != current:
                    translation[(id(entry.table), entry.rid)] = new_rid
            else:  # pragma: no cover - exhaustive
                raise TransactionError(f"unknown undo kind {entry.kind!r}")

    # -- logging -----------------------------------------------------------

    def log_insert(self, table: Table, rid: RowId) -> None:
        if self._entries is not None:
            self._entries.append(UndoEntry("insert", table, rid=rid))

    def log_delete(
        self, table: Table, row: Tuple[Any, ...], rid: Optional[RowId] = None
    ) -> None:
        if self._entries is not None:
            self._entries.append(UndoEntry("delete", table, rid=rid, row=row))

    def log_update(self, table: Table, new_rid: RowId, old_row: Tuple[Any, ...]) -> None:
        if self._entries is not None:
            self._entries.append(
                UndoEntry("update", table, rid=new_rid, row=old_row)
            )

    def note_rid_moved(self, table: Table, old_rid: RowId, new_rid: RowId) -> None:
        """Fix up logged rids when a later update moves a row.

        If an earlier entry in the open transaction references *old_rid*, it
        must now reference *new_rid* (the undo walk resolves newest-first, so
        rewriting in place is simplest and exact).
        """
        if self._entries is None:
            return
        for entry in self._entries:
            if entry.table is table and entry.rid == old_rid:
                entry.rid = new_rid
