"""Binary row serialization for the slotted-page heap.

Rows are stored as a null bitmap followed by per-column encoded values.
The codec is schema-driven: both directions require the row's
:class:`~repro.relational.schema.TableSchema`, so no type tags are stored
per value (saving space, as the 1983-era systems did).

Wire format::

    [null bitmap: ceil(arity/8) bytes, LSB-first per column]
    then for each non-NULL column, in schema order:
      INT    -> varint (zig-zag)
      FLOAT  -> 8 bytes IEEE-754 big-endian
      TEXT   -> varint length + UTF-8 bytes
      BOOL   -> 1 byte (0/1)
      DATE   -> varint ordinal (days since 0001-01-01)
"""

from __future__ import annotations

import datetime
import struct
from typing import Any, Callable, List, Sequence, Tuple

from repro.errors import StorageError
from repro.relational.schema import TableSchema
from repro.relational.types import ColumnType


def _zigzag(n: int) -> int:
    return (n << 1) ^ (n >> 63) if n < 0 else (n << 1)


def _unzigzag(z: int) -> int:
    return (z >> 1) ^ -(z & 1)


def write_varint(out: bytearray, value: int) -> None:
    """Append an unsigned LEB128 varint to *out*."""
    if value < 0:
        raise StorageError(f"varint cannot encode negative value {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def read_varint(buf: bytes, pos: int) -> Tuple[int, int]:
    """Read an unsigned LEB128 varint from *buf* at *pos*; return (value, new_pos)."""
    result = 0
    shift = 0
    while True:
        if pos >= len(buf):
            raise StorageError("truncated varint")
        byte = buf[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 70:
            raise StorageError("varint too long")


def encode_row(schema: TableSchema, row: Sequence[Any]) -> bytes:
    """Serialize a validated row tuple to bytes."""
    arity = schema.arity
    if len(row) != arity:
        raise StorageError(
            f"row arity {len(row)} != schema arity {arity} for {schema.name!r}"
        )
    bitmap = bytearray((arity + 7) // 8)
    body = bytearray()
    for i, (col, value) in enumerate(zip(schema.columns, row)):
        if value is None:
            bitmap[i // 8] |= 1 << (i % 8)
            continue
        ctype = col.ctype
        if ctype is ColumnType.INT:
            write_varint(body, _zigzag(value))
        elif ctype is ColumnType.FLOAT:
            body += struct.pack(">d", value)
        elif ctype is ColumnType.TEXT:
            raw = value.encode("utf-8")
            write_varint(body, len(raw))
            body += raw
        elif ctype is ColumnType.BOOL:
            body.append(1 if value else 0)
        elif ctype is ColumnType.DATE:
            write_varint(body, value.toordinal())
        else:  # pragma: no cover - exhaustive over ColumnType
            raise StorageError(f"cannot encode type {ctype}")
    return bytes(bitmap) + bytes(body)


def decode_row(schema: TableSchema, data: bytes) -> Tuple[Any, ...]:
    """Inverse of :func:`encode_row`."""
    arity = schema.arity
    bitmap_len = (arity + 7) // 8
    if len(data) < bitmap_len:
        raise StorageError("row record shorter than its null bitmap")
    pos = bitmap_len
    values: List[Any] = []
    for i, col in enumerate(schema.columns):
        if data[i // 8] & (1 << (i % 8)):
            values.append(None)
            continue
        ctype = col.ctype
        if ctype is ColumnType.INT:
            z, pos = read_varint(data, pos)
            values.append(_unzigzag(z))
        elif ctype is ColumnType.FLOAT:
            if pos + 8 > len(data):
                raise StorageError("truncated FLOAT value")
            values.append(struct.unpack_from(">d", data, pos)[0])
            pos += 8
        elif ctype is ColumnType.TEXT:
            length, pos = read_varint(data, pos)
            if pos + length > len(data):
                raise StorageError("truncated TEXT value")
            values.append(data[pos : pos + length].decode("utf-8"))
            pos += length
        elif ctype is ColumnType.BOOL:
            if pos >= len(data):
                raise StorageError("truncated BOOL value")
            values.append(bool(data[pos]))
            pos += 1
        elif ctype is ColumnType.DATE:
            ordinal, pos = read_varint(data, pos)
            values.append(datetime.date.fromordinal(ordinal))
        else:  # pragma: no cover
            raise StorageError(f"cannot decode type {ctype}")
    if pos != len(data):
        raise StorageError(
            f"trailing bytes after row record ({len(data) - pos} extra)"
        )
    return tuple(values)


# ---------------------------------------------------------------------------
# Batch decoding
# ---------------------------------------------------------------------------
# The batch executor decodes whole pages at a time: one shared buffer plus
# (start, end) spans per record, instead of one bytes copy + decode_row
# call per record.  The decoder below is the same wire format with the
# varint read inlined (INT, TEXT, and DATE all start with one) and the
# per-schema column types cached, because at batch rates the attribute
# and call overhead of the scalar path dominates.

_INT = ColumnType.INT
_FLOAT = ColumnType.FLOAT
_TEXT = ColumnType.TEXT
_BOOL = ColumnType.BOOL
_DATE = ColumnType.DATE

_unpack_double_from = struct.Struct(">d").unpack_from
_date_fromordinal = datetime.date.fromordinal


def _codec_ctypes(schema: TableSchema) -> Tuple[ColumnType, ...]:
    ctypes = getattr(schema, "_codec_ctypes", None)
    if ctypes is None:
        ctypes = tuple(col.ctype for col in schema.columns)
        schema._codec_ctypes = ctypes
    return ctypes


def decode_row_span(
    schema: TableSchema, buf: bytes, start: int, end: int
) -> Tuple[Any, ...]:
    """Decode one row out of ``buf[start:end]`` without slicing a copy."""
    ctypes = _codec_ctypes(schema)
    bitmap_len = (len(ctypes) + 7) // 8
    if end - start < bitmap_len:
        raise StorageError("row record shorter than its null bitmap")
    pos = start + bitmap_len
    values: List[Any] = []
    append = values.append
    for i, ctype in enumerate(ctypes):
        if buf[start + (i >> 3)] & (1 << (i & 7)):
            append(None)
            continue
        if ctype is _FLOAT:
            if pos + 8 > end:
                raise StorageError("truncated FLOAT value")
            append(_unpack_double_from(buf, pos)[0])
            pos += 8
            continue
        if ctype is _BOOL:
            if pos >= end:
                raise StorageError("truncated BOOL value")
            append(bool(buf[pos]))
            pos += 1
            continue
        # INT, TEXT, and DATE all lead with a varint.
        value = 0
        shift = 0
        while True:
            if pos >= end:
                raise StorageError("truncated varint")
            byte = buf[pos]
            pos += 1
            value |= (byte & 0x7F) << shift
            if not byte & 0x80:
                break
            shift += 7
            if shift > 70:
                raise StorageError("varint too long")
        if ctype is _INT:
            append((value >> 1) ^ -(value & 1))
        elif ctype is _TEXT:
            if pos + value > end:
                raise StorageError("truncated TEXT value")
            append(buf[pos : pos + value].decode("utf-8"))
            pos += value
        elif ctype is _DATE:
            append(_date_fromordinal(value))
        else:  # pragma: no cover - exhaustive over ColumnType
            raise StorageError(f"cannot decode type {ctype}")
    if pos != end:
        raise StorageError(
            f"trailing bytes after row record ({end - pos} extra)"
        )
    return tuple(values)


def decode_rows_spans(
    schema: TableSchema, buf: bytes, spans: Sequence[Tuple[int, int]]
) -> List[Tuple[Any, ...]]:
    """Decode many rows sharing one buffer — the batch-scan entry point."""
    decoder = span_decoder(schema)
    return [decoder(buf, start, end) for start, end in spans]


# ---------------------------------------------------------------------------
# Compiled decoders
# ---------------------------------------------------------------------------
# The schema is fixed for the lifetime of a table, so the decode loop above
# can be specialised: generate one function per schema with the column
# dispatch unrolled, the varint reads inlined, and the null-bitmap bytes
# loaded once.  Same wire format, same error messages — just no per-column
# interpretation.  The generated source for a (INT, TEXT) schema looks
# like::
#
#     def _decode(buf, start, end):
#         pos = start + 1
#         bm0 = buf[start]
#         if bm0 & 1:
#             v0 = None
#         else:
#             <inlined varint>; v0 = (value >> 1) ^ -(value & 1)
#         ...
#         return (v0, v1)

_VARINT_TEMPLATE = """\
        value = 0
        shift = 0
        while True:
            if pos >= end:
                raise _err("truncated varint")
            byte = buf[pos]
            pos += 1
            value |= (byte & 0x7F) << shift
            if not byte & 0x80:
                break
            shift += 7
            if shift > 70:
                raise _err("varint too long")
"""

_FIELD_TEMPLATES = {
    ColumnType.INT: _VARINT_TEMPLATE + """\
        v{i} = (value >> 1) ^ -(value & 1)
""",
    ColumnType.TEXT: _VARINT_TEMPLATE + """\
        npos = pos + value
        if npos > end:
            raise _err("truncated TEXT value")
        v{i} = buf[pos:npos].decode("utf-8")
        pos = npos
""",
    ColumnType.DATE: _VARINT_TEMPLATE + """\
        v{i} = _fromordinal(value)
""",
    ColumnType.FLOAT: """\
        if pos + 8 > end:
            raise _err("truncated FLOAT value")
        v{i} = _unpack(buf, pos)[0]
        pos += 8
""",
    ColumnType.BOOL: """\
        if pos >= end:
            raise _err("truncated BOOL value")
        v{i} = buf[pos] != 0
        pos += 1
""",
}


def _generate_decoder(ctypes: Tuple[ColumnType, ...]) -> Callable[[bytes, int, int], Tuple[Any, ...]]:
    arity = len(ctypes)
    bitmap_len = (arity + 7) // 8
    lines = [
        "def _decode(buf, start, end):",
        f"    if end - start < {bitmap_len}:",
        '        raise _err("row record shorter than its null bitmap")',
        f"    pos = start + {bitmap_len}",
    ]
    for byte_no in range(bitmap_len):
        offset = f" + {byte_no}" if byte_no else ""
        lines.append(f"    bm{byte_no} = buf[start{offset}]")
    for i, ctype in enumerate(ctypes):
        lines.append(f"    if bm{i >> 3} & {1 << (i & 7)}:")
        lines.append(f"        v{i} = None")
        lines.append("    else:")
        lines.append(_FIELD_TEMPLATES[ctype].format(i=i).rstrip("\n"))
    lines.append("    if pos != end:")
    lines.append(
        '        raise _err(f"trailing bytes after row record ({end - pos} extra)")'
    )
    lines.append("    return (" + "".join(f"v{i}, " for i in range(arity)) + ")")
    source = "\n".join(lines) + "\n"
    namespace = {
        "_err": StorageError,
        "_unpack": _unpack_double_from,
        "_fromordinal": _date_fromordinal,
    }
    exec(compile(source, "<rowcodec>", "exec"), namespace)
    fn = namespace["_decode"]
    fn.__source__ = source  # debugging aid
    return fn


def span_decoder(schema: TableSchema) -> Callable[[bytes, int, int], Tuple[Any, ...]]:
    """The compiled ``decode(buf, start, end)`` function for *schema*.

    Generated on first use and cached on the schema object (schemas are
    immutable once a table exists; ALTER TABLE builds a new schema).
    """
    decoder = getattr(schema, "_codec_decoder", None)
    if decoder is None:
        decoder = _generate_decoder(_codec_ctypes(schema))
        schema._codec_decoder = decoder
    return decoder
