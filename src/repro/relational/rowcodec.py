"""Binary row serialization for the slotted-page heap.

Rows are stored as a null bitmap followed by per-column encoded values.
The codec is schema-driven: both directions require the row's
:class:`~repro.relational.schema.TableSchema`, so no type tags are stored
per value (saving space, as the 1983-era systems did).

Wire format::

    [null bitmap: ceil(arity/8) bytes, LSB-first per column]
    then for each non-NULL column, in schema order:
      INT    -> varint (zig-zag)
      FLOAT  -> 8 bytes IEEE-754 big-endian
      TEXT   -> varint length + UTF-8 bytes
      BOOL   -> 1 byte (0/1)
      DATE   -> varint ordinal (days since 0001-01-01)
"""

from __future__ import annotations

import datetime
import struct
from typing import Any, List, Sequence, Tuple

from repro.errors import StorageError
from repro.relational.schema import TableSchema
from repro.relational.types import ColumnType


def _zigzag(n: int) -> int:
    return (n << 1) ^ (n >> 63) if n < 0 else (n << 1)


def _unzigzag(z: int) -> int:
    return (z >> 1) ^ -(z & 1)


def write_varint(out: bytearray, value: int) -> None:
    """Append an unsigned LEB128 varint to *out*."""
    if value < 0:
        raise StorageError(f"varint cannot encode negative value {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def read_varint(buf: bytes, pos: int) -> Tuple[int, int]:
    """Read an unsigned LEB128 varint from *buf* at *pos*; return (value, new_pos)."""
    result = 0
    shift = 0
    while True:
        if pos >= len(buf):
            raise StorageError("truncated varint")
        byte = buf[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 70:
            raise StorageError("varint too long")


def encode_row(schema: TableSchema, row: Sequence[Any]) -> bytes:
    """Serialize a validated row tuple to bytes."""
    arity = schema.arity
    if len(row) != arity:
        raise StorageError(
            f"row arity {len(row)} != schema arity {arity} for {schema.name!r}"
        )
    bitmap = bytearray((arity + 7) // 8)
    body = bytearray()
    for i, (col, value) in enumerate(zip(schema.columns, row)):
        if value is None:
            bitmap[i // 8] |= 1 << (i % 8)
            continue
        ctype = col.ctype
        if ctype is ColumnType.INT:
            write_varint(body, _zigzag(value))
        elif ctype is ColumnType.FLOAT:
            body += struct.pack(">d", value)
        elif ctype is ColumnType.TEXT:
            raw = value.encode("utf-8")
            write_varint(body, len(raw))
            body += raw
        elif ctype is ColumnType.BOOL:
            body.append(1 if value else 0)
        elif ctype is ColumnType.DATE:
            write_varint(body, value.toordinal())
        else:  # pragma: no cover - exhaustive over ColumnType
            raise StorageError(f"cannot encode type {ctype}")
    return bytes(bitmap) + bytes(body)


def decode_row(schema: TableSchema, data: bytes) -> Tuple[Any, ...]:
    """Inverse of :func:`encode_row`."""
    arity = schema.arity
    bitmap_len = (arity + 7) // 8
    if len(data) < bitmap_len:
        raise StorageError("row record shorter than its null bitmap")
    pos = bitmap_len
    values: List[Any] = []
    for i, col in enumerate(schema.columns):
        if data[i // 8] & (1 << (i % 8)):
            values.append(None)
            continue
        ctype = col.ctype
        if ctype is ColumnType.INT:
            z, pos = read_varint(data, pos)
            values.append(_unzigzag(z))
        elif ctype is ColumnType.FLOAT:
            if pos + 8 > len(data):
                raise StorageError("truncated FLOAT value")
            values.append(struct.unpack_from(">d", data, pos)[0])
            pos += 8
        elif ctype is ColumnType.TEXT:
            length, pos = read_varint(data, pos)
            if pos + length > len(data):
                raise StorageError("truncated TEXT value")
            values.append(data[pos : pos + length].decode("utf-8"))
            pos += length
        elif ctype is ColumnType.BOOL:
            if pos >= len(data):
                raise StorageError("truncated BOOL value")
            values.append(bool(data[pos]))
            pos += 1
        elif ctype is ColumnType.DATE:
            ordinal, pos = read_varint(data, pos)
            values.append(datetime.date.fromordinal(ordinal))
        else:  # pragma: no cover
            raise StorageError(f"cannot decode type {ctype}")
    if pos != len(data):
        raise StorageError(
            f"trailing bytes after row record ({len(data) - pos} extra)"
        )
    return tuple(values)
