"""Statement & plan cache with generation-based invalidation.

Every ``Database.execute`` used to re-lex, re-parse, and re-plan its
statement from scratch — a cost the forms runtime pays on every refresh,
scroll, and master–detail link follow.  This cache memoizes the parsed AST
and (when safe) the physical plan, keyed on the normalized SQL text plus a
fingerprint of the active :class:`~repro.relational.planner.PlannerConfig`.

Staleness is impossible by construction: the cache carries a **generation**
counter, every entry records the generation it was built under, and the
database bumps the generation on every event that could change what a plan
means — DDL (``CREATE/DROP TABLE/VIEW/INDEX``, ``ALTER``), ``ANALYZE``
(optimizer statistics feed index/join choices), and planner-config changes.
A lookup that finds an entry from an older generation discards it.  Plain
DML does *not* invalidate: operator trees scan live ``Table`` objects, so
data changes are visible to a cached plan at iteration time.

Not every statement's plan is safe to reuse (see
``Database._plan_cacheable``): statements with subqueries materialize them
into literals at plan time, and system-table scans snapshot the catalog.
Those statements still benefit from AST caching; only the plan slot stays
empty.
"""

from __future__ import annotations

import collections
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, Optional, Tuple


def normalize_sql(sql: str) -> str:
    """Collapse runs of whitespace so trivial reformatting shares an entry.

    Case is deliberately preserved: string literals are case-sensitive, and
    a duplicate entry for ``SELECT``-vs-``select`` spelling is merely one
    extra slot, never a wrong answer.
    """
    return " ".join(sql.split())


@dataclass
class CacheEntry:
    """One memoized statement: its AST and, when safe, its physical plan."""

    statement: Any  # parsed A.Statement
    plan: Optional[Any]  # physical operator tree, or None if not cacheable
    generation: int
    #: statement fingerprint (literals lifted to ``?``), computed once on
    #: the miss path and reused by the statement log on every hit
    fingerprint: Optional[str] = None


@dataclass
class PlanCache:
    """An LRU map from (normalized SQL, config fingerprint) to CacheEntry."""

    capacity: int = 128
    generation: int = 0
    stats: Dict[str, int] = field(
        default_factory=lambda: {
            "hits": 0,
            "misses": 0,
            "invalidations": 0,
            "evictions": 0,
            #: plan slots cleared by adaptive-feedback re-planning
            "feedback_drops": 0,
        }
    )
    _entries: "collections.OrderedDict[Hashable, CacheEntry]" = field(
        default_factory=collections.OrderedDict, repr=False
    )
    #: guards _entries, stats, and generation — sessions share one cache,
    #: and an LRU move_to_end racing an eviction corrupts the OrderedDict
    _lock: threading.RLock = field(
        default_factory=threading.RLock, repr=False, compare=False
    )

    @property
    def enabled(self) -> bool:
        return self.capacity > 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def key(self, sql: str, fingerprint: Tuple[Any, ...]) -> Hashable:
        return (normalize_sql(sql), fingerprint)

    def lookup(self, key: Hashable) -> Optional[CacheEntry]:
        """The live entry for *key*, or None (counting a miss).

        An entry from an older generation is dropped on sight — a cached
        plan must never be served across a generation bump.
        """
        if not self.enabled:
            return None
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats["misses"] += 1
                return None
            if entry.generation != self.generation:
                del self._entries[key]
                self.stats["misses"] += 1
                return None
            self._entries.move_to_end(key)
            self.stats["hits"] += 1
            return entry

    def store(
        self, key: Hashable, statement: Any, plan: Optional[Any] = None
    ) -> CacheEntry:
        """Memoize *statement* (and *plan*, when given) at the current generation.

        Returns the entry so the executor can backfill its plan slot once
        the statement has actually been planned.  With the cache disabled
        the entry is still created — just never registered — so callers
        need no special case.
        """
        with self._lock:
            entry = CacheEntry(statement, plan, self.generation)
            if self.enabled:
                self._entries[key] = entry
                self._entries.move_to_end(key)
                while len(self._entries) > self.capacity:
                    self._entries.popitem(last=False)
                    self.stats["evictions"] += 1
            return entry

    def invalidate(self) -> None:
        """Bump the generation: every cached entry is now unservable."""
        with self._lock:
            self.generation += 1
            self.stats["invalidations"] += 1
            self._entries.clear()

    def drop_plans(self, predicate) -> int:
        """Targeted eviction for adaptive re-planning: clear the plan slot
        of every entry whose cached plan satisfies *predicate*.

        Unlike :meth:`invalidate` this does not bump the generation — every
        other cached statement stays hot; the affected statements keep their
        parsed AST and are simply re-planned (under fresh statistics) on
        their next execution.  Returns the number of entries touched.
        """
        with self._lock:
            dropped = 0
            for entry in self._entries.values():
                if entry.plan is not None and predicate(entry.plan):
                    entry.plan = None
                    dropped += 1
            self.stats["feedback_drops"] += dropped
            return dropped

    def snapshot(self) -> Dict[str, int]:
        """Counters for ``Database.metrics_snapshot()`` / the F11 window."""
        with self._lock:
            out = dict(self.stats)
            out["entries"] = len(self._entries)
            out["generation"] = self.generation
            return out
