"""Scalar expression trees: AST, name binding, and 3VL evaluation.

The same node types serve the SQL front-end (which builds unbound trees with
name-based column references) and the executor (which evaluates bound trees
where every column reference carries a resolved row position).  Binding is a
pure function from an unbound tree plus a :class:`RowLayout` to a new bound
tree; trees are immutable after construction.
"""

from __future__ import annotations

import re
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import BindError, ExecutionError, TypeMismatchError
from repro.relational.types import ColumnType, and_, compare, not_, or_

# ---------------------------------------------------------------------------
# Row layouts
# ---------------------------------------------------------------------------


class RowLayout:
    """Maps (qualifier, column) names to positions in an executor row.

    Each slot is (qualifier, name, ctype).  Qualifiers are table aliases; a
    slot may appear under a unique bare name as well.  Layouts compose with
    ``+`` when joins concatenate rows.
    """

    def __init__(self, slots: Sequence[Tuple[Optional[str], str, ColumnType]]) -> None:
        self.slots: Tuple[Tuple[Optional[str], str, ColumnType], ...] = tuple(
            (q.lower() if q else None, n.lower(), t) for q, n, t in slots
        )
        self._by_qualified: Dict[Tuple[str, str], int] = {}
        self._by_bare: Dict[str, List[int]] = {}
        for pos, (qualifier, name, _t) in enumerate(self.slots):
            if qualifier is not None:
                key = (qualifier, name)
                if key in self._by_qualified:
                    raise BindError(f"duplicate column {qualifier}.{name} in layout")
                self._by_qualified[key] = pos
            self._by_bare.setdefault(name, []).append(pos)

    @classmethod
    def for_table(cls, alias: str, schema: "Any") -> "RowLayout":
        """Layout of a base-table (or view) scan under *alias*."""
        return cls([(alias, col.name, col.ctype) for col in schema.columns])

    def __add__(self, other: "RowLayout") -> "RowLayout":
        return RowLayout(self.slots + other.slots)

    def __len__(self) -> int:
        return len(self.slots)

    def resolve(self, qualifier: Optional[str], name: str) -> int:
        """Resolve a column reference to a slot position.

        Qualified lookups must match exactly; bare lookups must be
        unambiguous across the whole layout.
        """
        name = name.lower()
        if qualifier is not None:
            key = (qualifier.lower(), name)
            pos = self._by_qualified.get(key)
            if pos is None:
                raise BindError(f"unknown column {qualifier}.{name}")
            return pos
        positions = self._by_bare.get(name, [])
        if not positions:
            raise BindError(f"unknown column {name!r}")
        if len(positions) > 1:
            raise BindError(f"ambiguous column {name!r}; qualify it")
        return positions[0]

    def type_at(self, pos: int) -> ColumnType:
        return self.slots[pos][2]

    def names(self) -> List[str]:
        """Bare output names (used for result headers)."""
        return [name for _q, name, _t in self.slots]


# ---------------------------------------------------------------------------
# AST nodes
# ---------------------------------------------------------------------------


class Expr:
    """Base class for scalar expressions."""

    def eval(self, row: Sequence[Any]) -> Any:
        """Evaluate against an executor row (only valid on bound trees)."""
        raise NotImplementedError

    def children(self) -> Tuple["Expr", ...]:
        return ()

    def walk(self) -> Iterator["Expr"]:
        """Yield this node and all descendants, pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.to_sql()

    def to_sql(self) -> str:
        raise NotImplementedError


class Literal(Expr):
    """A constant value (already a stored-form Python value)."""

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value

    def eval(self, row: Sequence[Any]) -> Any:
        return self.value

    def to_sql(self) -> str:
        import datetime

        if self.value is None:
            return "NULL"
        if isinstance(self.value, bool):
            return "TRUE" if self.value else "FALSE"
        if isinstance(self.value, str):
            escaped = self.value.replace("'", "''")
            return f"'{escaped}'"
        if isinstance(self.value, datetime.date):
            return f"'{self.value.isoformat()}'"  # DATE literals are quoted
        return str(self.value)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Literal) and other.value == self.value

    def __hash__(self) -> int:
        return hash(("Literal", self.value))


class Param(Expr):
    """A ``?`` placeholder filled in at execute time by a prepared statement.

    Unlike every other node, a Param is deliberately mutable: the parser
    creates one node per marker, binding and planning thread the *same*
    object through (``rewrite`` passes unknown leaves along unchanged), and
    :meth:`PreparedStatement.execute` assigns the value right before
    evaluation.  Identity (not structural) equality keeps two statements'
    parameters distinct.
    """

    __slots__ = ("position", "value", "is_set")

    def __init__(self, position: int) -> None:
        self.position = position  # zero-based, in lexical order
        self.value: Any = None
        self.is_set = False

    def set(self, value: Any) -> None:
        self.value = value
        self.is_set = True

    def eval(self, row: Sequence[Any]) -> Any:
        if not self.is_set:
            raise ExecutionError(
                f"parameter ?{self.position + 1} has no value; "
                "execute this statement through Database.prepare()"
            )
        return self.value

    def to_sql(self) -> str:
        return "?"


class ColumnRef(Expr):
    """A reference to a column; bound copies carry a resolved position."""

    __slots__ = ("qualifier", "name", "index")

    def __init__(
        self, name: str, qualifier: Optional[str] = None, index: Optional[int] = None
    ) -> None:
        self.qualifier = qualifier.lower() if qualifier else None
        self.name = name.lower()
        self.index = index

    def eval(self, row: Sequence[Any]) -> Any:
        if self.index is None:
            raise ExecutionError(f"unbound column reference {self.to_sql()}")
        return row[self.index]

    def to_sql(self) -> str:
        return f"{self.qualifier}.{self.name}" if self.qualifier else self.name

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ColumnRef)
            and other.qualifier == self.qualifier
            and other.name == self.name
        )

    def __hash__(self) -> int:
        return hash(("ColumnRef", self.qualifier, self.name))


_CMP_OPS: Dict[str, Callable[[Optional[int]], Optional[bool]]] = {
    "=": lambda c: None if c is None else c == 0,
    "!=": lambda c: None if c is None else c != 0,
    "<": lambda c: None if c is None else c < 0,
    "<=": lambda c: None if c is None else c <= 0,
    ">": lambda c: None if c is None else c > 0,
    ">=": lambda c: None if c is None else c >= 0,
}

_ARITH_OPS = {"+", "-", "*", "/", "%"}
_BOOL_OPS = {"and", "or"}


class BinOp(Expr):
    """Binary operator: comparison, arithmetic, AND/OR."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expr, right: Expr) -> None:
        op = op.lower()
        if op not in _CMP_OPS and op not in _ARITH_OPS and op not in _BOOL_OPS:
            raise ValueError(f"unknown binary operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def children(self) -> Tuple[Expr, ...]:
        return (self.left, self.right)

    def eval(self, row: Sequence[Any]) -> Any:
        op = self.op
        if op == "and":
            return and_(_as_bool(self.left.eval(row)), _as_bool(self.right.eval(row)))
        if op == "or":
            return or_(_as_bool(self.left.eval(row)), _as_bool(self.right.eval(row)))
        lhs = self.left.eval(row)
        rhs = self.right.eval(row)
        if op in _CMP_OPS:
            return _CMP_OPS[op](compare(lhs, rhs))
        # arithmetic
        if lhs is None or rhs is None:
            return None
        if isinstance(lhs, bool) or isinstance(rhs, bool):
            raise TypeMismatchError(f"arithmetic on BOOL: {self.to_sql()}")
        if not isinstance(lhs, (int, float)) or not isinstance(rhs, (int, float)):
            if op == "+" and isinstance(lhs, str) and isinstance(rhs, str):
                return lhs + rhs  # string concatenation
            raise TypeMismatchError(f"arithmetic on non-numbers: {self.to_sql()}")
        if op == "+":
            return lhs + rhs
        if op == "-":
            return lhs - rhs
        if op == "*":
            return lhs * rhs
        if op == "/":
            if rhs == 0:
                raise ExecutionError(f"division by zero in {self.to_sql()}")
            result = lhs / rhs
            if isinstance(lhs, int) and isinstance(rhs, int) and lhs % rhs == 0:
                return lhs // rhs
            return result
        if op == "%":
            if rhs == 0:
                raise ExecutionError(f"modulo by zero in {self.to_sql()}")
            return lhs % rhs
        raise ExecutionError(f"unhandled operator {op!r}")  # pragma: no cover

    def to_sql(self) -> str:
        return f"({self.left.to_sql()} {self.op.upper()} {self.right.to_sql()})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, BinOp)
            and other.op == self.op
            and other.left == self.left
            and other.right == self.right
        )

    def __hash__(self) -> int:
        return hash(("BinOp", self.op, self.left, self.right))


class UnaryOp(Expr):
    """NOT or numeric negation."""

    __slots__ = ("op", "operand")

    def __init__(self, op: str, operand: Expr) -> None:
        op = op.lower()
        if op not in ("not", "-"):
            raise ValueError(f"unknown unary operator {op!r}")
        self.op = op
        self.operand = operand

    def children(self) -> Tuple[Expr, ...]:
        return (self.operand,)

    def eval(self, row: Sequence[Any]) -> Any:
        value = self.operand.eval(row)
        if self.op == "not":
            return not_(_as_bool(value))
        if value is None:
            return None
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise TypeMismatchError(f"cannot negate {value!r}")
        return -value

    def to_sql(self) -> str:
        if self.op == "not":
            return f"(NOT {self.operand.to_sql()})"
        return f"(-{self.operand.to_sql()})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, UnaryOp)
            and other.op == self.op
            and other.operand == self.operand
        )

    def __hash__(self) -> int:
        return hash(("UnaryOp", self.op, self.operand))


class IsNull(Expr):
    """column IS [NOT] NULL — the only NULL-test that returns 2VL booleans."""

    __slots__ = ("operand", "negated")

    def __init__(self, operand: Expr, negated: bool = False) -> None:
        self.operand = operand
        self.negated = negated

    def children(self) -> Tuple[Expr, ...]:
        return (self.operand,)

    def eval(self, row: Sequence[Any]) -> Any:
        is_null = self.operand.eval(row) is None
        return not is_null if self.negated else is_null

    def to_sql(self) -> str:
        keyword = "IS NOT NULL" if self.negated else "IS NULL"
        return f"({self.operand.to_sql()} {keyword})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, IsNull)
            and other.negated == self.negated
            and other.operand == self.operand
        )

    def __hash__(self) -> int:
        return hash(("IsNull", self.operand, self.negated))


class Like(Expr):
    """TEXT pattern match with %% and _ wildcards (case-sensitive)."""

    __slots__ = ("operand", "pattern", "negated", "_regex")

    def __init__(self, operand: Expr, pattern: str, negated: bool = False) -> None:
        self.operand = operand
        self.pattern = pattern
        self.negated = negated
        self._regex = re.compile(like_to_regex(pattern), re.DOTALL)

    def children(self) -> Tuple[Expr, ...]:
        return (self.operand,)

    def eval(self, row: Sequence[Any]) -> Any:
        value = self.operand.eval(row)
        if value is None:
            return None
        if not isinstance(value, str):
            raise TypeMismatchError(f"LIKE applies to TEXT, got {value!r}")
        matched = self._regex.match(value) is not None
        return not matched if self.negated else matched

    def to_sql(self) -> str:
        keyword = "NOT LIKE" if self.negated else "LIKE"
        escaped = self.pattern.replace("'", "''")
        return f"({self.operand.to_sql()} {keyword} '{escaped}')"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Like)
            and other.pattern == self.pattern
            and other.negated == self.negated
            and other.operand == self.operand
        )

    def __hash__(self) -> int:
        return hash(("Like", self.operand, self.pattern, self.negated))


class InList(Expr):
    """operand IN (literal, ...) with SQL NULL semantics."""

    __slots__ = ("operand", "items", "negated")

    def __init__(self, operand: Expr, items: Sequence[Expr], negated: bool = False) -> None:
        self.operand = operand
        self.items = tuple(items)
        self.negated = negated

    def children(self) -> Tuple[Expr, ...]:
        return (self.operand,) + self.items

    def eval(self, row: Sequence[Any]) -> Any:
        value = self.operand.eval(row)
        if value is None:
            return None
        saw_null = False
        for item in self.items:
            candidate = item.eval(row)
            if candidate is None:
                saw_null = True
                continue
            if compare(value, candidate) == 0:
                return False if self.negated else True
        if saw_null:
            return None
        return True if self.negated else False

    def to_sql(self) -> str:
        keyword = "NOT IN" if self.negated else "IN"
        inner = ", ".join(item.to_sql() for item in self.items)
        return f"({self.operand.to_sql()} {keyword} ({inner}))"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, InList)
            and other.items == self.items
            and other.negated == self.negated
            and other.operand == self.operand
        )

    def __hash__(self) -> int:
        return hash(("InList", self.operand, self.items, self.negated))


def _round(n, digits=0):
    if n is None:
        return None
    result = round(n, int(digits))
    return float(result) if isinstance(n, float) else result


_SCALAR_FUNCS: Dict[str, Callable[..., Any]] = {
    "lower": lambda s: None if s is None else s.lower(),
    "upper": lambda s: None if s is None else s.upper(),
    "length": lambda s: None if s is None else len(s),
    "abs": lambda n: None if n is None else abs(n),
    "coalesce": lambda *args: next((a for a in args if a is not None), None),
    "substr": lambda s, start, n=None: (
        None if s is None else (s[start - 1 :] if n is None else s[start - 1 : start - 1 + n])
    ),
    "trim": lambda s: None if s is None else s.strip(),
    "ltrim": lambda s: None if s is None else s.lstrip(),
    "rtrim": lambda s: None if s is None else s.rstrip(),
    "replace": lambda s, old, new: None if s is None else s.replace(old, new),
    "round": _round,
    "nullif": lambda a, b: None if a == b else a,
    "year": lambda d: None if d is None else d.year,
    "month": lambda d: None if d is None else d.month,
    "day": lambda d: None if d is None else d.day,
}


class FuncCall(Expr):
    """Scalar function call (LOWER, UPPER, LENGTH, ABS, COALESCE, SUBSTR)."""

    __slots__ = ("func", "args")

    def __init__(self, func: str, args: Sequence[Expr]) -> None:
        func = func.lower()
        if func not in _SCALAR_FUNCS:
            raise ValueError(f"unknown scalar function {func!r}")
        self.func = func
        self.args = tuple(args)

    def children(self) -> Tuple[Expr, ...]:
        return self.args

    def eval(self, row: Sequence[Any]) -> Any:
        values = [arg.eval(row) for arg in self.args]
        try:
            return _SCALAR_FUNCS[self.func](*values)
        except (TypeError, AttributeError) as exc:
            raise TypeMismatchError(f"bad arguments to {self.func}(): {values!r}") from exc

    def to_sql(self) -> str:
        inner = ", ".join(arg.to_sql() for arg in self.args)
        return f"{self.func.upper()}({inner})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, FuncCall)
            and other.func == self.func
            and other.args == self.args
        )

    def __hash__(self) -> int:
        return hash(("FuncCall", self.func, self.args))


class Case(Expr):
    """CASE WHEN cond THEN result [...] [ELSE result] END.

    The "simple" form (CASE x WHEN v THEN r END) is desugared by the parser
    into equality conditions, so this node only handles the searched form.
    """

    __slots__ = ("branches", "else_expr")

    def __init__(
        self,
        branches: Sequence[Tuple[Expr, Expr]],
        else_expr: Optional[Expr] = None,
    ) -> None:
        if not branches:
            raise ValueError("CASE needs at least one WHEN branch")
        self.branches = tuple(branches)
        self.else_expr = else_expr

    def children(self) -> Tuple[Expr, ...]:
        kids: List[Expr] = []
        for condition, result in self.branches:
            kids.extend((condition, result))
        if self.else_expr is not None:
            kids.append(self.else_expr)
        return tuple(kids)

    def eval(self, row: Sequence[Any]) -> Any:
        for condition, result in self.branches:
            if condition.eval(row) is True:
                return result.eval(row)
        if self.else_expr is not None:
            return self.else_expr.eval(row)
        return None

    def to_sql(self) -> str:
        parts = ["CASE"]
        for condition, result in self.branches:
            parts.append(f"WHEN {condition.to_sql()} THEN {result.to_sql()}")
        if self.else_expr is not None:
            parts.append(f"ELSE {self.else_expr.to_sql()}")
        parts.append("END")
        return "(" + " ".join(parts) + ")"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Case)
            and other.branches == self.branches
            and other.else_expr == self.else_expr
        )

    def __hash__(self) -> int:
        return hash(("Case", self.branches, self.else_expr))


def like_to_regex(pattern: str) -> str:
    """Translate a SQL LIKE pattern into an anchored regex source string."""
    out = []
    for ch in pattern:
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        else:
            out.append(re.escape(ch))
    return "".join(out) + r"\Z"


def _as_bool(value: Any) -> Optional[bool]:
    if value is None or isinstance(value, bool):
        return value
    raise TypeMismatchError(f"expected a boolean, got {value!r}")


# ---------------------------------------------------------------------------
# Binding and rewriting
# ---------------------------------------------------------------------------


def bind(expr: Expr, layout: RowLayout) -> Expr:
    """Return a copy of *expr* with every ColumnRef resolved against *layout*."""
    return rewrite(
        expr,
        lambda node: ColumnRef(
            node.name, node.qualifier, layout.resolve(node.qualifier, node.name)
        )
        if isinstance(node, ColumnRef)
        else None,
    )


def rewrite(expr: Expr, fn: Callable[[Expr], Optional[Expr]]) -> Expr:
    """Bottom-up rewrite: *fn* returns a replacement node or None to keep.

    ``fn`` sees nodes whose children have already been rewritten.
    """
    if isinstance(expr, BinOp):
        node: Expr = BinOp(expr.op, rewrite(expr.left, fn), rewrite(expr.right, fn))
    elif isinstance(expr, UnaryOp):
        node = UnaryOp(expr.op, rewrite(expr.operand, fn))
    elif isinstance(expr, IsNull):
        node = IsNull(rewrite(expr.operand, fn), expr.negated)
    elif isinstance(expr, Like):
        node = Like(rewrite(expr.operand, fn), expr.pattern, expr.negated)
    elif isinstance(expr, InList):
        node = InList(
            rewrite(expr.operand, fn),
            [rewrite(item, fn) for item in expr.items],
            expr.negated,
        )
    elif isinstance(expr, FuncCall):
        node = FuncCall(expr.func, [rewrite(arg, fn) for arg in expr.args])
    elif isinstance(expr, Case):
        node = Case(
            [
                (rewrite(condition, fn), rewrite(result, fn))
                for condition, result in expr.branches
            ],
            rewrite(expr.else_expr, fn) if expr.else_expr is not None else None,
        )
    else:
        node = expr
    replacement = fn(node)
    return node if replacement is None else replacement


def extract_params(expr: Expr, values: List[Any]) -> Expr:
    """Replace every Literal with a bound Param, appending its value to *values*.

    ``rewrite`` visits children in the same order ``to_sql`` renders them, so
    the collected values line up positionally with the ``?`` markers in the
    rewritten expression's text.  The forms runtime uses this to turn a
    per-refresh predicate with embedded literal values into a stable
    statement text plus a parameter vector, so one prepared plan serves
    every refresh regardless of the current criterion or link values.
    """

    def swap(node: Expr) -> Optional[Expr]:
        if isinstance(node, Literal):
            param = Param(len(values))
            param.set(node.value)
            values.append(node.value)
            return param
        return None

    return rewrite(expr, swap)


def column_refs(expr: Expr) -> List[ColumnRef]:
    """All ColumnRef nodes in *expr*, pre-order."""
    return [node for node in expr.walk() if isinstance(node, ColumnRef)]


def split_conjuncts(expr: Optional[Expr]) -> List[Expr]:
    """Flatten a predicate into its top-level AND-ed conjuncts."""
    if expr is None:
        return []
    if isinstance(expr, BinOp) and expr.op == "and":
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


def conjoin(conjuncts: Sequence[Expr]) -> Optional[Expr]:
    """Inverse of :func:`split_conjuncts`; None for an empty list."""
    result: Optional[Expr] = None
    for conjunct in conjuncts:
        result = conjunct if result is None else BinOp("and", result, conjunct)
    return result


def references_only(expr: Expr, qualifiers: Sequence[str]) -> bool:
    """True if every column in *expr* belongs to one of *qualifiers*.

    Unqualified references make the test fail (the caller should have
    qualified everything during binding preparation).
    """
    allowed = {q.lower() for q in qualifiers}
    return all(
        ref.qualifier is not None and ref.qualifier in allowed
        for ref in column_refs(expr)
    )


def equality_pair(expr: Expr) -> Optional[Tuple[ColumnRef, ColumnRef]]:
    """If *expr* is ``a.x = b.y`` over two columns, return the pair."""
    if (
        isinstance(expr, BinOp)
        and expr.op == "="
        and isinstance(expr.left, ColumnRef)
        and isinstance(expr.right, ColumnRef)
    ):
        return expr.left, expr.right
    return None


def const_comparison(expr: Expr) -> Optional[Tuple[ColumnRef, str, Any]]:
    """If *expr* compares one column to a literal, return (col, op, value).

    The comparison is normalised so the column is on the left.
    """
    flipped = {"<": ">", ">": "<", "<=": ">=", ">=": "<=", "=": "=", "!=": "!="}
    if isinstance(expr, BinOp) and expr.op in flipped:
        if isinstance(expr.left, ColumnRef) and isinstance(expr.right, Literal):
            return expr.left, expr.op, expr.right.value
        if isinstance(expr.right, ColumnRef) and isinstance(expr.left, Literal):
            return expr.right, flipped[expr.op], expr.left.value
    return None
