"""Column types, value coercion, and SQL three-valued-logic helpers.

The engine supports five scalar types::

    INT    -- Python int
    FLOAT  -- Python float (an INT coerces up when stored in a FLOAT column)
    TEXT   -- Python str
    BOOL   -- Python bool
    DATE   -- datetime.date (accepted also as an ISO 'YYYY-MM-DD' string)

``None`` is the SQL NULL and is a legal value of every type (subject to
NOT NULL constraints enforced at the schema layer).  Comparison helpers in
this module implement SQL's three-valued logic: any comparison against NULL
yields ``None`` ("unknown"), and ``and_``/``or_``/``not_`` propagate unknowns
the way the SQL standard prescribes.
"""

from __future__ import annotations

import datetime
import enum
from typing import Any, Optional

from repro.errors import TypeMismatchError


class ColumnType(enum.Enum):
    """The scalar types a column may be declared with."""

    INT = "INT"
    FLOAT = "FLOAT"
    TEXT = "TEXT"
    BOOL = "BOOL"
    DATE = "DATE"

    @classmethod
    def from_name(cls, name: str) -> "ColumnType":
        """Resolve a type name as written in SQL (case-insensitive).

        Common synonyms are accepted: INTEGER, REAL/DOUBLE, VARCHAR/CHAR/
        STRING, BOOLEAN.
        """
        canonical = _TYPE_SYNONYMS.get(name.strip().upper())
        if canonical is None:
            raise TypeMismatchError(f"unknown column type: {name!r}")
        return cls(canonical)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


_TYPE_SYNONYMS = {
    "INT": "INT",
    "INTEGER": "INT",
    "SMALLINT": "INT",
    "BIGINT": "INT",
    "FLOAT": "FLOAT",
    "REAL": "FLOAT",
    "DOUBLE": "FLOAT",
    "NUMERIC": "FLOAT",
    "DECIMAL": "FLOAT",
    "TEXT": "TEXT",
    "STRING": "TEXT",
    "CHAR": "TEXT",
    "VARCHAR": "TEXT",
    "BOOL": "BOOL",
    "BOOLEAN": "BOOL",
    "DATE": "DATE",
}

#: Python types acceptable (post-coercion) for each column type.
_PYTHON_TYPES = {
    ColumnType.INT: int,
    ColumnType.FLOAT: float,
    ColumnType.TEXT: str,
    ColumnType.BOOL: bool,
    ColumnType.DATE: datetime.date,
}


def coerce(value: Any, ctype: ColumnType) -> Any:
    """Coerce *value* to column type *ctype*, or raise TypeMismatchError.

    NULL (``None``) passes through unchanged.  Coercions performed:

    * INT accepts bool-free ints and int-valued floats (``3.0`` -> ``3``).
    * FLOAT accepts ints and floats.
    * TEXT accepts only str (no implicit stringification — explicit beats
      implicit).
    * BOOL accepts bool and the ints 0/1.
    * DATE accepts ``datetime.date`` (not datetime) and ISO-format strings.
    """
    if value is None:
        return None
    if ctype is ColumnType.INT:
        if isinstance(value, bool):
            raise TypeMismatchError(f"BOOL value {value!r} is not an INT")
        if isinstance(value, int):
            return value
        if isinstance(value, float) and value.is_integer():
            return int(value)
        raise TypeMismatchError(f"cannot store {value!r} in an INT column")
    if ctype is ColumnType.FLOAT:
        if isinstance(value, bool):
            raise TypeMismatchError(f"BOOL value {value!r} is not a FLOAT")
        if isinstance(value, (int, float)):
            return float(value)
        raise TypeMismatchError(f"cannot store {value!r} in a FLOAT column")
    if ctype is ColumnType.TEXT:
        if isinstance(value, str):
            return value
        raise TypeMismatchError(f"cannot store {value!r} in a TEXT column")
    if ctype is ColumnType.BOOL:
        if isinstance(value, bool):
            return value
        if isinstance(value, int) and value in (0, 1):
            return bool(value)
        raise TypeMismatchError(f"cannot store {value!r} in a BOOL column")
    if ctype is ColumnType.DATE:
        if isinstance(value, datetime.datetime):
            raise TypeMismatchError("DATE columns store dates, not datetimes")
        if isinstance(value, datetime.date):
            return value
        if isinstance(value, str):
            try:
                return datetime.date.fromisoformat(value)
            except ValueError as exc:
                raise TypeMismatchError(
                    f"{value!r} is not an ISO date (YYYY-MM-DD)"
                ) from exc
        raise TypeMismatchError(f"cannot store {value!r} in a DATE column")
    raise TypeMismatchError(f"unhandled column type {ctype!r}")  # pragma: no cover


def is_valid(value: Any, ctype: ColumnType) -> bool:
    """Return True if *value* is already a legal stored value for *ctype*."""
    if value is None:
        return True
    expected = _PYTHON_TYPES[ctype]
    if ctype is ColumnType.INT or ctype is ColumnType.FLOAT:
        # bool is a subclass of int; reject it explicitly.
        return isinstance(value, expected) and not isinstance(value, bool)
    if ctype is ColumnType.DATE:
        return isinstance(value, datetime.date) and not isinstance(
            value, datetime.datetime
        )
    return isinstance(value, expected)


def infer_type(value: Any) -> ColumnType:
    """Infer the column type of a literal Python value (bools before ints)."""
    if isinstance(value, bool):
        return ColumnType.BOOL
    if isinstance(value, int):
        return ColumnType.INT
    if isinstance(value, float):
        return ColumnType.FLOAT
    if isinstance(value, str):
        return ColumnType.TEXT
    if isinstance(value, datetime.date) and not isinstance(value, datetime.datetime):
        return ColumnType.DATE
    raise TypeMismatchError(f"cannot infer a column type for {value!r}")


# ---------------------------------------------------------------------------
# Three-valued logic
# ---------------------------------------------------------------------------

def and_(a: Optional[bool], b: Optional[bool]) -> Optional[bool]:
    """SQL AND: False dominates, otherwise NULL propagates."""
    if a is False or b is False:
        return False
    if a is None or b is None:
        return None
    return True


def or_(a: Optional[bool], b: Optional[bool]) -> Optional[bool]:
    """SQL OR: True dominates, otherwise NULL propagates."""
    if a is True or b is True:
        return True
    if a is None or b is None:
        return None
    return False


def not_(a: Optional[bool]) -> Optional[bool]:
    """SQL NOT: NOT NULL is NULL."""
    if a is None:
        return None
    return not a


def compare(a: Any, b: Any) -> Optional[int]:
    """Three-valued comparison: -1/0/+1, or None if either side is NULL.

    Mixed INT/FLOAT comparisons are allowed; any other cross-type comparison
    raises :class:`TypeMismatchError` (the engine is strictly typed, so this
    indicates a binder bug or a bad ad-hoc expression).
    """
    if a is None or b is None:
        return None
    if isinstance(a, bool) != isinstance(b, bool):
        raise TypeMismatchError(f"cannot compare {a!r} with {b!r}")
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        return (a > b) - (a < b)
    # DATE literals arrive from SQL as strings; coerce for the comparison.
    if isinstance(a, datetime.date) and isinstance(b, str):
        b = coerce(b, ColumnType.DATE)
    elif isinstance(b, datetime.date) and isinstance(a, str):
        a = coerce(a, ColumnType.DATE)
    if type(a) is not type(b):
        raise TypeMismatchError(f"cannot compare {a!r} with {b!r}")
    return (a > b) - (a < b)


class _NullsFirstKey:
    """Sort key wrapper ordering NULL before every non-NULL value."""

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value

    def __lt__(self, other: "_NullsFirstKey") -> bool:
        if self.value is None:
            return other.value is not None
        if other.value is None:
            return False
        return compare(self.value, other.value) < 0

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, _NullsFirstKey):
            return NotImplemented
        if self.value is None or other.value is None:
            return self.value is None and other.value is None
        return compare(self.value, other.value) == 0


def sort_key(value: Any) -> _NullsFirstKey:
    """Total-order sort key placing NULLs first (engine-wide convention)."""
    return _NullsFirstKey(value)


def format_value(value: Any) -> str:
    """Render a stored value for display in a form field or grid cell."""
    if value is None:
        return ""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, datetime.date):
        return value.isoformat()
    if isinstance(value, float):
        # Trim trailing noise but keep floats recognisably floats.
        text = f"{value:.6g}"
        return text
    return str(value)


def parse_input(text: str, ctype: ColumnType) -> Any:
    """Parse text typed by a user in a form field into a stored value.

    An empty string means NULL.  This is the single point where keyboard
    input becomes a typed value, shared by the forms runtime and the
    query-by-form predicate builder.
    """
    text = text.strip()
    if text == "":
        return None
    if ctype is ColumnType.INT:
        try:
            return int(text)
        except ValueError as exc:
            raise TypeMismatchError(f"{text!r} is not an integer") from exc
    if ctype is ColumnType.FLOAT:
        try:
            return float(text)
        except ValueError as exc:
            raise TypeMismatchError(f"{text!r} is not a number") from exc
    if ctype is ColumnType.BOOL:
        lowered = text.lower()
        if lowered in ("true", "t", "yes", "y", "1"):
            return True
        if lowered in ("false", "f", "no", "n", "0"):
            return False
        raise TypeMismatchError(f"{text!r} is not a boolean")
    if ctype is ColumnType.DATE:
        return coerce(text, ColumnType.DATE)
    return text
