"""Fixed-size pages and a buffer-pool pager.

The on-disk backend stores each heap in its own file of 4 KiB pages.  The
:class:`Pager` mediates all page I/O through an LRU buffer pool with a dirty
set, so the heap layer never touches the file directly.  An in-memory pager
shares the same interface, which keeps the heap code identical across
backends and lets tests inject failures at the page boundary.
"""

from __future__ import annotations

import collections
import os
from typing import Dict, List, Optional

from repro.errors import StorageError
from repro.relational.faults import DEFAULT_IO, IOShim

PAGE_SIZE = 4096


class Pager:
    """Abstract pager interface: numbered, fixed-size mutable pages."""

    def page_count(self) -> int:
        raise NotImplementedError

    def allocate_page(self) -> int:
        """Extend the file by one zeroed page; return its page number."""
        raise NotImplementedError

    def read_page(self, page_no: int) -> bytearray:
        """Return the (mutable, pooled) contents of page *page_no*."""
        raise NotImplementedError

    def mark_dirty(self, page_no: int) -> None:
        """Record that the pooled copy of *page_no* was modified."""
        raise NotImplementedError

    def flush(self) -> None:
        """Write all dirty pages to stable storage."""
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release resources."""
        self.flush()


class MemoryPager(Pager):
    """A pager backed by a plain list of bytearrays (no persistence)."""

    def __init__(self) -> None:
        self._pages: list = []
        self._dirty: set = set()
        #: statistics counters, exposed for metrics_snapshot/benchmarks
        self.stats: Dict[str, int] = {"reads": 0, "writes": 0}

    def page_count(self) -> int:
        return len(self._pages)

    def allocate_page(self) -> int:
        self._pages.append(bytearray(PAGE_SIZE))
        return len(self._pages) - 1

    def read_page(self, page_no: int) -> bytearray:
        self.stats["reads"] += 1
        try:
            return self._pages[page_no]
        except IndexError as exc:
            raise StorageError(f"no such page {page_no}") from exc

    def mark_dirty(self, page_no: int) -> None:
        if not 0 <= page_no < len(self._pages):
            raise StorageError(f"no such page {page_no}")
        # Count a write per page per flush interval, mirroring FilePager's
        # dirty set, so Memory/File backends report comparable counters.
        if page_no not in self._dirty:
            self._dirty.add(page_no)
            self.stats["writes"] += 1

    def flush(self) -> None:
        self._dirty.clear()


class FilePager(Pager):
    """A pager over a single file with an LRU buffer pool.

    Parameters
    ----------
    path:
        File to open (created if missing).
    pool_size:
        Maximum number of pages resident in the pool; evictions write back
        dirty pages.  Must be >= 1.
    io:
        The I/O shim durability-relevant calls go through (fault injection;
        see :mod:`repro.relational.faults`).  Defaults to plain ``os``.
    """

    def __init__(self, path: str, pool_size: int = 256, io: Optional[IOShim] = None) -> None:
        if pool_size < 1:
            raise StorageError("pool_size must be >= 1")
        self.path = path
        self._io = io if io is not None else DEFAULT_IO
        self._pool_size = pool_size
        self._pool: "collections.OrderedDict[int, bytearray]" = collections.OrderedDict()
        self._dirty: set = set()
        flags = os.O_RDWR | os.O_CREAT
        self._fd: Optional[int] = self._io.open(path, flags, 0o644)
        size = os.fstat(self._fd).st_size
        if size % PAGE_SIZE != 0:
            raise StorageError(
                f"{path!r} is torn: size {size} is not a multiple of {PAGE_SIZE}"
            )
        self._page_count = size // PAGE_SIZE
        #: statistics counters, exposed for benchmarks and tests
        self.stats: Dict[str, int] = {
            "hits": 0,
            "misses": 0,
            "evictions": 0,
            "writes": 0,
            "fsyncs": 0,
        }

    # -- Pager interface -----------------------------------------------------

    def page_count(self) -> int:
        return self._page_count

    def allocate_page(self) -> int:
        self._require_open()
        page_no = self._page_count
        self._page_count += 1
        page = bytearray(PAGE_SIZE)
        self._admit(page_no, page)
        self._dirty.add(page_no)
        return page_no

    def read_page(self, page_no: int) -> bytearray:
        self._require_open()
        if not 0 <= page_no < self._page_count:
            raise StorageError(f"no such page {page_no} in {self.path!r}")
        if page_no in self._pool:
            self.stats["hits"] += 1
            self._pool.move_to_end(page_no)
            return self._pool[page_no]
        self.stats["misses"] += 1
        os.lseek(self._fd, page_no * PAGE_SIZE, os.SEEK_SET)
        data = os.read(self._fd, PAGE_SIZE)
        if len(data) != PAGE_SIZE:
            # The page was allocated but never flushed; it is all zeros.
            data = data.ljust(PAGE_SIZE, b"\0")
        page = bytearray(data)
        self._admit(page_no, page)
        return page

    def mark_dirty(self, page_no: int) -> None:
        if page_no not in self._pool:
            raise StorageError(
                f"page {page_no} not resident; read it before mutating"
            )
        self._dirty.add(page_no)

    def flush(self) -> None:
        if self._fd is None:
            return
        if not self._dirty:
            # Clean pool: nothing to write back, so the fsync (and its
            # counter) would only charge callers for a durability no-op.
            # The pool can only overflow its target while dirty pages pin
            # it (no-steal), so there is nothing to shrink here either.
            return
        for page_no in sorted(self._dirty):
            self._write_back(page_no)
        self._dirty.clear()
        self._io.fsync(self._fd)
        self.stats["fsyncs"] += 1
        # Shrink an overflowed pool back to its target (oldest-first).
        while len(self._pool) > self._pool_size:
            self._pool.popitem(last=False)
            self.stats["evictions"] += 1

    def close(self, flush: bool = True) -> None:
        """Release the file handle; *flush=False* abandons dirty pages
        (used when a degraded database must not touch its files)."""
        if self._fd is None:
            return
        if flush:
            self.flush()
        os.close(self._fd)
        self._fd = None
        self._pool.clear()
        self._dirty.clear()

    # -- internals -----------------------------------------------------------

    def _require_open(self) -> None:
        if self._fd is None:
            raise StorageError(f"pager for {self.path!r} is closed")

    def _admit(self, page_no: int, page: bytearray) -> None:
        # No-steal policy: only clean pages may be evicted, so the data file
        # never reflects uncommitted (un-checkpointed) state and WAL replay
        # from the last checkpoint is exact.  If every pooled page is dirty
        # the pool grows past its target size until the next flush().
        if len(self._pool) >= self._pool_size:
            for victim_no in self._pool:
                if victim_no not in self._dirty:
                    del self._pool[victim_no]
                    self.stats["evictions"] += 1
                    break
            else:
                self.stats["pool_overflows"] = self.stats.get("pool_overflows", 0) + 1
        self._pool[page_no] = page

    def _write_back(self, page_no: int, page: Optional[bytearray] = None) -> None:
        if page is None:
            page = self._pool[page_no]
        os.lseek(self._fd, page_no * PAGE_SIZE, os.SEEK_SET)
        # write_all loops until the full page hit the file: a short write
        # here would leave a torn page that replay cannot repair.
        self._io.write_all(self._fd, bytes(page))
        self.stats["writes"] += 1

    # -- checkpoint-journal support ------------------------------------------

    def dirty_pages(self) -> List[int]:
        """The page numbers awaiting write-back, sorted."""
        return sorted(self._dirty)

    def disk_page_count(self) -> int:
        """How many whole pages the *file* currently holds (not the pool)."""
        self._require_open()
        return os.fstat(self._fd).st_size // PAGE_SIZE

    def read_page_from_disk(self, page_no: int) -> bytes:
        """The on-disk bytes of *page_no*, bypassing the buffer pool.

        Used by the checkpoint journal to capture pre-images before dirty
        pages overwrite them; short reads pad with zeros like
        :meth:`read_page` does.
        """
        self._require_open()
        os.lseek(self._fd, page_no * PAGE_SIZE, os.SEEK_SET)
        data = os.read(self._fd, PAGE_SIZE)
        return data.ljust(PAGE_SIZE, b"\0")
