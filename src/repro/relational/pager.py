"""Fixed-size pages and the v2 buffer-pool pager.

The on-disk backend stores each heap in its own file of 4 KiB pages.  The
:class:`FilePager` mediates all page I/O through a buffer pool with

* **LRU-K (K=2) eviction** in the 2Q/SLRU style: pages referenced once
  while resident sit in a *probation* queue and are evicted FIFO before
  any page in the *protected* queue (referenced twice or more, kept in
  LRU order).  A sequential scan therefore flows through probation
  without flushing the hot set — the classic LRU-K scan-resistance
  property, with O(1) work per access and per eviction;
* **pin counts**: a pinned page is never evicted, whatever its queue
  status.  Scans pin the page they are iterating (see
  :meth:`~repro.relational.heap.HeapFile.scan_pages`);
* **no-steal**: dirty pages are never evicted either, so the data file
  never reflects un-checkpointed state and WAL replay from the last
  checkpoint stays exact.  When every pooled page is dirty or pinned the
  pool grows past its target until the next ``flush()`` (or unpin)
  shrinks it back;
* **read-ahead prefetch**: :meth:`FilePager.read_pages` fetches a run of
  pages with one positioned read per contiguous miss run instead of one
  syscall per page — the batch API sequential heap scans and index-range
  scans sit on.

An in-memory pager shares the same interface (with hit/miss/eviction
counter parity), which keeps the heap code identical across backends and
lets tests inject failures at the page boundary.  All file I/O goes
through the :class:`~repro.relational.faults.IOShim`, reads included, so
the fault-injection harness can crash, fail, or count every call.
"""

from __future__ import annotations

import collections
import os
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import StorageError
from repro.relational.faults import DEFAULT_IO, IOShim

PAGE_SIZE = 4096

#: default number of pages fetched per positioned read by ``read_pages``
DEFAULT_PREFETCH_PAGES = 32


class Pager:
    """Abstract pager interface: numbered, fixed-size mutable pages."""

    def page_count(self) -> int:
        raise NotImplementedError

    def allocate_page(self) -> int:
        """Extend the file by one zeroed page; return its page number."""
        raise NotImplementedError

    def read_page(self, page_no: int) -> bytearray:
        """Return the (mutable, pooled) contents of page *page_no*."""
        raise NotImplementedError

    def read_pages(self, start: int, count: int, pin: bool = False) -> List[bytearray]:
        """Pages ``start .. start+count-1`` in order (prefetch batch API).

        The default implementation degrades to per-page reads; pool-backed
        pagers override it with one positioned read per miss run.  With
        ``pin=True`` every returned page is pinned (the caller unpins).
        """
        pages = [self.read_page(start + i) for i in range(count)]
        if pin:
            for i in range(count):
                self.pin(start + i)
        return pages

    def pin(self, page_no: int) -> None:
        """Forbid eviction of *page_no* until the matching :meth:`unpin`."""

    def unpin(self, page_no: int) -> None:
        """Release one pin on *page_no*."""

    def mark_dirty(self, page_no: int) -> None:
        """Record that the pooled copy of *page_no* was modified."""
        raise NotImplementedError

    def flush(self) -> None:
        """Write all dirty pages to stable storage."""
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release resources."""
        self.flush()


class MemoryPager(Pager):
    """A pager backed by a plain list of bytearrays (no persistence).

    Every page is always "resident", so reads are hits and nothing is
    ever evicted — but the counters carry the same keys as
    :class:`FilePager` so ``metrics_snapshot()`` and the benchmarks
    report comparable storage stats across backends.
    """

    def __init__(self) -> None:
        self._pages: list = []
        self._dirty: set = set()
        #: statistics counters, exposed for metrics_snapshot/benchmarks
        #: (hit/miss/eviction parity with FilePager; misses and evictions
        #: stay zero because memory pages are never dropped)
        self.stats: Dict[str, int] = {
            "hits": 0,
            "misses": 0,
            "evictions": 0,
            "writes": 0,
            "prefetched": 0,
        }

    def page_count(self) -> int:
        return len(self._pages)

    def allocate_page(self) -> int:
        self._pages.append(bytearray(PAGE_SIZE))
        return len(self._pages) - 1

    def read_page(self, page_no: int) -> bytearray:
        self.stats["hits"] += 1
        try:
            return self._pages[page_no]
        except IndexError as exc:
            raise StorageError(f"no such page {page_no}") from exc

    def mark_dirty(self, page_no: int) -> None:
        if not 0 <= page_no < len(self._pages):
            raise StorageError(f"no such page {page_no}")
        # Count a write per page per flush interval, mirroring FilePager's
        # dirty set, so Memory/File backends report comparable counters.
        if page_no not in self._dirty:
            self._dirty.add(page_no)
            self.stats["writes"] += 1

    def flush(self) -> None:
        self._dirty.clear()


class FilePager(Pager):
    """A pager over a single file with an LRU-K buffer pool (see the
    module docstring for the eviction, pinning, and prefetch design).

    Parameters
    ----------
    path:
        File to open (created if missing).
    pool_size:
        Target number of pages resident in the pool.  Must be >= 1.  The
        pool exceeds the target only while dirty or pinned pages make
        every candidate unevictable (no-steal).
    io:
        The I/O shim every file call goes through (fault injection; see
        :mod:`repro.relational.faults`).  Defaults to plain ``os``.
    prefetch_pages:
        How many pages :meth:`read_pages` callers should request per
        batch (advisory; heap scans read it).  0 disables read-ahead.
    """

    def __init__(
        self,
        path: str,
        pool_size: int = 256,
        io: Optional[IOShim] = None,
        prefetch_pages: int = DEFAULT_PREFETCH_PAGES,
    ) -> None:
        if pool_size < 1:
            raise StorageError("pool_size must be >= 1")
        self.path = path
        self._io = io if io is not None else DEFAULT_IO
        self._pool_size = pool_size
        #: advisory read-ahead window for scan consumers (0 = disabled)
        self.prefetch_pages = max(0, prefetch_pages)
        self._pool: Dict[int, bytearray] = {}
        self._dirty: Set[int] = set()
        #: page -> pin count (only pages with a nonzero count appear)
        self._pins: Dict[int, int] = {}
        #: pages referenced at least twice while resident (LRU-K status)
        self._hot: Set[int] = set()
        #: eviction queues: only clean, unpinned pages are members.
        #: probation holds single-reference pages (FIFO, evicted first);
        #: protected holds re-referenced pages in LRU order.
        self._probation: "collections.OrderedDict[int, None]" = collections.OrderedDict()
        self._protected: "collections.OrderedDict[int, None]" = collections.OrderedDict()
        flags = os.O_RDWR | os.O_CREAT
        self._fd: Optional[int] = self._io.open(path, flags, 0o644)
        size = self._io.fstat(self._fd).st_size
        if size % PAGE_SIZE != 0:
            raise StorageError(
                f"{path!r} is torn: size {size} is not a multiple of {PAGE_SIZE}"
            )
        self._page_count = size // PAGE_SIZE
        #: statistics counters, exposed for benchmarks and tests
        self.stats: Dict[str, int] = {
            "hits": 0,
            "misses": 0,
            "evictions": 0,
            "writes": 0,
            "fsyncs": 0,
            "prefetched": 0,
            "prefetch_io": 0,
            "pool_overflows": 0,
        }

    # -- Pager interface -----------------------------------------------------

    def page_count(self) -> int:
        return self._page_count

    def allocate_page(self) -> int:
        self._require_open()
        page_no = self._page_count
        self._page_count += 1
        page = bytearray(PAGE_SIZE)
        self._admit(page_no, page)
        self._dirty.add(page_no)
        self._unqueue(page_no)  # dirty from birth: not evictable
        return page_no

    def read_page(self, page_no: int) -> bytearray:
        self._require_open()
        if not 0 <= page_no < self._page_count:
            raise StorageError(f"no such page {page_no} in {self.path!r}")
        page = self._pool.get(page_no)
        if page is not None:
            self.stats["hits"] += 1
            self._touch(page_no)
            return page
        self.stats["misses"] += 1
        data = self._pread(PAGE_SIZE, page_no * PAGE_SIZE)
        if len(data) != PAGE_SIZE:
            # The page was allocated but never flushed; it is all zeros.
            data = data.ljust(PAGE_SIZE, b"\0")
        page = bytearray(data)
        self._admit(page_no, page)
        return page

    def read_pages(self, start: int, count: int, pin: bool = False) -> List[bytearray]:
        """Pages ``start .. start+count-1``, one positioned read per
        contiguous miss run (the sequential-scan prefetch path)."""
        self._require_open()
        if count <= 0:
            return []
        if start < 0 or start + count > self._page_count:
            raise StorageError(
                f"page range [{start}, {start + count}) out of bounds "
                f"in {self.path!r}"
            )
        pool = self._pool
        pages: List[Optional[bytearray]] = []
        run_start: Optional[int] = None
        runs: List[Tuple[int, int]] = []  # (first page, length) miss runs
        for page_no in range(start, start + count):
            page = pool.get(page_no)
            if page is not None:
                self.stats["hits"] += 1
                self._touch(page_no)
                if pin:
                    # Pin as we go: a later admission in this same batch
                    # must never evict a page the caller was promised.
                    self.pin(page_no)
                if run_start is not None:
                    runs.append((run_start, page_no - run_start))
                    run_start = None
            elif run_start is None:
                run_start = page_no
            pages.append(page)
        if run_start is not None:
            runs.append((run_start, start + count - run_start))
        for first, length in runs:
            data = self._pread(length * PAGE_SIZE, first * PAGE_SIZE)
            if len(data) != length * PAGE_SIZE:
                data = data.ljust(length * PAGE_SIZE, b"\0")
            self.stats["misses"] += length
            self.stats["prefetched"] += length
            self.stats["prefetch_io"] += 1
            view = memoryview(data)
            for i in range(length):
                page = bytearray(view[i * PAGE_SIZE : (i + 1) * PAGE_SIZE])
                self._admit(first + i, page)
                if pin:
                    self.pin(first + i)
                pages[first + i - start] = page
        return pages  # type: ignore[return-value]

    def pin(self, page_no: int) -> None:
        if page_no not in self._pool:
            raise StorageError(
                f"page {page_no} not resident; read it before pinning"
            )
        self._pins[page_no] = self._pins.get(page_no, 0) + 1
        self._unqueue(page_no)

    def unpin(self, page_no: int) -> None:
        count = self._pins.get(page_no)
        if count is None:
            raise StorageError(f"page {page_no} is not pinned")
        if count > 1:
            self._pins[page_no] = count - 1
            return
        del self._pins[page_no]
        if page_no in self._pool and page_no not in self._dirty:
            self._enqueue(page_no)
        # A pinned scan chunk may have ballooned the pool; shrink back.
        self._shrink_to_target()

    def mark_dirty(self, page_no: int) -> None:
        if page_no not in self._pool:
            raise StorageError(
                f"page {page_no} not resident; read it before mutating"
            )
        self._dirty.add(page_no)
        self._unqueue(page_no)

    def flush(self) -> None:
        if self._fd is None:
            return
        if not self._dirty:
            # Clean pool: nothing to write back, so the fsync (and its
            # counter) would only charge callers for a durability no-op.
            return
        flushed = sorted(self._dirty)
        for page_no in flushed:
            self._write_back(page_no)
        self._dirty.clear()
        self._io.fsync(self._fd)
        self.stats["fsyncs"] += 1
        # Freshly clean pages become evictable again (unless pinned) ...
        for page_no in flushed:
            if page_no in self._pool and page_no not in self._pins:
                self._enqueue(page_no)
        # ... and an overflowed pool shrinks back to its target.
        self._shrink_to_target()

    def close(self, flush: bool = True) -> None:
        """Release the file handle; *flush=False* abandons dirty pages
        (used when a degraded database must not touch its files)."""
        if self._fd is None:
            return
        if flush:
            self.flush()
        os.close(self._fd)
        self._fd = None
        self._pool.clear()
        self._dirty.clear()
        self._pins.clear()
        self._hot.clear()
        self._probation.clear()
        self._protected.clear()

    # -- pool introspection (the _storage telemetry table reads these) -------

    def resident_pages(self) -> int:
        """Pages currently held in the pool."""
        return len(self._pool)

    def pinned_pages(self) -> int:
        """Pages with a nonzero pin count."""
        return len(self._pins)

    def dirty_page_count(self) -> int:
        """Pages awaiting write-back."""
        return len(self._dirty)

    @property
    def pool_size(self) -> int:
        """The configured pool target."""
        return self._pool_size

    # -- internals -----------------------------------------------------------

    def _require_open(self) -> None:
        if self._fd is None:
            raise StorageError(f"pager for {self.path!r} is closed")

    def _pread(self, length: int, offset: int) -> bytes:
        """Positioned read surfacing device errors as StorageError — an
        unreadable sector must become a diagnosable engine fault, never
        silently zeroed data."""
        try:
            return self._io.pread(self._fd, length, offset)
        except OSError as exc:
            raise StorageError(
                f"read of {length} bytes at offset {offset} in "
                f"{self.path!r} failed: {exc}"
            ) from exc

    def _touch(self, page_no: int) -> None:
        """Record a repeat reference: promote probation -> protected."""
        if page_no in self._hot:
            if page_no in self._protected:
                self._protected.move_to_end(page_no)
            return
        self._hot.add(page_no)
        if self._probation.pop(page_no, None) is not None:
            self._protected[page_no] = None

    def _enqueue(self, page_no: int) -> None:
        """Make a clean, unpinned, resident page evictable."""
        if page_no in self._hot:
            self._protected[page_no] = None
            self._protected.move_to_end(page_no)
        else:
            self._probation[page_no] = None
            self._probation.move_to_end(page_no)

    def _unqueue(self, page_no: int) -> None:
        """Remove a page from the eviction queues (dirtied or pinned)."""
        if self._probation.pop(page_no, None) is None:
            self._protected.pop(page_no, None)

    def _admit(self, page_no: int, page: bytearray) -> None:
        # No-steal policy: only clean, unpinned pages may be evicted, so
        # the data file never reflects uncommitted (un-checkpointed) state
        # and WAL replay from the last checkpoint is exact.  If every
        # pooled page is dirty or pinned the pool grows past its target
        # size until the next flush()/unpin().
        if len(self._pool) >= self._pool_size and not self._evict_one():
            self.stats["pool_overflows"] += 1
        self._pool[page_no] = page
        self._hot.discard(page_no)  # fresh admission starts on probation
        self._enqueue(page_no)

    def _evict_one(self) -> bool:
        """Drop one victim: probation FIFO first, then protected LRU.

        O(1): both queues hold only clean, unpinned pages by construction,
        so the head of either queue is always a legal victim.
        """
        if self._probation:
            victim, _ = self._probation.popitem(last=False)
        elif self._protected:
            victim, _ = self._protected.popitem(last=False)
        else:
            return False
        if victim in self._dirty or victim in self._pins:
            # By construction unreachable; a broken queue discipline must
            # fail loudly, never silently steal a dirty or pinned page.
            raise StorageError(
                f"eviction invariant violated: page {victim} is "
                f"{'dirty' if victim in self._dirty else 'pinned'}"
            )
        del self._pool[victim]
        self._hot.discard(victim)
        self.stats["evictions"] += 1
        return True

    def _shrink_to_target(self) -> None:
        while len(self._pool) > self._pool_size and self._evict_one():
            pass

    def _write_back(self, page_no: int, page: Optional[bytearray] = None) -> None:
        if page is None:
            page = self._pool[page_no]
        os.lseek(self._fd, page_no * PAGE_SIZE, os.SEEK_SET)
        # write_all loops until the full page hit the file: a short write
        # here would leave a torn page that replay cannot repair.
        self._io.write_all(self._fd, bytes(page))
        self.stats["writes"] += 1

    # -- checkpoint-journal support ------------------------------------------

    def dirty_pages(self) -> List[int]:
        """The page numbers awaiting write-back, sorted."""
        return sorted(self._dirty)

    def disk_page_count(self) -> int:
        """How many whole pages the *file* currently holds (not the pool)."""
        self._require_open()
        return self._io.fstat(self._fd).st_size // PAGE_SIZE

    def read_page_from_disk(self, page_no: int) -> bytes:
        """The on-disk bytes of *page_no*, bypassing the buffer pool.

        Used by the checkpoint journal to capture pre-images before dirty
        pages overwrite them; short reads pad with zeros like
        :meth:`read_page` does.
        """
        self._require_open()
        data = self._pread(PAGE_SIZE, page_no * PAGE_SIZE)
        return data.ljust(PAGE_SIZE, b"\0")
