"""Compile bound expression trees to single Python closures.

The tuple-at-a-time executor evaluates predicates by walking the ``Expr``
tree: one Python method call per node per row.  For batch execution that
interpretive overhead dominates, so this module lowers a *bound* tree to
one generated function — ``lower('x') = 'abc' AND score > ?`` becomes
roughly::

    def _compiled(row):
        return _and(_b(_eq(_f_lower(row[1]), 'abc')), _b(_gt(row[2], _p0.eval(row))))

compiled once with :func:`compile` and closed over a small environment of
helper functions that reproduce the interpreter's semantics *exactly*:
3VL AND/OR/NOT, ``compare()``-based comparisons (so ``TRUE = 1`` raises
the same :class:`TypeMismatchError`), NULL-propagating arithmetic, the
division/modulo error texts, and the live :class:`~repro.relational.expr.
Param` objects of prepared statements (the generated code calls
``param.eval`` so re-binding a parameter re-uses the compiled closure).

Node types the compiler does not cover — unbound column references, or
planner-internal nodes such as subquery markers — raise
:class:`NotCompilable` internally and the caller falls back to the
interpreter (``expr.eval``).  Both outcomes are counted in
:data:`COMPILE_METRICS` and surfaced per-operator as ``compiled=yes/no``
in EXPLAIN ANALYZE.

Compiled closures are cached on the operator instances of a plan, so the
plan cache (and prepared statements) amortise compilation across
executions the same way they amortise parsing and planning.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ExecutionError, TypeMismatchError
from repro.relational import expr as E
from repro.relational.types import and_, compare, not_, or_

#: process-wide compilation counters (reported by ``metrics_snapshot()``)
COMPILE_METRICS: Dict[str, int] = {"compiled": 0, "fallback": 0}


class NotCompilable(Exception):
    """Internal: the tree contains a node the compiler cannot lower."""


# ---------------------------------------------------------------------------
# Runtime helpers (the environment every generated closure closes over)
# ---------------------------------------------------------------------------
# Each helper mirrors one interpreter code path; see expr.py for the
# canonical semantics.  They take already-evaluated operands.


def _eq(lhs: Any, rhs: Any) -> Optional[bool]:
    c = compare(lhs, rhs)
    return None if c is None else c == 0


def _ne(lhs: Any, rhs: Any) -> Optional[bool]:
    c = compare(lhs, rhs)
    return None if c is None else c != 0


def _lt(lhs: Any, rhs: Any) -> Optional[bool]:
    c = compare(lhs, rhs)
    return None if c is None else c < 0


def _le(lhs: Any, rhs: Any) -> Optional[bool]:
    c = compare(lhs, rhs)
    return None if c is None else c <= 0


def _gt(lhs: Any, rhs: Any) -> Optional[bool]:
    c = compare(lhs, rhs)
    return None if c is None else c > 0


def _ge(lhs: Any, rhs: Any) -> Optional[bool]:
    c = compare(lhs, rhs)
    return None if c is None else c >= 0


def _arith_guard(lhs: Any, rhs: Any, op: str, sql: str) -> None:
    if isinstance(lhs, bool) or isinstance(rhs, bool):
        raise TypeMismatchError(f"arithmetic on BOOL: {sql}")
    if not isinstance(lhs, (int, float)) or not isinstance(rhs, (int, float)):
        raise TypeMismatchError(f"arithmetic on non-numbers: {sql}")


def _add(lhs: Any, rhs: Any, sql: str) -> Any:
    if lhs is None or rhs is None:
        return None
    if isinstance(lhs, bool) or isinstance(rhs, bool):
        raise TypeMismatchError(f"arithmetic on BOOL: {sql}")
    if not isinstance(lhs, (int, float)) or not isinstance(rhs, (int, float)):
        if isinstance(lhs, str) and isinstance(rhs, str):
            return lhs + rhs  # string concatenation
        raise TypeMismatchError(f"arithmetic on non-numbers: {sql}")
    return lhs + rhs


def _sub(lhs: Any, rhs: Any, sql: str) -> Any:
    if lhs is None or rhs is None:
        return None
    _arith_guard(lhs, rhs, "-", sql)
    return lhs - rhs


def _mul(lhs: Any, rhs: Any, sql: str) -> Any:
    if lhs is None or rhs is None:
        return None
    _arith_guard(lhs, rhs, "*", sql)
    return lhs * rhs


def _div(lhs: Any, rhs: Any, sql: str) -> Any:
    if lhs is None or rhs is None:
        return None
    _arith_guard(lhs, rhs, "/", sql)
    if rhs == 0:
        raise ExecutionError(f"division by zero in {sql}")
    if isinstance(lhs, int) and isinstance(rhs, int) and lhs % rhs == 0:
        return lhs // rhs
    return lhs / rhs


def _mod(lhs: Any, rhs: Any, sql: str) -> Any:
    if lhs is None or rhs is None:
        return None
    _arith_guard(lhs, rhs, "%", sql)
    if rhs == 0:
        raise ExecutionError(f"modulo by zero in {sql}")
    return lhs % rhs


def _neg(value: Any) -> Any:
    if value is None:
        return None
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise TypeMismatchError(f"cannot negate {value!r}")
    return -value


def _like(value: Any, match: Callable[[str], Any], negated: bool) -> Optional[bool]:
    if value is None:
        return None
    if not isinstance(value, str):
        raise TypeMismatchError(f"LIKE applies to TEXT, got {value!r}")
    matched = match(value) is not None
    return not matched if negated else matched


def _in(value: Any, candidates: Tuple[Any, ...], negated: bool) -> Optional[bool]:
    # SQL IN: membership via compare() (not Python ==, which would let
    # TRUE match 1), with NULL-in-the-list semantics.
    if value is None:
        return None
    saw_null = False
    for candidate in candidates:
        if candidate is None:
            saw_null = True
            continue
        if compare(value, candidate) == 0:
            return False if negated else True
    if saw_null:
        return None
    return True if negated else False


def _func(fn: Callable[..., Any], name: str, *values: Any) -> Any:
    try:
        return fn(*values)
    except (TypeError, AttributeError) as exc:
        raise TypeMismatchError(
            f"bad arguments to {name}(): {list(values)!r}"
        ) from exc


_HELPERS: Dict[str, Any] = {
    "_and": and_,
    "_or": or_,
    "_not": not_,
    "_b": E._as_bool,
    "_eq": _eq,
    "_ne": _ne,
    "_lt": _lt,
    "_le": _le,
    "_gt": _gt,
    "_ge": _ge,
    "_add": _add,
    "_sub": _sub,
    "_mul": _mul,
    "_div": _div,
    "_mod": _mod,
    "_neg": _neg,
    "_like": _like,
    "_in": _in,
    "_func": _func,
}

_CMP_HELPERS = {"=": "_eq", "!=": "_ne", "<": "_lt", "<=": "_le", ">": "_gt", ">=": "_ge"}
_ARITH_HELPERS = {"+": "_add", "-": "_sub", "*": "_mul", "/": "_div", "%": "_mod"}


# ---------------------------------------------------------------------------
# Lowering
# ---------------------------------------------------------------------------


class _Emitter:
    """Walks a bound tree, producing a Python expression string plus the
    constant environment the string refers to."""

    def __init__(self) -> None:
        self.env: Dict[str, Any] = {}
        self._counter = 0

    def const(self, value: Any, prefix: str = "c") -> str:
        name = f"_{prefix}{self._counter}"
        self._counter += 1
        self.env[name] = value
        return name

    def emit(self, expr: E.Expr) -> str:
        if isinstance(expr, E.Literal):
            value = expr.value
            # Inline the self-representing literal types; everything else
            # (dates, floats — repr('inf') does not round-trip) goes into
            # the environment.
            if value is None or value is True or value is False:
                return repr(value)
            if isinstance(value, (int, str)) and not isinstance(value, bool):
                return repr(value)
            return self.const(value)
        if isinstance(expr, E.Param):
            # The live Param object: prepared statements mutate it between
            # executions, and eval() raises on unset parameters.
            return f"{self.const(expr, 'p')}.eval(row)"
        if isinstance(expr, E.ColumnRef):
            if expr.index is None:
                raise NotCompilable(f"unbound column {expr.to_sql()}")
            return f"row[{expr.index}]"
        if isinstance(expr, E.BinOp):
            left = self.emit(expr.left)
            right = self.emit(expr.right)
            op = expr.op
            if op == "and":
                return f"_and(_b({left}), _b({right}))"
            if op == "or":
                return f"_or(_b({left}), _b({right}))"
            if op in _CMP_HELPERS:
                return f"{_CMP_HELPERS[op]}({left}, {right})"
            sql = self.const(expr.to_sql(), "s")
            return f"{_ARITH_HELPERS[op]}({left}, {right}, {sql})"
        if isinstance(expr, E.UnaryOp):
            operand = self.emit(expr.operand)
            if expr.op == "not":
                return f"_not(_b({operand}))"
            return f"_neg({operand})"
        if isinstance(expr, E.IsNull):
            test = "is not None" if expr.negated else "is None"
            return f"(({self.emit(expr.operand)}) {test})"
        if isinstance(expr, E.Like):
            match = self.const(expr._regex.match, "m")
            return f"_like({self.emit(expr.operand)}, {match}, {expr.negated!r})"
        if isinstance(expr, E.InList):
            items = ", ".join(self.emit(item) for item in expr.items)
            candidates = f"({items},)" if items else "()"
            return f"_in({self.emit(expr.operand)}, {candidates}, {expr.negated!r})"
        if isinstance(expr, E.FuncCall):
            fn = self.const(E._SCALAR_FUNCS[expr.func], "f")
            args = "".join(f", {self.emit(arg)}" for arg in expr.args)
            return f"_func({fn}, {expr.func!r}{args})"
        if isinstance(expr, E.Case):
            # Lazy like the interpreter: Python conditionals evaluate only
            # the taken branch; conditions fire on `is True` (3VL).
            tail = self.emit(expr.else_expr) if expr.else_expr is not None else "None"
            for condition, result in reversed(expr.branches):
                tail = f"(({self.emit(result)}) if ({self.emit(condition)}) is True else {tail})"
            return tail
        raise NotCompilable(f"cannot compile {type(expr).__name__}")


def _build(body: str, env: Dict[str, Any]) -> Callable[[Sequence[Any]], Any]:
    source = f"def _compiled(row):\n    return {body}\n"
    namespace = dict(_HELPERS)
    namespace.update(env)
    exec(compile(source, "<exprcompile>", "exec"), namespace)
    fn = namespace["_compiled"]
    fn.__source__ = source  # debugging aid
    return fn


def compile_expr(expr: E.Expr) -> Tuple[Callable[[Sequence[Any]], Any], bool]:
    """Lower *expr* to ``(fn(row) -> value, compiled?)``.

    On any lowering failure the interpreter (``expr.eval``) is returned
    with ``compiled=False`` — callers never need to special-case.
    """
    try:
        emitter = _Emitter()
        body = emitter.emit(expr)
        fn = _build(body, emitter.env)
    except (NotCompilable, SyntaxError, RecursionError, MemoryError):
        COMPILE_METRICS["fallback"] += 1
        return expr.eval, False
    COMPILE_METRICS["compiled"] += 1
    return fn, True


def compile_row_fn(
    exprs: Sequence[E.Expr],
) -> Tuple[Callable[[Sequence[Any]], Tuple[Any, ...]], bool]:
    """Lower a list of expressions to one ``fn(row) -> tuple`` closure.

    Used for projections, hash-join key extraction, and GROUP BY keys —
    building the whole output tuple in one generated expression avoids a
    per-column dispatch.  Falls back to per-expression ``eval`` whenever
    any member is not compilable.
    """
    try:
        emitter = _Emitter()
        parts = [emitter.emit(expr) for expr in exprs]
        body = "(" + "".join(part + ", " for part in parts) + ")"
        fn = _build(body, emitter.env)
    except (NotCompilable, SyntaxError, RecursionError, MemoryError):
        COMPILE_METRICS["fallback"] += 1
        bound = tuple(exprs)
        return (lambda row: tuple(e.eval(row) for e in bound)), False
    COMPILE_METRICS["compiled"] += 1
    return fn, True
