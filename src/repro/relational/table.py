"""The table layer: validated rows over a heap, with index maintenance.

A :class:`Table` owns one :class:`~repro.relational.heap.HeapFile` plus the
set of secondary indexes declared on it.  All DML funnels through the three
methods :meth:`insert`, :meth:`delete`, and :meth:`update`, which keep every
index exactly in sync with the heap and enforce uniqueness (primary key and
UNIQUE constraints are implemented as unique indexes).

Foreign-key enforcement lives one level up (:mod:`repro.relational.database`)
because it needs to see the parent table.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.errors import CatalogError, ConstraintError, StorageError
from repro.relational.heap import HeapFile, RowId
from repro.relational.indexes import BTreeIndex, Index, make_index
from repro.relational.rowcodec import decode_row, encode_row, span_decoder
from repro.relational.schema import TableSchema
from repro.relational.segments import SEGMENT_PAGES, SegmentStore

Row = Tuple[Any, ...]


class Table:
    """One base relation: schema + heap + indexes."""

    def __init__(self, schema: TableSchema, heap: HeapFile) -> None:
        self.schema = schema
        self.heap = heap
        #: columnar page-run cache for hot vectorized scans; the database
        #: layer sizes it (or disables it with max_rows=0)
        self.segments = SegmentStore()
        self.indexes: Dict[str, Index] = {}
        if schema.primary_key:
            self.add_index(
                f"pk_{schema.name}", "btree", schema.primary_key, unique=True
            )
        for pos, group in enumerate(schema.unique):
            self.add_index(
                f"uq_{schema.name}_{pos}", "btree", group, unique=True
            )

    @property
    def name(self) -> str:
        return self.schema.name

    # -- index management ------------------------------------------------

    def add_index(
        self, name: str, kind: str, columns: Sequence[str], unique: bool = False
    ) -> Index:
        """Create and backfill an index over *columns*."""
        if name in self.indexes:
            raise CatalogError(f"index {name!r} already exists on {self.name!r}")
        for column in columns:
            self.schema.column(column)  # raises SchemaError if unknown
        index = make_index(kind, name, self.name, columns, unique)
        positions = [self.schema.column_index(c) for c in index.columns]
        for rid, row in self.scan():
            index.insert(tuple(row[p] for p in positions), rid)
        self.indexes[name] = index
        return index

    def drop_index(self, name: str) -> None:
        """Remove an index; primary-key/unique indexes cannot be dropped."""
        index = self.indexes.get(name)
        if index is None:
            raise CatalogError(f"no index {name!r} on {self.name!r}")
        if index.unique:
            raise CatalogError(f"index {name!r} enforces a constraint")
        del self.indexes[name]

    def index_on(self, columns: Sequence[str], ordered: bool = False) -> Optional[Index]:
        """Find an index whose key is exactly *columns* (order-sensitive)."""
        wanted = tuple(c.lower() for c in columns)
        for index in self.indexes.values():
            if index.columns == wanted and (index.ordered or not ordered):
                return index
        return None

    def ordered_index_with_prefix(self, column: str) -> Optional[BTreeIndex]:
        """An ordered index whose first key column is *column*, if any."""
        column = column.lower()
        for index in self.indexes.values():
            if isinstance(index, BTreeIndex) and index.columns[0] == column:
                return index
        return None

    def rebuild_indexes(self) -> None:
        """Re-derive every index from a heap scan (used after recovery)."""
        for index in self.indexes.values():
            index.clear()
            positions = [self.schema.column_index(c) for c in index.columns]
            for rid, row in self.scan():
                index.insert(tuple(row[p] for p in positions), rid)

    # -- DML ----------------------------------------------------------------

    def insert(self, row: Sequence[Any]) -> RowId:
        """Validate and store a positional row; maintain all indexes."""
        clean = self.schema.validate_row(row)
        self._check_unique_all(clean, exclude_rid=None)
        rid = self.heap.insert(encode_row(self.schema, clean))
        for index in self.indexes.values():
            index.insert(self._key_for(index, clean), rid)
        return rid

    def insert_mapping(self, values: Mapping[str, Any]) -> RowId:
        """Insert from a column-name mapping (defaults applied)."""
        return self.insert(self.schema.row_from_mapping(values))

    def read(self, rid: RowId) -> Row:
        """Decode the row at *rid*."""
        return decode_row(self.schema, self.heap.read(rid))

    def delete(self, rid: RowId) -> Row:
        """Remove the row at *rid*; returns the old row (for undo logs)."""
        row = self.read(rid)
        for index in self.indexes.values():
            index.delete(self._key_for(index, row), rid)
        self.heap.delete(rid)
        return row

    def update(self, rid: RowId, new_row: Sequence[Any]) -> Tuple[RowId, Row]:
        """Replace the row at *rid*; returns (new_rid, old_row).

        The RowId may change if the record grows past its page.  Indexes are
        updated for both the key change and any rid change.
        """
        old_row = self.read(rid)
        clean = self.schema.validate_row(new_row)
        self._check_unique_all(clean, exclude_rid=rid)
        for index in self.indexes.values():
            index.delete(self._key_for(index, old_row), rid)
        try:
            new_rid = self.heap.update(rid, encode_row(self.schema, clean))
        except StorageError:
            # Restore index entries before propagating so state stays sane.
            for index in self.indexes.values():
                index.insert(self._key_for(index, old_row), rid)
            raise
        for index in self.indexes.values():
            index.insert(self._key_for(index, clean), new_rid)
        return new_rid, old_row

    def update_mapping(self, rid: RowId, changes: Mapping[str, Any]) -> Tuple[RowId, Row]:
        """Update selected columns of the row at *rid*."""
        current = list(self.read(rid))
        for name, value in changes.items():
            current[self.schema.column_index(name)] = value
        return self.update(rid, current)

    # -- reads ------------------------------------------------------------

    def scan(self) -> Iterator[Tuple[RowId, Row]]:
        """All live rows with their RowIds, in heap order."""
        for rid, record in self.heap.scan():
            yield rid, decode_row(self.schema, record)

    def rows(self) -> Iterator[Row]:
        """All live rows (no RowIds)."""
        for _rid, row in self.scan():
            yield row

    def scan_batched(
        self, batch_size: int = 1024
    ) -> Iterator[List[Tuple[RowId, Row]]]:
        """Like :meth:`scan`, but in page-decoded batches.

        Each heap page is converted to an immutable buffer once and every
        live record on it is decoded from its (offset, length) span — no
        per-record ``bytes`` copy, no per-record codec call setup.
        """
        decode = span_decoder(self.schema)
        batch: List[Tuple[RowId, Row]] = []
        append = batch.append
        for page_no, data, live in self.heap.scan_pages():
            buf = bytes(data)
            for slot_no, offset, length in live:
                append((RowId(page_no, slot_no), decode(buf, offset, offset + length)))
            if len(batch) >= batch_size:
                yield batch
                batch = []
                append = batch.append
        if batch:
            yield batch

    def rows_batched(
        self, batch_size: int = 1024, use_segments: bool = False
    ) -> Iterator[List[Row]]:
        """All live rows in batches (no RowIds) — the executor's scan path.

        With *use_segments*, rows are served page-run-at-a-time from the
        table's :class:`~repro.relational.segments.SegmentStore`: a run
        whose cached version matches ``heap.data_version`` skips the page
        reads and record decoding entirely; a miss decodes the run once
        (through the pinned, prefetching heap scan) and caches it.
        """
        if use_segments and self.segments.max_rows > 0:
            yield from self._rows_batched_segments(batch_size)
            return
        decode = span_decoder(self.schema)
        batch: List[Row] = []
        append = batch.append
        for _page_no, data, live in self.heap.scan_pages():
            buf = bytes(data)
            for _slot_no, offset, length in live:
                append(decode(buf, offset, offset + length))
            if len(batch) >= batch_size:
                yield batch
                batch = []
                append = batch.append
        if batch:
            yield batch

    def _rows_batched_segments(self, batch_size: int) -> Iterator[List[Row]]:
        decode = span_decoder(self.schema)
        store = self.segments
        heap = self.heap
        total = heap.page_count()
        batch: List[Row] = []
        for page_lo in range(0, total, SEGMENT_PAGES):
            version = heap.data_version
            columns = store.get(page_lo, version)
            if columns is None:
                run_rows: List[Row] = []
                stop = min(page_lo + SEGMENT_PAGES, total)
                for _page_no, data, live in heap.scan_pages(page_lo, stop):
                    buf = bytes(data)
                    for _slot_no, offset, length in live:
                        run_rows.append(decode(buf, offset, offset + length))
                columns = store.put(page_lo, version, run_rows)
                rows: Iterator[Row] = iter(run_rows)
            else:
                rows = zip(*columns)  # type: ignore[assignment]
            for row in rows:
                batch.append(row)
                if len(batch) >= batch_size:
                    yield batch
                    batch = []
        if batch:
            yield batch

    def read_many(self, rids: Sequence[RowId], prefetch: bool = False) -> List[Row]:
        """Decode the rows at *rids* (index-scan batch path).

        With *prefetch*, the distinct pages behind the batch are warmed
        through the pager's batched read API first, collapsing the
        per-rid point reads into a few positioned I/Os on a cold pool.
        """
        if prefetch and len(rids) > 1:
            self.heap.prefetch([rid.page for rid in rids])
        schema = self.schema
        read = self.heap.read
        return [decode_row(schema, read(rid)) for rid in rids]

    def count(self) -> int:
        """Live row count."""
        return self.heap.count()

    def find_by_key(self, key: Sequence[Any]) -> Optional[Tuple[RowId, Row]]:
        """Locate a row by primary key, or None."""
        if not self.schema.primary_key:
            raise CatalogError(f"table {self.name!r} has no primary key")
        index = self.index_on(self.schema.primary_key)
        rids = index.lookup(tuple(key))
        if not rids:
            return None
        rid = rids[0]
        return rid, self.read(rid)

    def find_where(self, predicate: Callable[[Row], bool]) -> List[Tuple[RowId, Row]]:
        """Full-scan lookup by arbitrary Python predicate (test helper)."""
        return [(rid, row) for rid, row in self.scan() if predicate(row)]

    # -- internals ---------------------------------------------------------

    def _key_for(self, index: Index, row: Row) -> Tuple[Any, ...]:
        return tuple(row[self.schema.column_index(c)] for c in index.columns)

    def _check_unique_all(self, row: Row, exclude_rid: Optional[RowId]) -> None:
        """Pre-check unique indexes so failures surface before heap writes."""
        for index in self.indexes.values():
            if not index.unique:
                continue
            key = self._key_for(index, row)
            if any(component is None for component in key):
                continue
            hits = [r for r in index.lookup(key) if r != exclude_rid]
            if hits:
                raise ConstraintError(
                    f"duplicate key {key!r} violates {index.name!r} "
                    f"on table {self.name!r}"
                )
