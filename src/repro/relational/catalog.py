"""The system catalog: tables, views, and their metadata — as relations.

Following System R (and its 1983 contemporaries), the catalog itself is
queryable: ``SELECT * FROM _tables`` works, because the catalog synthesises
in-memory system relations (``_tables``, ``_columns``, ``_views``,
``_indexes``) on demand from its authoritative Python-side dictionaries.

Name resolution is shared between tables and views: a single namespace, so a
view cannot shadow a table.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Union

from repro.errors import CatalogError
from repro.relational.heap import HeapFile
from repro.relational.pager import MemoryPager
from repro.relational.schema import Column, TableSchema
from repro.relational.table import Table
from repro.relational.types import ColumnType
from repro.views.definition import ViewDefinition

SYSTEM_TABLE_NAMES = (
    "_tables",
    "_columns",
    "_views",
    "_indexes",
    # telemetry relations (built by repro.obs.systables; a catalog with no
    # registered source serves them empty)
    "_statements",
    "_slow_ops",
    "_metrics",
    "_plan_stats",
    "_table_stats",
    "_sessions",
    "_storage",
)


class Catalog:
    """Authoritative registry of tables and views for one database."""

    def __init__(self, heap_factory: Optional[Callable[[str], HeapFile]] = None) -> None:
        """*heap_factory* builds the heap for a new table (default: memory)."""
        self._heap_factory = heap_factory or (lambda name: HeapFile(MemoryPager()))
        self._tables: Dict[str, Table] = {}
        self._views: Dict[str, ViewDefinition] = {}
        #: Monotonic counter bumped on every schema change.  Consumers key
        #: memoized derivations (updatability analyses, cached plans) on it
        #: so a stale derivation can never outlive the schema it described.
        self.generation: int = 0
        #: view name -> (generation, UpdatableViewInfo) memo; see
        #: :func:`repro.views.update.analyze_updatability`.
        self.updatability_cache: Dict[str, tuple] = {}
        #: reserved system-table name -> zero-arg builder, registered by an
        #: owning subsystem (the database wires the telemetry relations here
        #: via :func:`repro.obs.systables.register_telemetry_tables`).
        self._system_sources: Dict[str, Callable[[], Table]] = {}

    def bump_generation(self) -> None:
        """Record a schema change: invalidate every generation-keyed memo."""
        self.generation += 1
        self.updatability_cache.clear()

    # -- tables ---------------------------------------------------------------

    def create_table(self, schema: TableSchema) -> Table:
        """Register a new empty table with *schema*."""
        self._check_free(schema.name)
        table = Table(schema, self._heap_factory(schema.name))
        self._tables[schema.name] = table
        self.bump_generation()
        return table

    def add_existing_table(self, table: Table) -> None:
        """Register a table object built elsewhere (recovery path)."""
        self._check_free(table.name)
        self._tables[table.name] = table
        self.bump_generation()

    def drop_table(self, name: str) -> Table:
        """Unregister a table; fails if any view depends on it."""
        name = name.lower()
        table = self._tables.get(name)
        if table is None:
            raise CatalogError(f"no table named {name!r}")
        dependants = [v.name for v in self._views.values() if name in view_dependencies(v)]
        if dependants:
            raise CatalogError(
                f"cannot drop table {name!r}: views depend on it: {dependants}"
            )
        del self._tables[name]
        self.bump_generation()
        return table

    def table(self, name: str) -> Table:
        """The table named *name* (system tables are synthesised fresh)."""
        name = name.lower()
        if name in SYSTEM_TABLE_NAMES:
            return self._system_table(name)
        table = self._tables.get(name)
        if table is None:
            raise CatalogError(f"no table named {name!r}")
        return table

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables or name.lower() in SYSTEM_TABLE_NAMES

    def tables(self) -> List[Table]:
        """All user tables, sorted by name."""
        return [self._tables[k] for k in sorted(self._tables)]

    # -- views -----------------------------------------------------------

    def create_view(self, view: ViewDefinition) -> None:
        self._check_free(view.name)
        self._views[view.name] = view
        self.bump_generation()

    def drop_view(self, name: str) -> ViewDefinition:
        name = name.lower()
        view = self._views.get(name)
        if view is None:
            raise CatalogError(f"no view named {name!r}")
        dependants = [
            v.name for v in self._views.values()
            if v.name != name and name in view_dependencies(v)
        ]
        if dependants:
            raise CatalogError(
                f"cannot drop view {name!r}: views depend on it: {dependants}"
            )
        del self._views[name]
        self.bump_generation()
        return view

    def view(self, name: str) -> ViewDefinition:
        name = name.lower()
        view = self._views.get(name)
        if view is None:
            raise CatalogError(f"no view named {name!r}")
        return view

    def has_view(self, name: str) -> bool:
        return name.lower() in self._views

    def views(self) -> List[ViewDefinition]:
        """All views, sorted by name."""
        return [self._views[k] for k in sorted(self._views)]

    # -- unified resolution ---------------------------------------------------

    def resolve(self, name: str) -> Union[Table, ViewDefinition]:
        """Table or view named *name*; CatalogError if neither exists."""
        name = name.lower()
        if self.has_table(name):
            return self.table(name)
        if name in self._views:
            return self._views[name]
        raise CatalogError(f"no table or view named {name!r}")

    def schema_of(self, name: str) -> TableSchema:
        """The schema of a table or view, uniformly."""
        entity = self.resolve(name)
        return entity.schema

    def _check_free(self, name: str) -> None:
        name = name.lower()
        if name in SYSTEM_TABLE_NAMES:
            raise CatalogError(f"{name!r} is a reserved system table name")
        if name in self._tables or name in self._views:
            raise CatalogError(f"name {name!r} is already in use")

    # -- system relations -------------------------------------------------

    def register_system_source(self, name: str, builder: Callable[[], Table]) -> None:
        """Bind *builder* as the synthesiser for reserved system table *name*.

        Only names in :data:`SYSTEM_TABLE_NAMES` may be bound; the four
        catalog relations have built-in builders and cannot be overridden.
        """
        name = name.lower()
        if name not in SYSTEM_TABLE_NAMES:
            raise CatalogError(f"{name!r} is not a reserved system table name")
        if name in ("_tables", "_columns", "_views", "_indexes"):
            raise CatalogError(f"catalog relation {name!r} cannot be overridden")
        self._system_sources[name] = builder

    def _system_table(self, name: str) -> Table:
        builders = {
            "_tables": self._build_sys_tables,
            "_columns": self._build_sys_columns,
            "_views": self._build_sys_views,
            "_indexes": self._build_sys_indexes,
        }
        builtin = builders.get(name)
        if builtin is not None:
            return builtin()
        source = self._system_sources.get(name)
        if source is not None:
            return source()
        # A telemetry relation on a catalog with no attached database:
        # serve the declared schema with zero rows.
        from repro.obs.systables import empty_system_table

        return empty_system_table(name)

    def _fresh(self, schema: TableSchema, rows: Iterator) -> Table:
        table = Table(schema, HeapFile(MemoryPager()))
        for row in rows:
            table.insert(row)
        return table

    def _build_sys_tables(self) -> Table:
        schema = TableSchema(
            "_tables",
            [
                Column("name", ColumnType.TEXT, nullable=False),
                Column("kind", ColumnType.TEXT, nullable=False),
                Column("arity", ColumnType.INT, nullable=False),
                Column("row_count", ColumnType.INT),
            ],
        )
        def rows():
            for table in self.tables():
                yield (table.name, "table", table.schema.arity, table.count())
            for view in self.views():
                yield (view.name, "view", view.schema.arity, None)
        return self._fresh(schema, rows())

    def _build_sys_columns(self) -> Table:
        schema = TableSchema(
            "_columns",
            [
                Column("table_name", ColumnType.TEXT, nullable=False),
                Column("position", ColumnType.INT, nullable=False),
                Column("name", ColumnType.TEXT, nullable=False),
                Column("type", ColumnType.TEXT, nullable=False),
                Column("nullable", ColumnType.BOOL, nullable=False),
                Column("in_primary_key", ColumnType.BOOL, nullable=False),
            ],
        )
        def rows():
            for entity in list(self.tables()) + list(self.views()):
                entity_schema = entity.schema
                for pos, col in enumerate(entity_schema.columns):
                    yield (
                        entity_schema.name if entity_schema.name else entity.name,
                        pos,
                        col.name,
                        str(col.ctype),
                        col.nullable,
                        col.name in entity_schema.primary_key,
                    )
        return self._fresh(schema, rows())

    def _build_sys_views(self) -> Table:
        schema = TableSchema(
            "_views",
            [
                Column("name", ColumnType.TEXT, nullable=False),
                Column("check_option", ColumnType.BOOL, nullable=False),
                Column("definition", ColumnType.TEXT),
            ],
        )
        def rows():
            for view in self.views():
                yield (view.name, view.check_option, view.sql_text or None)
        return self._fresh(schema, rows())

    def _build_sys_indexes(self) -> Table:
        schema = TableSchema(
            "_indexes",
            [
                Column("name", ColumnType.TEXT, nullable=False),
                Column("table_name", ColumnType.TEXT, nullable=False),
                Column("columns", ColumnType.TEXT, nullable=False),
                Column("unique_flag", ColumnType.BOOL, nullable=False),
                Column("kind", ColumnType.TEXT, nullable=False),
                Column("entries", ColumnType.INT, nullable=False),
            ],
        )
        def rows():
            for table in self.tables():
                for index in table.indexes.values():
                    yield (
                        index.name,
                        table.name,
                        ",".join(index.columns),
                        index.unique,
                        "btree" if index.ordered else "hash",
                        len(index),
                    )
        return self._fresh(schema, rows())


def view_dependencies(view: ViewDefinition) -> List[str]:
    """Names of tables/views referenced in a view's FROM clause."""
    names = []
    query = view.query
    if query.from_table is not None:
        names.append(query.from_table.name.lower())
    for join in query.joins:
        names.append(join.table.name.lower())
    return names
