"""Physical relational operators (the executor's iterator tree).

Every operator exposes:

* ``layout`` — the :class:`~repro.relational.expr.RowLayout` of its output;
* ``rows()`` — an iterator of plain tuples (the tuple-at-a-time path);
* ``rows_batched(batch_size)`` — an iterator of row *lists* (the
  vectorized path; see below);
* ``explain()`` — a nested textual plan, one line per operator.

Predicates and projections arrive *bound* (column references resolved to
positions in the child's layout); the planner is responsible for binding.
All operators are restartable: ``rows()``/``rows_batched()`` may be
called repeatedly.

**Batch execution.**  ``rows()`` is the original Volcano-style pull loop;
``rows_batched()`` moves the same rows in lists so the per-row Python
overhead (generator resumption, ``eval`` tree walks, per-record decode)
is paid once per batch instead of once per row.  The base class provides
an adapter that chunks ``rows()``, so every operator participates; the
hot operators override it with native batch implementations that pull
batches from their children and evaluate expressions through
:mod:`~repro.relational.exprcompile` closures.  Both paths must produce
identical row sequences — batches are a transport, not a semantic —
which the property tests in ``tests/test_property_engine.py`` enforce.
Batch *sizes* are a hint: operators may emit shorter or slightly longer
lists (a scan flushes whole pages), and empty batches are suppressed.

Compiled expression closures are cached on the operator instances, so
plans held by the plan cache or a prepared statement compile once and
re-execute the compiled form.  ``compiled_status()`` reports ``"yes"``/
``"no"`` (or None for operators with nothing to compile) for EXPLAIN
ANALYZE.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ExecutionError, PlanError
from repro.relational import exprcompile
from repro.relational.expr import Expr, RowLayout
from repro.relational.indexes import BTreeIndex, Index
from repro.relational.table import Table
from repro.relational.types import ColumnType, sort_key

Row = Tuple[Any, ...]

#: default number of rows per batch (X100-style: big enough to amortise
#: per-batch overhead, small enough to stay cache- and memory-friendly)
DEFAULT_BATCH_SIZE = 1024

#: process-wide batch-executor counters (reported by ``metrics_snapshot()``)
EXEC_METRICS: Dict[str, int] = {"batches": 0, "batch_rows": 0}


class Operator:
    """Base class for plan nodes."""

    layout: RowLayout
    #: how this operator touches base-table pages — ``"sequential"``
    #: (window read-ahead), ``"range"`` (run-grouped batch reads),
    #: ``"point"`` (single-page probes), or ``"none"`` for non-leaf
    #: operators.  Access-path leaves must declare their own value
    #: (lint rule WOW008); the storage layer uses it to pick a prefetch
    #: strategy without inspecting operator types.
    prefetch_hint: str = "none"
    #: optional cardinality estimate, set by the planner when ANALYZE
    #: statistics are available; shown by EXPLAIN
    est_rows: Optional[float] = None
    #: optional cost-model estimate (optimizer-v2 cost units), set on
    #: operators that went through cost-based selection; shown by EXPLAIN
    est_cost: Optional[float] = None

    def rows(self) -> Iterator[Row]:
        raise NotImplementedError

    def rows_batched(self, batch_size: int = DEFAULT_BATCH_SIZE) -> Iterator[List[Row]]:
        """Default adapter: chunk ``rows()`` into lists.

        Operators without a native batch implementation still slot into a
        batched pipeline through this; overriders must yield the same rows
        in the same order.
        """
        batch: List[Row] = []
        append = batch.append
        for row in self.rows():
            append(row)
            if len(batch) >= batch_size:
                yield batch
                batch = []
                append = batch.append
        if batch:
            yield batch

    def compiled_status(self) -> Optional[str]:
        """``"yes"``/``"no"`` once expression compilation was attempted;
        None for operators that evaluate no expressions."""
        return None

    def children(self) -> Tuple["Operator", ...]:
        return ()

    def label(self) -> str:
        return type(self).__name__

    def explain(self, depth: int = 0) -> str:
        text = self.label()
        if self.est_rows is not None and self.est_cost is not None:
            text += f"  [~{self.est_rows:.0f} rows, cost={self.est_cost:.2f}]"
        elif self.est_rows is not None:
            text += f"  [~{self.est_rows:.0f} rows]"
        lines = ["  " * depth + text]
        for child in self.children():
            lines.append(child.explain(depth + 1))
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Leaves
# ---------------------------------------------------------------------------


class SeqScan(Operator):
    """Full scan of a base table under an alias."""

    prefetch_hint = "sequential"

    def __init__(self, table: Table, alias: Optional[str] = None) -> None:
        self.table = table
        self.alias = (alias or table.name).lower()
        self.layout = RowLayout.for_table(self.alias, table.schema)
        #: set by the planner when the segment cache should serve this
        #: scan; deliberately absent from ``label()`` so plan text (and
        #: the tests pinned to it) is independent of cache configuration
        self.use_segments = False

    def rows(self) -> Iterator[Row]:
        return self.table.rows()

    def rows_batched(self, batch_size: int = DEFAULT_BATCH_SIZE) -> Iterator[List[Row]]:
        return self.table.rows_batched(batch_size, use_segments=self.use_segments)

    def label(self) -> str:
        return f"SeqScan({self.table.name} AS {self.alias})"


class IndexEqScan(Operator):
    """Point lookup: rows whose index key equals *key*."""

    prefetch_hint = "point"

    def __init__(self, table: Table, index: Index, key: Tuple[Any, ...], alias: Optional[str] = None) -> None:
        self.table = table
        self.index = index
        self.key = key
        self.alias = (alias or table.name).lower()
        self.layout = RowLayout.for_table(self.alias, table.schema)

    def rows(self) -> Iterator[Row]:
        for rid in self.index.lookup(self.key):
            yield self.table.read(rid)

    def rows_batched(self, batch_size: int = DEFAULT_BATCH_SIZE) -> Iterator[List[Row]]:
        rids = list(self.index.lookup(self.key))
        for start in range(0, len(rids), batch_size):
            yield self.table.read_many(rids[start : start + batch_size])

    def label(self) -> str:
        return f"IndexEqScan({self.table.name}.{self.index.name} = {self.key!r})"


class IndexRangeScan(Operator):
    """Ordered scan of a B+-tree index between two single-column bounds."""

    prefetch_hint = "range"

    def __init__(
        self,
        table: Table,
        index: BTreeIndex,
        low: Optional[Tuple[Any, ...]],
        high: Optional[Tuple[Any, ...]],
        include_low: bool = True,
        include_high: bool = True,
        alias: Optional[str] = None,
    ) -> None:
        if not index.ordered:
            raise PlanError(f"index {index.name!r} does not support range scans")
        self.table = table
        self.index = index
        self.low = low
        self.high = high
        self.include_low = include_low
        self.include_high = include_high
        self.alias = (alias or table.name).lower()
        self.layout = RowLayout.for_table(self.alias, table.schema)

    def rows(self) -> Iterator[Row]:
        for _key, rid in self.index.range_scan(
            self.low, self.high, self.include_low, self.include_high
        ):
            yield self.table.read(rid)

    def rows_batched(self, batch_size: int = DEFAULT_BATCH_SIZE) -> Iterator[List[Row]]:
        read_many = self.table.read_many
        rids: List[Any] = []
        for _key, rid in self.index.range_scan(
            self.low, self.high, self.include_low, self.include_high
        ):
            rids.append(rid)
            if len(rids) >= batch_size:
                # Range batches tend to land on page runs; warm them with
                # batched reads instead of one point read per rid.
                yield read_many(rids, prefetch=True)
                rids = []
        if rids:
            yield read_many(rids, prefetch=True)

    def label(self) -> str:
        low = "-inf" if self.low is None else repr(self.low)
        high = "+inf" if self.high is None else repr(self.high)
        return f"IndexRangeScan({self.table.name}.{self.index.name} in [{low}, {high}])"


class RowSource(Operator):
    """Materialised rows with an explicit layout (views, VALUES, tests)."""

    def __init__(self, layout: RowLayout, rows: Sequence[Row], name: str = "rows") -> None:
        self.layout = layout
        self._rows = list(rows)
        self._name = name

    def rows(self) -> Iterator[Row]:
        return iter(self._rows)

    def rows_batched(self, batch_size: int = DEFAULT_BATCH_SIZE) -> Iterator[List[Row]]:
        rows = self._rows
        for start in range(0, len(rows), batch_size):
            yield rows[start : start + batch_size]

    def label(self) -> str:
        return f"RowSource({self._name}, {len(self._rows)} rows)"


# ---------------------------------------------------------------------------
# Unary operators
# ---------------------------------------------------------------------------


class Rename(Operator):
    """Re-qualify a child's output columns under a new alias.

    Used when a view appears in FROM: the view's plan produces unqualified
    output columns; Rename exposes them as ``alias.column``.  Optionally
    renames the columns themselves (CREATE VIEW v (a, b) AS ...).
    """

    def __init__(
        self,
        child: Operator,
        alias: str,
        column_names: Optional[Sequence[str]] = None,
    ) -> None:
        self.child = child
        self.alias = alias.lower()
        old = child.layout.slots
        if column_names is not None:
            if len(column_names) != len(old):
                raise PlanError(
                    f"rename expects {len(old)} column names, got {len(column_names)}"
                )
            names = [n.lower() for n in column_names]
        else:
            names = [name for _q, name, _t in old]
        self.layout = RowLayout(
            [(self.alias, name, ctype) for name, (_q, _n, ctype) in zip(names, old)]
        )

    def children(self) -> Tuple[Operator, ...]:
        return (self.child,)

    def rows(self) -> Iterator[Row]:
        return self.child.rows()

    def rows_batched(self, batch_size: int = DEFAULT_BATCH_SIZE) -> Iterator[List[Row]]:
        return self.child.rows_batched(batch_size)

    def label(self) -> str:
        return f"Rename({self.alias})"


class Filter(Operator):
    """Keep rows for which the bound predicate evaluates to True."""

    def __init__(self, child: Operator, predicate: Expr) -> None:
        self.child = child
        self.predicate = predicate
        self.layout = child.layout
        self._compiled: Optional[Tuple[Callable[[Row], Any], bool]] = None

    def children(self) -> Tuple[Operator, ...]:
        return (self.child,)

    def rows(self) -> Iterator[Row]:
        predicate = self.predicate
        for row in self.child.rows():
            if predicate.eval(row) is True:  # 3VL: NULL filters out
                yield row

    def _predicate_fn(self) -> Callable[[Row], Any]:
        if self._compiled is None:
            self._compiled = exprcompile.compile_expr(self.predicate)
        return self._compiled[0]

    def rows_batched(self, batch_size: int = DEFAULT_BATCH_SIZE) -> Iterator[List[Row]]:
        predicate = self._predicate_fn()
        for batch in self.child.rows_batched(batch_size):
            kept = [row for row in batch if predicate(row) is True]
            if kept:
                yield kept

    def compiled_status(self) -> Optional[str]:
        self._predicate_fn()
        return "yes" if self._compiled[1] else "no"

    def label(self) -> str:
        return f"Filter({self.predicate.to_sql()})"


class Project(Operator):
    """Compute output columns from bound expressions."""

    def __init__(
        self,
        child: Operator,
        exprs: Sequence[Expr],
        names: Sequence[str],
        types: Sequence[ColumnType],
    ) -> None:
        if not (len(exprs) == len(names) == len(types)):
            raise PlanError("projection lists must have equal lengths")
        self.child = child
        self.exprs = tuple(exprs)
        self.names = tuple(n.lower() for n in names)
        self.layout = RowLayout([(None, n, t) for n, t in zip(self.names, types)])
        self._compiled: Optional[Tuple[Callable[[Row], Row], bool]] = None

    def children(self) -> Tuple[Operator, ...]:
        return (self.child,)

    def rows(self) -> Iterator[Row]:
        exprs = self.exprs
        for row in self.child.rows():
            yield tuple(e.eval(row) for e in exprs)

    def _row_fn(self) -> Callable[[Row], Row]:
        if self._compiled is None:
            self._compiled = exprcompile.compile_row_fn(self.exprs)
        return self._compiled[0]

    def rows_batched(self, batch_size: int = DEFAULT_BATCH_SIZE) -> Iterator[List[Row]]:
        project = self._row_fn()
        for batch in self.child.rows_batched(batch_size):
            yield [project(row) for row in batch]

    def compiled_status(self) -> Optional[str]:
        self._row_fn()
        return "yes" if self._compiled[1] else "no"

    def label(self) -> str:
        return "Project(" + ", ".join(self.names) + ")"


class Sort(Operator):
    """Full in-memory sort; NULLs first within each key (engine convention)."""

    def __init__(self, child: Operator, keys: Sequence[Tuple[Expr, bool]]) -> None:
        """*keys* is a list of (bound expression, ascending?) pairs."""
        self.child = child
        self.keys = tuple(keys)
        self.layout = child.layout
        self._compiled: Optional[List[Tuple[Callable[[Row], Any], bool]]] = None

    def children(self) -> Tuple[Operator, ...]:
        return (self.child,)

    def rows(self) -> Iterator[Row]:
        materialised = list(self.child.rows())
        # Stable multi-key sort: apply keys right-to-left.
        for expr, ascending in reversed(self.keys):
            materialised.sort(
                key=lambda row: sort_key(expr.eval(row)), reverse=not ascending
            )
        return iter(materialised)

    def _key_fns(self) -> List[Tuple[Callable[[Row], Any], bool]]:
        if self._compiled is None:
            self._compiled = [
                exprcompile.compile_expr(expr) for expr, _asc in self.keys
            ]
        return self._compiled

    def rows_batched(self, batch_size: int = DEFAULT_BATCH_SIZE) -> Iterator[List[Row]]:
        materialised: List[Row] = []
        for batch in self.child.rows_batched(batch_size):
            materialised.extend(batch)
        key_fns = self._key_fns()
        for (key_fn, _), (_expr, ascending) in zip(reversed(key_fns), reversed(self.keys)):
            materialised.sort(
                key=lambda row: sort_key(key_fn(row)), reverse=not ascending
            )
        for start in range(0, len(materialised), batch_size):
            yield materialised[start : start + batch_size]

    def compiled_status(self) -> Optional[str]:
        return "yes" if all(ok for _fn, ok in self._key_fns()) else "no"

    def label(self) -> str:
        parts = ", ".join(
            f"{e.to_sql()} {'ASC' if asc else 'DESC'}" for e, asc in self.keys
        )
        return f"Sort({parts})"


class Limit(Operator):
    """LIMIT n OFFSET m."""

    def __init__(self, child: Operator, limit: Optional[int], offset: int = 0) -> None:
        if (limit is not None and limit < 0) or offset < 0:
            raise PlanError("LIMIT/OFFSET must be non-negative")
        self.child = child
        self.limit = limit
        self.offset = offset
        self.layout = child.layout

    def children(self) -> Tuple[Operator, ...]:
        return (self.child,)

    def rows(self) -> Iterator[Row]:
        produced = 0
        skipped = 0
        for row in self.child.rows():
            if skipped < self.offset:
                skipped += 1
                continue
            if self.limit is not None and produced >= self.limit:
                return
            produced += 1
            yield row

    def rows_batched(self, batch_size: int = DEFAULT_BATCH_SIZE) -> Iterator[List[Row]]:
        to_skip = self.offset
        remaining = self.limit  # None = unbounded
        for batch in self.child.rows_batched(batch_size):
            if to_skip:
                if to_skip >= len(batch):
                    to_skip -= len(batch)
                    continue
                batch = batch[to_skip:]
                to_skip = 0
            if remaining is not None:
                if len(batch) > remaining:
                    batch = batch[:remaining]
                remaining -= len(batch)
            if batch:
                yield batch
            if remaining == 0:
                return

    def label(self) -> str:
        return f"Limit({self.limit}, offset={self.offset})"


class Distinct(Operator):
    """Remove duplicate rows (hash-based; NULLs compare equal for DISTINCT)."""

    def __init__(self, child: Operator) -> None:
        self.child = child
        self.layout = child.layout

    def children(self) -> Tuple[Operator, ...]:
        return (self.child,)

    def rows(self) -> Iterator[Row]:
        seen = set()
        for row in self.child.rows():
            if row not in seen:
                seen.add(row)
                yield row

    def rows_batched(self, batch_size: int = DEFAULT_BATCH_SIZE) -> Iterator[List[Row]]:
        seen: set = set()
        add = seen.add
        for batch in self.child.rows_batched(batch_size):
            fresh = []
            for row in batch:
                if row not in seen:
                    add(row)
                    fresh.append(row)
            if fresh:
                yield fresh


# ---------------------------------------------------------------------------
# Joins
# ---------------------------------------------------------------------------


class NestedLoopJoin(Operator):
    """Tuple-at-a-time join with an arbitrary bound predicate.

    The inner input is materialised once.  ``left_outer=True`` emits
    NULL-padded rows for unmatched outer tuples.
    """

    def __init__(
        self,
        outer: Operator,
        inner: Operator,
        predicate: Optional[Expr] = None,
        left_outer: bool = False,
    ) -> None:
        self.outer = outer
        self.inner = inner
        self.predicate = predicate
        self.left_outer = left_outer
        self.layout = outer.layout + inner.layout

    def children(self) -> Tuple[Operator, ...]:
        return (self.outer, self.inner)

    def rows(self) -> Iterator[Row]:
        inner_rows = list(self.inner.rows())
        pad = (None,) * len(self.inner.layout)
        predicate = self.predicate
        for outer_row in self.outer.rows():
            matched = False
            for inner_row in inner_rows:
                combined = outer_row + inner_row
                if predicate is None or predicate.eval(combined) is True:
                    matched = True
                    yield combined
            if self.left_outer and not matched:
                yield outer_row + pad

    def label(self) -> str:
        kind = "LeftOuterNLJoin" if self.left_outer else "NestedLoopJoin"
        cond = self.predicate.to_sql() if self.predicate else "TRUE"
        return f"{kind}({cond})"


class HashJoin(Operator):
    """Equi-join: build a hash table on the inner keys, probe with the outer.

    NULL keys never match (SQL semantics).  ``left_outer=True`` pads
    unmatched outer rows.
    """

    def __init__(
        self,
        outer: Operator,
        inner: Operator,
        outer_key_positions: Sequence[int],
        inner_key_positions: Sequence[int],
        residual: Optional[Expr] = None,
        left_outer: bool = False,
    ) -> None:
        if len(outer_key_positions) != len(inner_key_positions) or not outer_key_positions:
            raise PlanError("hash join needs matching, non-empty key lists")
        self.outer = outer
        self.inner = inner
        self.outer_keys = tuple(outer_key_positions)
        self.inner_keys = tuple(inner_key_positions)
        self.residual = residual
        self.left_outer = left_outer
        self.layout = outer.layout + inner.layout
        self._compiled: Optional[Tuple[Callable[[Row], Any], bool]] = None

    def children(self) -> Tuple[Operator, ...]:
        return (self.outer, self.inner)

    def rows(self) -> Iterator[Row]:
        build: Dict[Tuple[Any, ...], List[Row]] = {}
        for inner_row in self.inner.rows():
            key = tuple(inner_row[p] for p in self.inner_keys)
            if any(component is None for component in key):
                continue
            build.setdefault(key, []).append(inner_row)
        pad = (None,) * len(self.inner.layout)
        residual = self.residual
        for outer_row in self.outer.rows():
            key = tuple(outer_row[p] for p in self.outer_keys)
            matched = False
            if not any(component is None for component in key):
                for inner_row in build.get(key, ()):
                    combined = outer_row + inner_row
                    if residual is None or residual.eval(combined) is True:
                        matched = True
                        yield combined
            if self.left_outer and not matched:
                yield outer_row + pad

    def _residual_fn(self) -> Optional[Callable[[Row], Any]]:
        if self.residual is None:
            return None
        if self._compiled is None:
            self._compiled = exprcompile.compile_expr(self.residual)
        return self._compiled[0]

    def rows_batched(self, batch_size: int = DEFAULT_BATCH_SIZE) -> Iterator[List[Row]]:
        # Build phase: single-column keys hash the bare value (the common
        # equi-join shape); multi-column keys hash the tuple.  NULL keys
        # never enter the table, so probes need no separate NULL check for
        # the matched path.
        build: Dict[Any, List[Row]] = {}
        inner_keys = self.inner_keys
        single = len(inner_keys) == 1
        single_inner = inner_keys[0]
        single_outer = self.outer_keys[0]
        for batch in self.inner.rows_batched(batch_size):
            if single:
                for inner_row in batch:
                    key = inner_row[single_inner]
                    if key is not None:
                        build.setdefault(key, []).append(inner_row)
            else:
                for inner_row in batch:
                    key = tuple(inner_row[p] for p in inner_keys)
                    if not any(component is None for component in key):
                        build.setdefault(key, []).append(inner_row)
        pad = (None,) * len(self.inner.layout)
        residual = self._residual_fn()
        left_outer = self.left_outer
        outer_keys = self.outer_keys
        get = build.get
        out: List[Row] = []
        append = out.append
        for batch in self.outer.rows_batched(batch_size):
            for outer_row in batch:
                if single:
                    bucket = get(outer_row[single_outer])
                else:
                    key = tuple(outer_row[p] for p in outer_keys)
                    bucket = None if any(c is None for c in key) else get(key)
                matched = False
                if bucket:
                    if residual is None:
                        matched = True
                        for inner_row in bucket:
                            append(outer_row + inner_row)
                    else:
                        for inner_row in bucket:
                            combined = outer_row + inner_row
                            if residual(combined) is True:
                                matched = True
                                append(combined)
                if left_outer and not matched:
                    append(outer_row + pad)
            if len(out) >= batch_size:
                yield out
                out = []
                append = out.append
        if out:
            yield out

    def compiled_status(self) -> Optional[str]:
        if self.residual is None:
            return None
        self._residual_fn()
        return "yes" if self._compiled[1] else "no"

    def label(self) -> str:
        kind = "LeftOuterHashJoin" if self.left_outer else "HashJoin"
        pairs = ", ".join(
            f"L[{o}]=R[{i}]" for o, i in zip(self.outer_keys, self.inner_keys)
        )
        return f"{kind}({pairs})"


class MergeJoin(Operator):
    """Equi-join over two inputs; sorts both sides, then merges.

    Handles duplicate keys on both sides.  NULL keys never match.
    """

    def __init__(
        self,
        outer: Operator,
        inner: Operator,
        outer_key_positions: Sequence[int],
        inner_key_positions: Sequence[int],
    ) -> None:
        if len(outer_key_positions) != len(inner_key_positions) or not outer_key_positions:
            raise PlanError("merge join needs matching, non-empty key lists")
        self.outer = outer
        self.inner = inner
        self.outer_keys = tuple(outer_key_positions)
        self.inner_keys = tuple(inner_key_positions)
        self.layout = outer.layout + inner.layout

    def children(self) -> Tuple[Operator, ...]:
        return (self.outer, self.inner)

    def rows(self) -> Iterator[Row]:
        def key_of(row: Row, positions: Tuple[int, ...]) -> Optional[Tuple[Any, ...]]:
            key = tuple(row[p] for p in positions)
            return None if any(c is None for c in key) else key

        left = sorted(
            (row for row in self.outer.rows() if key_of(row, self.outer_keys)),
            key=lambda r: tuple(sort_key(r[p]) for p in self.outer_keys),
        )
        right = sorted(
            (row for row in self.inner.rows() if key_of(row, self.inner_keys)),
            key=lambda r: tuple(sort_key(r[p]) for p in self.inner_keys),
        )
        i = j = 0
        while i < len(left) and j < len(right):
            lkey = tuple(sort_key(left[i][p]) for p in self.outer_keys)
            rkey = tuple(sort_key(right[j][p]) for p in self.inner_keys)
            if lkey < rkey:
                i += 1
            elif rkey < lkey:
                j += 1
            else:
                # Gather the run of equal keys on both sides.
                i_end = i
                while i_end < len(left) and tuple(
                    sort_key(left[i_end][p]) for p in self.outer_keys
                ) == lkey:
                    i_end += 1
                j_end = j
                while j_end < len(right) and tuple(
                    sort_key(right[j_end][p]) for p in self.inner_keys
                ) == rkey:
                    j_end += 1
                for a in range(i, i_end):
                    for b in range(j, j_end):
                        yield left[a] + right[b]
                i, j = i_end, j_end

    def label(self) -> str:
        pairs = ", ".join(
            f"L[{o}]=R[{i}]" for o, i in zip(self.outer_keys, self.inner_keys)
        )
        return f"MergeJoin({pairs})"


class UnionAll(Operator):
    """Concatenate two inputs with identical arities."""

    def __init__(self, left: Operator, right: Operator) -> None:
        if len(left.layout) != len(right.layout):
            raise PlanError("UNION inputs must have the same arity")
        self.left = left
        self.right = right
        self.layout = left.layout

    def children(self) -> Tuple[Operator, ...]:
        return (self.left, self.right)

    def rows(self) -> Iterator[Row]:
        yield from self.left.rows()
        yield from self.right.rows()

    def rows_batched(self, batch_size: int = DEFAULT_BATCH_SIZE) -> Iterator[List[Row]]:
        yield from self.left.rows_batched(batch_size)
        yield from self.right.rows_batched(batch_size)


# ---------------------------------------------------------------------------
# Aggregation
# ---------------------------------------------------------------------------


class AggSpec:
    """One aggregate column: func in COUNT/SUM/AVG/MIN/MAX, arg may be None
    (COUNT(*)), output name, output type."""

    FUNCS = ("count", "sum", "avg", "min", "max")

    def __init__(
        self,
        func: str,
        arg: Optional[Expr],
        name: str,
        out_type: ColumnType,
        distinct: bool = False,
    ) -> None:
        func = func.lower()
        if func not in self.FUNCS:
            raise PlanError(f"unknown aggregate {func!r}")
        if func != "count" and arg is None:
            raise PlanError(f"{func.upper()} requires an argument")
        if distinct and arg is None:
            raise PlanError("COUNT(DISTINCT *) is not valid")
        self.func = func
        self.arg = arg
        self.name = name.lower()
        self.out_type = out_type
        self.distinct = distinct


class _AggState:
    """Accumulator for one aggregate within one group."""

    __slots__ = ("func", "count", "total", "best", "seen")

    def __init__(self, func: str, distinct: bool = False) -> None:
        self.func = func
        self.count = 0
        self.total: Any = None
        self.best: Any = None
        self.seen: Any = set() if distinct else None

    def add(self, value: Any) -> None:
        if self.seen is not None:
            if value is None or value in self.seen:
                return
            self.seen.add(value)
        if self.func == "count":
            # COUNT(*) passes a sentinel non-None; COUNT(x) skips NULLs.
            if value is not None:
                self.count += 1
            return
        if value is None:
            return
        self.count += 1
        if self.func in ("sum", "avg"):
            self.total = value if self.total is None else self.total + value
        elif self.func == "min":
            if self.best is None or sort_key(value) < sort_key(self.best):
                self.best = value
        elif self.func == "max":
            if self.best is None or sort_key(self.best) < sort_key(value):
                self.best = value

    def result(self) -> Any:
        if self.func == "count":
            return self.count
        if self.count == 0:
            return None
        if self.func == "sum":
            return self.total
        if self.func == "avg":
            return self.total / self.count
        return self.best


class Aggregate(Operator):
    """Hash aggregation with optional GROUP BY expressions.

    Output rows are: group-key columns first (in group_exprs order), then one
    column per AggSpec.  With no groups, exactly one row is produced even on
    empty input (SQL semantics).
    """

    def __init__(
        self,
        child: Operator,
        group_exprs: Sequence[Tuple[Expr, str, ColumnType]],
        aggregates: Sequence[AggSpec],
    ) -> None:
        self.child = child
        self.group_exprs = tuple(group_exprs)
        self.aggregates = tuple(aggregates)
        slots = [(None, name, ctype) for _e, name, ctype in self.group_exprs]
        slots += [(None, spec.name, spec.out_type) for spec in self.aggregates]
        if not slots:
            raise PlanError("aggregate with neither groups nor aggregates")
        self.layout = RowLayout(slots)
        self._compiled_key: Optional[Tuple[Callable[[Row], Row], bool]] = None
        self._compiled_args: Optional[List[Optional[Tuple[Callable[[Row], Any], bool]]]] = None

    def children(self) -> Tuple[Operator, ...]:
        return (self.child,)

    def _ensure_compiled(self) -> None:
        if self._compiled_key is None:
            self._compiled_key = exprcompile.compile_row_fn(
                [expr for expr, _n, _t in self.group_exprs]
            )
            self._compiled_args = [
                None if spec.arg is None else exprcompile.compile_expr(spec.arg)
                for spec in self.aggregates
            ]

    def rows_batched(self, batch_size: int = DEFAULT_BATCH_SIZE) -> Iterator[List[Row]]:
        specs = self.aggregates
        if not self.group_exprs and all(
            spec.func == "count" and spec.arg is None for spec in specs
        ):
            # Ungrouped COUNT(*): the batch sizes ARE the answer.
            total = 0
            for batch in self.child.rows_batched(batch_size):
                total += len(batch)
            yield [(total,) * len(specs)]
            return
        self._ensure_compiled()
        key_of = self._compiled_key[0]
        arg_fns = [
            None if compiled is None else compiled[0]
            for compiled in self._compiled_args
        ]
        groups: Dict[Tuple[Any, ...], List[_AggState]] = {}
        order: List[Tuple[Any, ...]] = []
        for batch in self.child.rows_batched(batch_size):
            for row in batch:
                key = key_of(row)
                states = groups.get(key)
                if states is None:
                    states = [_AggState(spec.func, spec.distinct) for spec in specs]
                    groups[key] = states
                    order.append(key)
                for arg_fn, state in zip(arg_fns, states):
                    if arg_fn is None:
                        state.add(True)  # COUNT(*)
                    else:
                        state.add(arg_fn(row))
        if not groups and not self.group_exprs:
            groups[()] = [_AggState(spec.func) for spec in specs]
            order.append(())
        result = [
            key + tuple(state.result() for state in groups[key]) for key in order
        ]
        for start in range(0, len(result), batch_size):
            yield result[start : start + batch_size]

    def compiled_status(self) -> Optional[str]:
        if not self.group_exprs and all(
            spec.func == "count" and spec.arg is None for spec in self.aggregates
        ):
            return "yes"  # runs as a pure batch-length sum
        self._ensure_compiled()
        ok = self._compiled_key[1] and all(
            compiled is None or compiled[1] for compiled in self._compiled_args
        )
        return "yes" if ok else "no"

    def rows(self) -> Iterator[Row]:
        groups: Dict[Tuple[Any, ...], List[_AggState]] = {}
        order: List[Tuple[Any, ...]] = []
        for row in self.child.rows():
            key = tuple(expr.eval(row) for expr, _n, _t in self.group_exprs)
            states = groups.get(key)
            if states is None:
                states = [_AggState(spec.func, spec.distinct) for spec in self.aggregates]
                groups[key] = states
                order.append(key)
            for spec, state in zip(self.aggregates, states):
                if spec.arg is None:
                    state.add(True)  # COUNT(*)
                else:
                    state.add(spec.arg.eval(row))
        if not groups and not self.group_exprs:
            groups[()] = [_AggState(spec.func) for spec in self.aggregates]
            order.append(())
        for key in order:
            yield key + tuple(state.result() for state in groups[key])

    def label(self) -> str:
        groups = ", ".join(n for _e, n, _t in self.group_exprs)
        aggs = ", ".join(f"{s.func}->{s.name}" for s in self.aggregates)
        return f"Aggregate(groups=[{groups}], aggs=[{aggs}])"
