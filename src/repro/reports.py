"""The report writer: formatted, paginated text reports from any relation.

Every 1983 forms system shipped with a report writer — the batch complement
to the interactive form.  A :class:`ReportSpec` names a source (table or
view), the columns to print, an optional group column with per-group
subtotals, and aggregate columns; :func:`run_report` renders the classic
line-printer layout: page headers, column rules, group breaks, subtotals,
and a grand-total line.

Example::

    spec = ReportSpec(
        title="Salaries by department",
        source="emp",
        columns=["name", "salary"],
        group_by="dept_id",
        totals=["salary"],
    )
    print(run_report(db, spec))
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import WowError
from repro.relational.database import Database
from repro.relational.types import ColumnType, format_value


@dataclass
class ReportSpec:
    """Declarative description of a report."""

    title: str
    source: str
    columns: List[str]
    group_by: Optional[str] = None
    totals: List[str] = field(default_factory=list)  # numeric columns to sum
    where: Optional[str] = None
    order_by: Optional[List[str]] = None
    page_length: int = 40  # body lines per page
    column_width: int = 14


def run_report(db: Database, spec: ReportSpec) -> str:
    """Render the report as a string of pages."""
    schema = db.catalog.schema_of(spec.source)
    for column in spec.columns + ([spec.group_by] if spec.group_by else []) + spec.totals:
        if not schema.has_column(column):
            raise WowError(f"{spec.source!r} has no column {column!r}")
    for column in spec.totals:
        if schema.column(column).ctype not in (ColumnType.INT, ColumnType.FLOAT):
            raise WowError(f"cannot total non-numeric column {column!r}")
        if column not in spec.columns:
            raise WowError(f"totalled column {column!r} must be printed")

    select_columns = list(spec.columns)
    if spec.group_by and spec.group_by not in select_columns:
        select_columns = [spec.group_by] + select_columns
    order = spec.order_by or ([spec.group_by] if spec.group_by else list(schema.primary_key))
    sql = f"SELECT {', '.join(select_columns)} FROM {spec.source}"
    if spec.where:
        sql += f" WHERE {spec.where}"
    if order:
        sql += " ORDER BY " + ", ".join(order)
    rows = db.query(sql)

    width = spec.column_width
    printed = spec.columns
    line_width = (width + 2) * len(printed) - 2

    def fmt_row(values: Sequence[Any]) -> str:
        return "  ".join(
            format_value(v)[:width].ljust(width) for v in values
        )

    header = fmt_row(printed)
    rule = "-" * line_width

    group_index = select_columns.index(spec.group_by) if spec.group_by else None
    printed_indexes = [select_columns.index(c) for c in printed]
    total_indexes = {c: select_columns.index(c) for c in spec.totals}
    total_positions = {c: printed.index(c) for c in spec.totals}

    pages: List[List[str]] = []
    body: List[str] = []

    def new_page() -> None:
        pages.append([])
        page = pages[-1]
        page.append(spec.title.center(line_width))
        page.append(f"page {len(pages)}".rjust(line_width))
        page.append(rule)
        page.append(header)
        page.append(rule)

    def emit(line: str) -> None:
        if not pages or len(pages[-1]) - 5 >= spec.page_length:
            new_page()
        pages[-1].append(line)

    def totals_line(label: str, sums: Dict[str, Any], count: int) -> str:
        cells = [""] * len(printed)
        cells[0] = f"{label} ({count})"
        for column, total in sums.items():
            cells[total_positions[column]] = format_value(total)
        return fmt_row(cells)

    grand: Dict[str, Any] = {c: 0 for c in spec.totals}
    grand_count = 0
    group_sums: Dict[str, Any] = {c: 0 for c in spec.totals}
    group_count = 0
    current_group: Any = object()  # sentinel: no group yet

    def close_group() -> None:
        nonlocal group_sums, group_count
        if spec.group_by and group_count:
            emit(rule)
            emit(totals_line("subtotal", group_sums, group_count))
            emit("")
        group_sums = {c: 0 for c in spec.totals}
        group_count = 0

    for row in rows:
        if spec.group_by is not None:
            group_value = row[group_index]
            if group_value != current_group:
                if group_count:
                    close_group()
                current_group = group_value
                emit(f"{spec.group_by} = {format_value(group_value)}")
        emit(fmt_row([row[i] for i in printed_indexes]))
        group_count += 1
        grand_count += 1
        for column, src in total_indexes.items():
            value = row[src]
            if value is not None:
                group_sums[column] += value
                grand[column] += value
    close_group()
    emit(rule)
    emit(totals_line("TOTAL", grand, grand_count))

    return "\n\f\n".join("\n".join(page) for page in pages) + "\n"
