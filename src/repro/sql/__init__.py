"""SQL front-end: lexer, parser, statement AST."""

from repro.sql.parser import parse_script, parse_statement

__all__ = ["parse_script", "parse_statement"]
