"""Statement-level AST for the SQL subset.

Scalar expressions reuse :mod:`repro.relational.expr` node types directly
(unbound: column references carry names, not positions).  This module adds
the statement shapes the parser produces and the planner consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence, Tuple

from repro.relational.expr import Expr
from repro.relational.schema import Column, ForeignKey


class Statement:
    """Base class for parsed statements."""


# -- queries -----------------------------------------------------------------


@dataclass
class SelectItem:
    """One item of a select list.

    ``star`` with ``qualifier=None`` is ``*``; with a qualifier it is
    ``alias.*``.  Otherwise ``expr`` (possibly an aggregate call represented
    as :class:`AggCall`) with an optional output alias.
    """

    star: bool = False
    qualifier: Optional[str] = None
    expr: Optional[Any] = None  # Expr or AggCall
    alias: Optional[str] = None


@dataclass
class AggCall:
    """An aggregate invocation in a select list or HAVING clause."""

    func: str  # count/sum/avg/min/max
    arg: Optional[Expr]  # None = COUNT(*)
    distinct: bool = False


@dataclass
class TableRef:
    """A named table or view, with an optional alias."""

    name: str
    alias: Optional[str] = None

    @property
    def binding_name(self) -> str:
        return (self.alias or self.name).lower()


@dataclass
class JoinClause:
    """One JOIN step: kind is 'inner', 'left', or 'cross'."""

    kind: str
    table: TableRef
    condition: Optional[Expr] = None


@dataclass
class OrderItem:
    """ORDER BY expr [ASC|DESC]."""

    expr: Expr
    ascending: bool = True


@dataclass
class Select(Statement):
    """A SELECT query (no subqueries; views provide composition)."""

    items: List[SelectItem]
    from_table: Optional[TableRef]
    joins: List[JoinClause] = field(default_factory=list)
    where: Optional[Expr] = None
    group_by: List[Expr] = field(default_factory=list)
    having: Optional[Any] = None  # Expr over group outputs / AggCall comparisons
    order_by: List[OrderItem] = field(default_factory=list)
    limit: Optional[int] = None
    offset: int = 0
    distinct: bool = False


@dataclass
class Union(Statement):
    """UNION [ALL] chain of selects; ORDER BY/LIMIT apply to the whole."""

    selects: List[Select]
    all_flags: List[bool]  # one per UNION operator (len = len(selects) - 1)
    order_by: List[OrderItem] = field(default_factory=list)
    limit: Optional[int] = None
    offset: int = 0


# -- DML -----------------------------------------------------------------


@dataclass
class Insert(Statement):
    table: str
    columns: Optional[List[str]]  # None = full-width positional
    rows: List[List[Expr]] = field(default_factory=list)  # VALUES form
    select: Optional[Select] = None  # INSERT ... SELECT form


@dataclass
class Update(Statement):
    table: str
    assignments: List[Tuple[str, Expr]]
    where: Optional[Expr] = None


@dataclass
class Delete(Statement):
    table: str
    where: Optional[Expr] = None


# -- DDL -----------------------------------------------------------------


@dataclass
class CreateTable(Statement):
    name: str
    columns: List[Column]
    primary_key: Optional[List[str]] = None
    unique: List[List[str]] = field(default_factory=list)
    foreign_keys: List[ForeignKey] = field(default_factory=list)
    checks: List[Expr] = field(default_factory=list)
    if_not_exists: bool = False


@dataclass
class DropTable(Statement):
    name: str
    if_exists: bool = False


@dataclass
class CreateIndex(Statement):
    name: str
    table: str
    columns: List[str]
    unique: bool = False
    kind: str = "btree"  # or 'hash'


@dataclass
class DropIndex(Statement):
    name: str
    table: str


@dataclass
class CreateView(Statement):
    name: str
    column_names: Optional[List[str]]
    query: Select
    check_option: bool = False


@dataclass
class DropView(Statement):
    name: str
    if_exists: bool = False


@dataclass
class AlterTable(Statement):
    """ALTER TABLE t ADD COLUMN col / DROP COLUMN col / RENAME TO new."""

    table: str
    action: str  # 'add' | 'drop' | 'rename'
    column: Optional[Column] = None  # for 'add'
    column_name: Optional[str] = None  # for 'drop'
    new_name: Optional[str] = None  # for 'rename'


# -- transactions & misc -------------------------------------------------


@dataclass
class Begin(Statement):
    pass


@dataclass
class Grant(Statement):
    privileges: List[str]  # 'SELECT', ... or ['ALL']
    object_name: str
    grantee: str


@dataclass
class Revoke(Statement):
    privileges: List[str]
    object_name: str
    grantee: str


@dataclass
class Savepoint(Statement):
    name: str


@dataclass
class RollbackTo(Statement):
    name: str


@dataclass
class ReleaseSavepoint(Statement):
    name: str


@dataclass
class Commit(Statement):
    pass


@dataclass
class Rollback(Statement):
    pass


@dataclass
class Explain(Statement):
    """EXPLAIN [ANALYZE] SELECT — with ANALYZE the query is executed and
    the plan is annotated with per-operator row counts and timings."""

    query: Select
    analyze: bool = False


@dataclass
class Analyze(Statement):
    """ANALYZE [table] — collect optimizer statistics."""

    table: Optional[str] = None
