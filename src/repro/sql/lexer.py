"""Hand-rolled SQL lexer.

Produces a flat list of :class:`Token`.  Keywords are recognised
case-insensitively and tokenized as KEYWORD with an upper-case value;
everything else alphanumeric is an IDENT (lower-cased).  String literals use
single quotes with ``''`` as the escape for a quote.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import LexError

KEYWORDS = frozenset(
    """
    SELECT FROM WHERE AND OR NOT NULL IS LIKE IN BETWEEN AS DISTINCT
    INSERT INTO VALUES UPDATE SET DELETE
    CREATE TABLE DROP VIEW INDEX UNIQUE PRIMARY KEY FOREIGN REFERENCES
    DEFAULT CHECK OPTION WITH USING IF EXISTS
    JOIN INNER LEFT OUTER CROSS ON
    GROUP BY HAVING ORDER ASC DESC LIMIT OFFSET
    BEGIN COMMIT ROLLBACK EXPLAIN SAVEPOINT TO RELEASE
    UNION ALL ALTER ADD COLUMN RENAME GRANT REVOKE ANALYZE
    CASE WHEN THEN ELSE END
    TRUE FALSE
    COUNT SUM AVG MIN MAX
    """.split()
)

#: Multi-character operators, longest first.
_OPERATORS = ("<=", ">=", "!=", "<>", "=", "<", ">", "+", "-", "*", "/", "%")
_PUNCT = "(),.;"


@dataclass(frozen=True)
class Token:
    kind: str  # KEYWORD, IDENT, INT, FLOAT, STRING, OP, PUNCT, PARAM, EOF
    value: str
    pos: int  # character offset, for error messages

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.kind}:{self.value}"


def tokenize(text: str) -> List[Token]:
    """Lex *text* into tokens ending with an EOF token."""
    tokens: List[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if text.startswith("--", i):
            newline = text.find("\n", i)
            i = n if newline == -1 else newline + 1
            continue
        if ch == "'":
            value, i = _lex_string(text, i)
            tokens.append(Token("STRING", value, i))
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            start = i
            while i < n and (text[i].isdigit() or text[i] == "."):
                i += 1
            # scientific notation
            if i < n and text[i] in "eE":
                j = i + 1
                if j < n and text[j] in "+-":
                    j += 1
                if j < n and text[j].isdigit():
                    i = j
                    while i < n and text[i].isdigit():
                        i += 1
            literal = text[start:i]
            if literal.count(".") > 1:
                raise LexError(f"bad number {literal!r} at {start}")
            kind = "FLOAT" if ("." in literal or "e" in literal or "E" in literal) else "INT"
            tokens.append(Token(kind, literal, start))
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (text[i].isalnum() or text[i] == "_"):
                i += 1
            word = text[start:i]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token("KEYWORD", upper, start))
            else:
                tokens.append(Token("IDENT", word.lower(), start))
            continue
        matched = False
        for op in _OPERATORS:
            if text.startswith(op, i):
                canonical = "!=" if op == "<>" else op
                tokens.append(Token("OP", canonical, i))
                i += len(op)
                matched = True
                break
        if matched:
            continue
        if ch in _PUNCT:
            tokens.append(Token("PUNCT", ch, i))
            i += 1
            continue
        if ch == "?":
            # Positional parameter marker for prepared statements.
            tokens.append(Token("PARAM", "?", i))
            i += 1
            continue
        raise LexError(f"unexpected character {ch!r} at position {i}")
    tokens.append(Token("EOF", "", n))
    return tokens


def _lex_string(text: str, i: int) -> tuple:
    """Lex a single-quoted string starting at *i*; returns (value, next_pos)."""
    assert text[i] == "'"
    i += 1
    out = []
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "'":
            if i + 1 < n and text[i + 1] == "'":
                out.append("'")
                i += 2
                continue
            return "".join(out), i + 1
        out.append(ch)
        i += 1
    raise LexError("unterminated string literal")
