"""Recursive-descent parser for the SQL subset.

Grammar highlights (see DESIGN.md S7):

* ``SELECT [DISTINCT] items FROM t [AS a] {[INNER|LEFT [OUTER]|CROSS] JOIN t
  [AS a] [ON expr]} [WHERE expr] [GROUP BY exprs] [HAVING expr]
  [ORDER BY expr [ASC|DESC], ...] [LIMIT n [OFFSET m]]``
* ``INSERT INTO t [(cols)] VALUES (lits), ...``
* ``UPDATE t SET c = expr, ... [WHERE expr]`` / ``DELETE FROM t [WHERE expr]``
* ``CREATE TABLE / CREATE [UNIQUE] INDEX ... [USING HASH|BTREE] /
  CREATE VIEW ... AS SELECT ... [WITH CHECK OPTION]`` and the DROPs
* ``BEGIN / COMMIT / ROLLBACK / EXPLAIN SELECT ...``

Aggregates (COUNT/SUM/AVG/MIN/MAX) are legal in select lists, HAVING, and
ORDER BY; inside HAVING/ORDER BY they appear as :class:`AggExpr` wrapper
nodes that the planner rewrites to references into the aggregate output.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

from repro.errors import ParseError
from repro.relational import expr as E
from repro.relational.schema import Column, ForeignKey
from repro.relational.types import ColumnType
from repro.sql import ast_nodes as A
from repro.sql.lexer import Token, tokenize


class AggExpr(E.Expr):
    """An aggregate call embedded in an expression (HAVING / ORDER BY).

    Never evaluated directly: the planner replaces it with a ColumnRef into
    the aggregate operator's output before binding.
    """

    __slots__ = ("call",)

    def __init__(self, call: A.AggCall) -> None:
        self.call = call

    def eval(self, row: Sequence[Any]) -> Any:  # pragma: no cover - planner bug
        raise RuntimeError("AggExpr must be planned away before evaluation")

    def children(self) -> Tuple[E.Expr, ...]:
        return ()

    def to_sql(self) -> str:
        arg = "*" if self.call.arg is None else self.call.arg.to_sql()
        prefix = "DISTINCT " if self.call.distinct else ""
        return f"{self.call.func.upper()}({prefix}{arg})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AggExpr):
            return NotImplemented
        return (
            other.call.func == self.call.func
            and other.call.arg == self.call.arg
            and other.call.distinct == self.call.distinct
        )

    def __hash__(self) -> int:
        return hash(("AggExpr", self.call.func, self.call.arg, self.call.distinct))


class SubqueryExpr(E.Expr):
    """An uncorrelated subquery in an expression: IN / EXISTS / scalar.

    Never evaluated directly: the planner materialises the subquery once
    and replaces this node with literals (uncorrelated-only semantics —
    correlated subqueries are outside the 1983 subset).
    """

    __slots__ = ("kind", "select", "operand", "negated")

    def __init__(
        self,
        kind: str,  # 'in' | 'exists' | 'scalar'
        select: "A.Select",
        operand: Optional[E.Expr] = None,
        negated: bool = False,
    ) -> None:
        self.kind = kind
        self.select = select
        self.operand = operand
        self.negated = negated

    def eval(self, row: Sequence[Any]) -> Any:  # pragma: no cover - planner bug
        raise RuntimeError("SubqueryExpr must be planned away before evaluation")

    def children(self) -> Tuple[E.Expr, ...]:
        return (self.operand,) if self.operand is not None else ()

    def to_sql(self) -> str:
        if self.kind == "exists":
            prefix = "NOT EXISTS" if self.negated else "EXISTS"
            return f"{prefix} (<subquery>)"
        if self.kind == "in":
            keyword = "NOT IN" if self.negated else "IN"
            return f"({self.operand.to_sql()} {keyword} (<subquery>))"
        return "(<scalar subquery>)"


_AGG_KEYWORDS = {"COUNT", "SUM", "AVG", "MIN", "MAX"}
_CMP_OPS = {"=", "!=", "<", "<=", ">", ">="}


def parse_statement(sql: str) -> A.Statement:
    """Parse exactly one statement (a trailing ';' is tolerated)."""
    statements = parse_script(sql)
    if len(statements) != 1:
        raise ParseError(f"expected one statement, got {len(statements)}")
    return statements[0]


def parse_prepared(sql: str) -> Tuple[A.Statement, List[E.Param]]:
    """Parse one statement, returning its ``?`` parameters in lexical order.

    The returned :class:`~repro.relational.expr.Param` nodes are the live
    objects embedded in the AST: assigning their values (via ``Param.set``)
    is how a prepared statement binds arguments before execution.
    """
    parser = _Parser(tokenize(sql))
    statement = parser.statement()
    while parser.accept_punct(";"):
        pass
    if not parser.at("EOF"):
        raise ParseError("expected one statement")
    return statement, parser.params


def parse_script(sql: str) -> List[A.Statement]:
    """Parse a ';'-separated sequence of statements."""
    parser = _Parser(tokenize(sql))
    statements: List[A.Statement] = []
    while not parser.at("EOF"):
        if parser.accept_punct(";"):
            continue
        statements.append(parser.statement())
    return statements


class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._pos = 0
        #: E.Param nodes in lexical order, one per `?` marker seen so far.
        self.params: List[E.Param] = []

    # -- token helpers ------------------------------------------------------

    def peek(self, ahead: int = 0) -> Token:
        return self._tokens[min(self._pos + ahead, len(self._tokens) - 1)]

    def advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind != "EOF":
            self._pos += 1
        return token

    def at(self, kind: str, value: Optional[str] = None) -> bool:
        token = self.peek()
        return token.kind == kind and (value is None or token.value == value)

    def at_keyword(self, *words: str) -> bool:
        token = self.peek()
        return token.kind == "KEYWORD" and token.value in words

    def accept_keyword(self, *words: str) -> Optional[str]:
        if self.at_keyword(*words):
            return self.advance().value
        return None

    def expect_keyword(self, word: str) -> None:
        if not self.accept_keyword(word):
            raise ParseError(f"expected {word} near {self._context()}")

    def accept_punct(self, punct: str) -> bool:
        if self.at("PUNCT", punct):
            self.advance()
            return True
        return False

    def expect_punct(self, punct: str) -> None:
        if not self.accept_punct(punct):
            raise ParseError(f"expected {punct!r} near {self._context()}")

    def expect_ident(self, what: str = "identifier") -> str:
        token = self.peek()
        if token.kind == "IDENT":
            return self.advance().value
        # Non-reserved use of keyword-looking names is not supported; tell
        # the user clearly instead of producing a confusing parse error.
        raise ParseError(f"expected {what} near {self._context()}")

    def _context(self) -> str:
        token = self.peek()
        return f"{token.kind}:{token.value!r} (offset {token.pos})"

    # -- statements -----------------------------------------------------------

    def statement(self) -> A.Statement:
        if self.at_keyword("SELECT"):
            return self.select_or_union()
        if self.at_keyword("INSERT"):
            return self.insert()
        if self.at_keyword("UPDATE"):
            return self.update()
        if self.at_keyword("DELETE"):
            return self.delete()
        if self.at_keyword("CREATE"):
            return self.create()
        if self.at_keyword("DROP"):
            return self.drop()
        if self.at_keyword("ALTER"):
            return self.alter()
        if self.at_keyword("GRANT") or self.at_keyword("REVOKE"):
            return self.grant_or_revoke()
        if self.accept_keyword("BEGIN"):
            return A.Begin()
        if self.accept_keyword("COMMIT"):
            return A.Commit()
        if self.accept_keyword("SAVEPOINT"):
            return A.Savepoint(self.expect_ident("savepoint name"))
        if self.accept_keyword("RELEASE"):
            self.accept_keyword("SAVEPOINT")
            return A.ReleaseSavepoint(self.expect_ident("savepoint name"))
        if self.accept_keyword("ROLLBACK"):
            if self.accept_keyword("TO"):
                self.accept_keyword("SAVEPOINT")
                return A.RollbackTo(self.expect_ident("savepoint name"))
            return A.Rollback()
        if self.accept_keyword("EXPLAIN"):
            analyze = bool(self.accept_keyword("ANALYZE"))
            return A.Explain(self.select(), analyze=analyze)
        if self.accept_keyword("ANALYZE"):
            table = self.advance().value if self.at("IDENT") else None
            return A.Analyze(table)
        raise ParseError(f"unexpected token {self._context()}")

    def select_or_union(self) -> A.Statement:
        """A SELECT, possibly extended into a UNION [ALL] chain."""
        first = self.select()
        if not self.at_keyword("UNION"):
            return first
        selects = [first]
        all_flags: List[bool] = []
        while self.accept_keyword("UNION"):
            all_flags.append(bool(self.accept_keyword("ALL")))
            selects.append(self.select())
        # ORDER BY / LIMIT written after the last arm apply to the union.
        last = selects[-1]
        order_by, limit, offset = last.order_by, last.limit, last.offset
        last.order_by, last.limit, last.offset = [], None, 0
        for arm in selects[:-1]:
            if arm.order_by or arm.limit is not None or arm.offset:
                raise ParseError(
                    "ORDER BY/LIMIT may only follow the last arm of a UNION"
                )
        return A.Union(
            selects=selects,
            all_flags=all_flags,
            order_by=order_by,
            limit=limit,
            offset=offset,
        )

    def grant_or_revoke(self) -> A.Statement:
        """GRANT privs ON obj TO user / REVOKE privs ON obj FROM user."""
        is_grant = bool(self.accept_keyword("GRANT"))
        if not is_grant:
            self.expect_keyword("REVOKE")
        privileges: List[str] = []
        if self.accept_keyword("ALL"):
            privileges.append("ALL")
        else:
            while True:
                token = self.peek()
                if token.kind == "KEYWORD" and token.value in (
                    "SELECT",
                    "INSERT",
                    "UPDATE",
                    "DELETE",
                ):
                    privileges.append(self.advance().value)
                else:
                    raise ParseError(
                        f"expected a privilege near {self._context()}"
                    )
                if not self.accept_punct(","):
                    break
        self.expect_keyword("ON")
        object_name = self.expect_ident("object name")
        if is_grant:
            self.expect_keyword("TO")
            grantee = self.expect_ident("user name")
            return A.Grant(privileges, object_name, grantee)
        self.expect_keyword("FROM")
        grantee = self.expect_ident("user name")
        return A.Revoke(privileges, object_name, grantee)

    def alter(self) -> A.AlterTable:
        self.expect_keyword("ALTER")
        self.expect_keyword("TABLE")
        table = self.expect_ident("table name")
        if self.accept_keyword("ADD"):
            self.accept_keyword("COLUMN")
            # Reuse the column-definition grammar (no inline PK/UNIQUE).
            self._inline_pk = None
            self._inline_unique = []
            column = self._column_def()
            if self._inline_pk or self._inline_unique:
                raise ParseError("ADD COLUMN cannot declare PRIMARY KEY/UNIQUE")
            return A.AlterTable(table=table, action="add", column=column)
        if self.accept_keyword("DROP"):
            self.accept_keyword("COLUMN")
            return A.AlterTable(
                table=table,
                action="drop",
                column_name=self.expect_ident("column name"),
            )
        if self.accept_keyword("RENAME"):
            self.expect_keyword("TO")
            return A.AlterTable(
                table=table, action="rename", new_name=self.expect_ident("new name")
            )
        raise ParseError(f"ALTER TABLE supports ADD/DROP/RENAME near {self._context()}")

    # -- SELECT -----------------------------------------------------------

    def select(self) -> A.Select:
        self.expect_keyword("SELECT")
        distinct = bool(self.accept_keyword("DISTINCT"))
        items = [self.select_item()]
        while self.accept_punct(","):
            items.append(self.select_item())
        from_table: Optional[A.TableRef] = None
        joins: List[A.JoinClause] = []
        if self.accept_keyword("FROM"):
            from_table = self.table_ref()
            while True:
                if self.accept_punct(","):
                    joins.append(A.JoinClause("cross", self.table_ref()))
                    continue
                kind = self._join_kind()
                if kind is None:
                    break
                table = self.table_ref()
                condition = None
                if kind != "cross":
                    self.expect_keyword("ON")
                    condition = self.expression()
                joins.append(A.JoinClause(kind, table, condition))
        where = self.expression() if self.accept_keyword("WHERE") else None
        group_by: List[E.Expr] = []
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            group_by.append(self.expression())
            while self.accept_punct(","):
                group_by.append(self.expression())
        having = (
            self.expression(allow_agg=True) if self.accept_keyword("HAVING") else None
        )
        order_by: List[A.OrderItem] = []
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            order_by.append(self.order_item())
            while self.accept_punct(","):
                order_by.append(self.order_item())
        limit: Optional[int] = None
        offset = 0
        if self.accept_keyword("LIMIT"):
            limit = self._int_literal("LIMIT")
            if self.accept_keyword("OFFSET"):
                offset = self._int_literal("OFFSET")
        return A.Select(
            items=items,
            from_table=from_table,
            joins=joins,
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=limit,
            offset=offset,
            distinct=distinct,
        )

    def _join_kind(self) -> Optional[str]:
        if self.accept_keyword("JOIN"):
            return "inner"
        if self.at_keyword("INNER") and self.peek(1).value == "JOIN":
            self.advance()
            self.advance()
            return "inner"
        if self.at_keyword("LEFT"):
            self.advance()
            self.accept_keyword("OUTER")
            self.expect_keyword("JOIN")
            return "left"
        if self.at_keyword("CROSS"):
            self.advance()
            self.expect_keyword("JOIN")
            return "cross"
        return None

    def select_item(self) -> A.SelectItem:
        if self.at("OP", "*"):
            self.advance()
            return A.SelectItem(star=True)
        if (
            self.at("IDENT")
            and self.peek(1).kind == "PUNCT"
            and self.peek(1).value == "."
            and self.peek(2).kind == "OP"
            and self.peek(2).value == "*"
        ):
            qualifier = self.advance().value
            self.advance()  # .
            self.advance()  # *
            return A.SelectItem(star=True, qualifier=qualifier)
        expr = self.expression(allow_agg=True)
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_ident("output alias")
        elif self.at("IDENT"):
            alias = self.advance().value
        if isinstance(expr, AggExpr):
            return A.SelectItem(expr=expr.call, alias=alias)
        return A.SelectItem(expr=expr, alias=alias)

    def table_ref(self) -> A.TableRef:
        name = self.expect_ident("table name")
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_ident("table alias")
        elif self.at("IDENT"):
            alias = self.advance().value
        return A.TableRef(name=name, alias=alias)

    def order_item(self) -> A.OrderItem:
        expr = self.expression(allow_agg=True)
        ascending = True
        if self.accept_keyword("DESC"):
            ascending = False
        else:
            self.accept_keyword("ASC")
        return A.OrderItem(expr=expr, ascending=ascending)

    def _int_literal(self, what: str) -> int:
        token = self.peek()
        if token.kind != "INT":
            raise ParseError(f"{what} requires an integer near {self._context()}")
        self.advance()
        return int(token.value)

    # -- DML ------------------------------------------------------------------

    def insert(self) -> A.Insert:
        self.expect_keyword("INSERT")
        self.expect_keyword("INTO")
        table = self.expect_ident("table name")
        columns: Optional[List[str]] = None
        if self.accept_punct("("):
            columns = [self.expect_ident("column name")]
            while self.accept_punct(","):
                columns.append(self.expect_ident("column name"))
            self.expect_punct(")")
        if self.at_keyword("SELECT"):
            return A.Insert(table=table, columns=columns, select=self.select())
        self.expect_keyword("VALUES")
        rows = [self._value_row()]
        while self.accept_punct(","):
            rows.append(self._value_row())
        return A.Insert(table=table, columns=columns, rows=rows)

    def _value_row(self) -> List[E.Expr]:
        self.expect_punct("(")
        values = [self.expression()]
        while self.accept_punct(","):
            values.append(self.expression())
        self.expect_punct(")")
        return values

    def update(self) -> A.Update:
        self.expect_keyword("UPDATE")
        table = self.expect_ident("table name")
        self.expect_keyword("SET")
        assignments = [self._assignment()]
        while self.accept_punct(","):
            assignments.append(self._assignment())
        where = self.expression() if self.accept_keyword("WHERE") else None
        return A.Update(table=table, assignments=assignments, where=where)

    def _assignment(self) -> Tuple[str, E.Expr]:
        column = self.expect_ident("column name")
        if not (self.at("OP", "=")):
            raise ParseError(f"expected '=' near {self._context()}")
        self.advance()
        return column, self.expression()

    def delete(self) -> A.Delete:
        self.expect_keyword("DELETE")
        self.expect_keyword("FROM")
        table = self.expect_ident("table name")
        where = self.expression() if self.accept_keyword("WHERE") else None
        return A.Delete(table=table, where=where)

    # -- DDL ------------------------------------------------------------------

    def create(self) -> A.Statement:
        self.expect_keyword("CREATE")
        if self.accept_keyword("TABLE"):
            return self._create_table()
        if self.at_keyword("UNIQUE") or self.at_keyword("INDEX"):
            return self._create_index()
        if self.accept_keyword("VIEW"):
            return self._create_view()
        raise ParseError(f"CREATE must be TABLE/INDEX/VIEW near {self._context()}")

    def _create_table(self) -> A.CreateTable:
        if_not_exists = False
        if self.accept_keyword("IF"):
            self.expect_keyword("NOT")
            self.expect_keyword("EXISTS")
            if_not_exists = True
        name = self.expect_ident("table name")
        self.expect_punct("(")
        columns: List[Column] = []
        primary_key: Optional[List[str]] = None
        unique: List[List[str]] = []
        foreign_keys: List[ForeignKey] = []
        checks: List[E.Expr] = []
        self._inline_pk: Optional[List[str]] = None
        self._inline_unique: List[str] = []
        while True:
            if self.accept_keyword("PRIMARY"):
                self.expect_keyword("KEY")
                if primary_key is not None:
                    raise ParseError("multiple PRIMARY KEY clauses")
                primary_key = self._column_name_list()
            elif self.accept_keyword("UNIQUE"):
                unique.append(self._column_name_list())
            elif self.accept_keyword("FOREIGN"):
                self.expect_keyword("KEY")
                local = self._column_name_list()
                self.expect_keyword("REFERENCES")
                parent = self.expect_ident("parent table")
                parent_cols = self._column_name_list()
                foreign_keys.append(
                    ForeignKey(tuple(local), parent, tuple(parent_cols))
                )
            elif self.accept_keyword("CHECK"):
                self.expect_punct("(")
                checks.append(self.expression())
                self.expect_punct(")")
            else:
                columns.append(self._column_def())
            if not self.accept_punct(","):
                break
        self.expect_punct(")")
        if self._inline_pk is not None:
            if primary_key is not None:
                raise ParseError("multiple PRIMARY KEY clauses")
            primary_key = self._inline_pk
        unique.extend([name] for name in self._inline_unique)
        return A.CreateTable(
            name=name,
            columns=columns,
            primary_key=primary_key,
            unique=unique,
            foreign_keys=foreign_keys,
            checks=checks,
            if_not_exists=if_not_exists,
        )

    def _column_def(self) -> Column:
        name = self.expect_ident("column name")
        type_token = self.peek()
        if type_token.kind not in ("IDENT", "KEYWORD"):
            raise ParseError(f"expected a type near {self._context()}")
        self.advance()
        ctype = ColumnType.from_name(type_token.value)
        nullable = True
        default = None
        primary_single = False
        while True:
            if self.accept_keyword("NOT"):
                self.expect_keyword("NULL")
                nullable = False
            elif self.accept_keyword("NULL"):
                nullable = True
            elif self.accept_keyword("DEFAULT"):
                literal = self.primary()
                if not isinstance(literal, E.Literal):
                    raise ParseError("DEFAULT requires a literal")
                default = literal.value
            elif self.accept_keyword("PRIMARY"):
                self.expect_keyword("KEY")
                primary_single = True
                nullable = False
            elif self.accept_keyword("UNIQUE"):
                self._inline_unique.append(name)
            else:
                break
        column = Column(name, ctype, nullable, default)
        if primary_single:
            if self._inline_pk is not None:
                raise ParseError("multiple PRIMARY KEY clauses")
            self._inline_pk = [name]
        return column

    def _column_name_list(self) -> List[str]:
        self.expect_punct("(")
        names = [self.expect_ident("column name")]
        while self.accept_punct(","):
            names.append(self.expect_ident("column name"))
        self.expect_punct(")")
        return names

    def _create_index(self) -> A.CreateIndex:
        unique = bool(self.accept_keyword("UNIQUE"))
        self.expect_keyword("INDEX")
        name = self.expect_ident("index name")
        self.expect_keyword("ON")
        table = self.expect_ident("table name")
        columns = self._column_name_list()
        kind = "btree"
        if self.accept_keyword("USING"):
            kind_token = self.advance()
            kind = kind_token.value.lower()
            if kind not in ("hash", "btree"):
                raise ParseError(f"USING must be HASH or BTREE, got {kind!r}")
        return A.CreateIndex(name=name, table=table, columns=columns, unique=unique, kind=kind)

    def _create_view(self) -> A.CreateView:
        name = self.expect_ident("view name")
        column_names = None
        if self.at("PUNCT", "("):
            column_names = self._column_name_list()
        self.expect_keyword("AS")
        query = self.select()
        check_option = False
        if self.accept_keyword("WITH"):
            self.expect_keyword("CHECK")
            self.expect_keyword("OPTION")
            check_option = True
        return A.CreateView(
            name=name, column_names=column_names, query=query, check_option=check_option
        )

    def drop(self) -> A.Statement:
        self.expect_keyword("DROP")
        if self.accept_keyword("TABLE"):
            if_exists = self._if_exists()
            return A.DropTable(self.expect_ident("table name"), if_exists)
        if self.accept_keyword("VIEW"):
            if_exists = self._if_exists()
            return A.DropView(self.expect_ident("view name"), if_exists)
        if self.accept_keyword("INDEX"):
            name = self.expect_ident("index name")
            self.expect_keyword("ON")
            table = self.expect_ident("table name")
            return A.DropIndex(name=name, table=table)
        raise ParseError(f"DROP must be TABLE/VIEW/INDEX near {self._context()}")

    def _if_exists(self) -> bool:
        if self.accept_keyword("IF"):
            self.expect_keyword("EXISTS")
            return True
        return False

    # -- expressions ------------------------------------------------------

    def expression(self, allow_agg: bool = False) -> E.Expr:
        return self._or_expr(allow_agg)

    def _or_expr(self, allow_agg: bool) -> E.Expr:
        left = self._and_expr(allow_agg)
        while self.accept_keyword("OR"):
            left = E.BinOp("or", left, self._and_expr(allow_agg))
        return left

    def _and_expr(self, allow_agg: bool) -> E.Expr:
        left = self._not_expr(allow_agg)
        while self.accept_keyword("AND"):
            left = E.BinOp("and", left, self._not_expr(allow_agg))
        return left

    def _not_expr(self, allow_agg: bool) -> E.Expr:
        if self.accept_keyword("NOT"):
            return E.UnaryOp("not", self._not_expr(allow_agg))
        return self._predicate(allow_agg)

    def _predicate(self, allow_agg: bool) -> E.Expr:
        left = self._additive(allow_agg)
        if self.at("OP") and self.peek().value in _CMP_OPS:
            op = self.advance().value
            return E.BinOp(op, left, self._additive(allow_agg))
        if self.accept_keyword("IS"):
            negated = bool(self.accept_keyword("NOT"))
            self.expect_keyword("NULL")
            return E.IsNull(left, negated)
        negated = bool(self.accept_keyword("NOT"))
        if self.accept_keyword("LIKE"):
            token = self.peek()
            if token.kind != "STRING":
                raise ParseError(f"LIKE requires a string near {self._context()}")
            self.advance()
            return E.Like(left, token.value, negated)
        if self.accept_keyword("IN"):
            self.expect_punct("(")
            if self.at_keyword("SELECT"):
                select = self.select()
                self.expect_punct(")")
                return SubqueryExpr("in", select, operand=left, negated=negated)
            items = [self.expression()]
            while self.accept_punct(","):
                items.append(self.expression())
            self.expect_punct(")")
            return E.InList(left, items, negated)
        if self.accept_keyword("BETWEEN"):
            low = self._additive(allow_agg)
            self.expect_keyword("AND")
            high = self._additive(allow_agg)
            between = E.BinOp(
                "and", E.BinOp(">=", left, low), E.BinOp("<=", left, high)
            )
            return E.UnaryOp("not", between) if negated else between
        if negated:
            raise ParseError(f"dangling NOT near {self._context()}")
        return left

    def _additive(self, allow_agg: bool) -> E.Expr:
        left = self._term(allow_agg)
        while self.at("OP") and self.peek().value in ("+", "-"):
            op = self.advance().value
            left = E.BinOp(op, left, self._term(allow_agg))
        return left

    def _term(self, allow_agg: bool) -> E.Expr:
        left = self._factor(allow_agg)
        while self.at("OP") and self.peek().value in ("*", "/", "%"):
            op = self.advance().value
            left = E.BinOp(op, left, self._factor(allow_agg))
        return left

    def _factor(self, allow_agg: bool) -> E.Expr:
        if self.at("OP", "-"):
            self.advance()
            operand = self._factor(allow_agg)
            # Fold negated numeric literals: -1 is a literal, not an op.
            if isinstance(operand, E.Literal) and isinstance(
                operand.value, (int, float)
            ) and not isinstance(operand.value, bool):
                return E.Literal(-operand.value)
            return E.UnaryOp("-", operand)
        return self.primary(allow_agg)

    def primary(self, allow_agg: bool = False) -> E.Expr:
        token = self.peek()
        if token.kind == "PARAM":
            self.advance()
            param = E.Param(len(self.params))
            self.params.append(param)
            return param
        if token.kind == "INT":
            self.advance()
            return E.Literal(int(token.value))
        if token.kind == "FLOAT":
            self.advance()
            return E.Literal(float(token.value))
        if token.kind == "STRING":
            self.advance()
            return E.Literal(token.value)
        if token.kind == "KEYWORD":
            if token.value == "NULL":
                self.advance()
                return E.Literal(None)
            if token.value == "TRUE":
                self.advance()
                return E.Literal(True)
            if token.value == "FALSE":
                self.advance()
                return E.Literal(False)
            if token.value in _AGG_KEYWORDS:
                if not allow_agg:
                    raise ParseError(
                        f"aggregate {token.value} not allowed here "
                        f"(offset {token.pos})"
                    )
                return self._agg_call()
        if token.kind == "KEYWORD" and token.value == "CASE":
            return self._case_expr(allow_agg)
        if token.kind == "KEYWORD" and token.value == "EXISTS":
            self.advance()
            self.expect_punct("(")
            select = self.select()
            self.expect_punct(")")
            return SubqueryExpr("exists", select)
        if token.kind == "PUNCT" and token.value == "(":
            self.advance()
            if self.at_keyword("SELECT"):
                select = self.select()
                self.expect_punct(")")
                return SubqueryExpr("scalar", select)
            inner = self.expression(allow_agg)
            self.expect_punct(")")
            return inner
        if token.kind == "IDENT":
            # function call?
            if self.peek(1).kind == "PUNCT" and self.peek(1).value == "(":
                func = self.advance().value
                self.advance()  # (
                args: List[E.Expr] = []
                if not self.at("PUNCT", ")"):
                    args.append(self.expression(allow_agg))
                    while self.accept_punct(","):
                        args.append(self.expression(allow_agg))
                self.expect_punct(")")
                try:
                    return E.FuncCall(func, args)
                except ValueError as exc:
                    raise ParseError(str(exc)) from exc
            name = self.advance().value
            if self.accept_punct("."):
                column = self.expect_ident("column name")
                return E.ColumnRef(column, qualifier=name)
            return E.ColumnRef(name)
        raise ParseError(f"unexpected token {self._context()}")

    def _case_expr(self, allow_agg: bool) -> E.Expr:
        """Searched or simple CASE; the simple form desugars to equalities."""
        self.expect_keyword("CASE")
        subject: Optional[E.Expr] = None
        if not self.at_keyword("WHEN"):
            subject = self.expression(allow_agg)
        branches = []
        while self.accept_keyword("WHEN"):
            condition = self.expression(allow_agg)
            if subject is not None:
                condition = E.BinOp("=", subject, condition)
            self.expect_keyword("THEN")
            result = self.expression(allow_agg)
            branches.append((condition, result))
        if not branches:
            raise ParseError(f"CASE needs at least one WHEN near {self._context()}")
        else_expr = None
        if self.accept_keyword("ELSE"):
            else_expr = self.expression(allow_agg)
        self.expect_keyword("END")
        return E.Case(branches, else_expr)

    def _agg_call(self) -> AggExpr:
        func = self.advance().value.lower()
        self.expect_punct("(")
        distinct = bool(self.accept_keyword("DISTINCT"))
        if self.at("OP", "*"):
            self.advance()
            if func != "count":
                raise ParseError(f"{func.upper()}(*) is not valid")
            arg: Optional[E.Expr] = None
        else:
            arg = self.expression()
        self.expect_punct(")")
        return AggExpr(A.AggCall(func=func, arg=arg, distinct=distinct))
