"""The record-at-a-time dump browser: the pre-forms baseline.

This models how users inspected relations before forms interfaces: a
sequential browser that prints one record as a field dump and accepts
single-letter commands.  Command language (each command ends with ENTER)::

    n / p          next / previous record
    f / l          first / last record
    /col=value     linear search forward for the next matching record
    u col=value    update one field of the current record
    i c=v,c=v,...  insert a record
    x              delete the current record
    q col op value filter the rowset (op in = != < <= > >=), like a
                   poor man's range query; 'q' alone clears the filter

Keystrokes = characters typed + ENTER per command.  Output = characters of
each record dump printed after every command (sequential browsing pays to
re-print the record every step — precisely what windows+forms avoided).
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from repro.errors import WowError
from repro.metrics import KeystrokeMeter
from repro.relational import expr as E
from repro.relational.database import Database
from repro.relational.types import format_value, parse_input


class DumpBrowser:
    """A metered sequential record browser over one table or view."""

    def __init__(self, db: Database, source: str) -> None:
        self.db = db
        self.source = source
        self.schema = db.catalog.schema_of(source)
        self.keys = KeystrokeMeter()
        self.output_chars = 0
        self.position = 0
        self.filter: Optional[E.Expr] = None
        self.rows: List[Tuple[Any, ...]] = []
        self.message = ""
        self._requery()

    # -- the command interface ---------------------------------------------

    def command(self, text: str) -> None:
        """Run one command, metering its keystrokes and output."""
        self.keys.record(len(text) + 1)  # + ENTER
        self.message = ""
        try:
            self._run(text.strip())
        except WowError as exc:
            # Every engine error derives from WowError; anything else —
            # including InjectedCrash/KeyboardInterrupt — propagates.
            self.message = f"error: {exc}"
        self._emit(self.render_current())

    def _run(self, text: str) -> None:
        if text == "n":
            self.position = min(self.position + 1, max(0, len(self.rows) - 1))
        elif text == "p":
            self.position = max(self.position - 1, 0)
        elif text == "f":
            self.position = 0
        elif text == "l":
            self.position = max(0, len(self.rows) - 1)
        elif text.startswith("/"):
            self._search(text[1:])
        elif text.startswith("u "):
            self._update(text[2:])
        elif text.startswith("i "):
            self._insert(text[2:])
        elif text == "x":
            self._delete()
        elif text == "q":
            self.filter = None
            self._requery()
        elif text.startswith("q "):
            self._filter(text[2:])
        else:
            raise WowError(f"unknown command {text!r}")

    # -- command bodies --------------------------------------------------

    def _search(self, spec: str) -> None:
        column, _eq, raw = spec.partition("=")
        if not _eq:
            raise WowError("search is /column=value")
        value = self._typed(column, raw)
        col_index = self.schema.column_index(column)
        for offset in range(1, len(self.rows) + 1):
            index = (self.position + offset) % len(self.rows) if self.rows else 0
            if self.rows and self.rows[index][col_index] == value:
                self.position = index
                return
        self.message = "not found"

    def _update(self, spec: str) -> None:
        column, _eq, raw = spec.partition("=")
        if not _eq:
            raise WowError("update is u column=value")
        row = self.current_row()
        if row is None:
            raise WowError("no current record")
        self.db.update(
            self.source,
            {column.strip(): self._typed(column, raw)},
            self._identify(row),
        )
        self._requery()

    def _insert(self, spec: str) -> None:
        values = {}
        for part in spec.split(","):
            column, _eq, raw = part.partition("=")
            if not _eq:
                raise WowError("insert is i col=v,col=v")
            values[column.strip()] = self._typed(column, raw)
        self.db.insert(self.source, values)
        self._requery()

    def _delete(self) -> None:
        row = self.current_row()
        if row is None:
            raise WowError("no current record")
        self.db.delete(self.source, self._identify(row))
        self._requery()
        self.position = min(self.position, max(0, len(self.rows) - 1))

    def _filter(self, spec: str) -> None:
        parts = spec.split(None, 2)
        if len(parts) != 3 or parts[1] not in ("=", "!=", "<", "<=", ">", ">="):
            raise WowError("filter is q column op value")
        column, op, raw = parts
        self.filter = E.BinOp(
            op, E.ColumnRef(column.lower()), E.Literal(self._typed(column, raw))
        )
        self._requery()
        self.position = 0

    # -- helpers ------------------------------------------------------------

    def _typed(self, column: str, raw: str) -> Any:
        ctype = self.schema.column(column.strip()).ctype
        return parse_input(raw.strip(), ctype)

    def _identify(self, row: Tuple[Any, ...]) -> E.Expr:
        key_columns = self.schema.primary_key or self.schema.column_names
        conjuncts: List[E.Expr] = []
        for column in key_columns:
            value = row[self.schema.column_index(column)]
            ref = E.ColumnRef(column)
            conjuncts.append(
                E.IsNull(ref) if value is None else E.BinOp("=", ref, E.Literal(value))
            )
        return E.conjoin(conjuncts)

    def _requery(self) -> None:
        sql = f"SELECT * FROM {self.source}"
        if self.filter is not None:
            sql += f" WHERE {self.filter.to_sql()}"
        if self.schema.primary_key:
            sql += " ORDER BY " + ", ".join(self.schema.primary_key)
        self.rows = self.db.query(sql)
        self.position = min(self.position, max(0, len(self.rows) - 1))

    def current_row(self) -> Optional[Tuple[Any, ...]]:
        if not self.rows:
            return None
        return self.rows[self.position]

    def render_current(self) -> str:
        """The record dump printed after every command."""
        row = self.current_row()
        lines = [f"-- {self.source} record {self.position + 1} of {len(self.rows)} --"]
        if row is None:
            lines.append("(empty)")
        else:
            for column, value in zip(self.schema.column_names, row):
                lines.append(f"{column:>16}: {format_value(value)}")
        if self.message:
            lines.append(self.message)
        return "\n".join(lines) + "\n"

    def _emit(self, text: str) -> None:
        self.output_chars += len(text)
