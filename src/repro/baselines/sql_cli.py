"""The raw-SQL line-mode baseline.

The user types a SQL statement character by character and presses ENTER;
the monitor executes it and prints the result table.  Keystroke cost of a
task = characters typed + the ENTER; output cost = characters printed.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import WowError
from repro.metrics import KeystrokeMeter
from repro.relational.database import Database, Result
from repro.relational.types import format_value


class SqlCli:
    """A deterministic, metered SQL command line."""

    def __init__(self, db: Database) -> None:
        self.db = db
        self.keys = KeystrokeMeter()
        self.output_chars = 0
        self.history: List[str] = []
        self.last_result: Optional[Result] = None
        self.last_error: Optional[str] = None

    def run(self, sql: str) -> Optional[Result]:
        """Type *sql* (one keystroke per character), press ENTER, execute."""
        self.keys.record(len(sql) + 1)  # + ENTER
        self.history.append(sql)
        self.last_error = None
        try:
            self.last_result = self.db.execute(sql)
        except WowError as exc:
            # Engine errors become monitor messages; anything else —
            # including InjectedCrash/KeyboardInterrupt — propagates.
            self.last_result = None
            self.last_error = f"{type(exc).__name__}: {exc}"
            self._emit(self.last_error + "\n")
            return None
        self._emit(self.render_result(self.last_result))
        return self.last_result

    def render_result(self, result: Result) -> str:
        """Format a result the way a 1983 monitor printed it."""
        if result.plan is not None:
            return result.plan + "\n"
        if not result.columns:
            return f"({result.rowcount} rows affected)\n"
        widths = [len(c) for c in result.columns]
        rendered_rows = []
        for row in result.rows:
            rendered = [format_value(v) for v in row]
            rendered_rows.append(rendered)
            for index, text in enumerate(rendered):
                widths[index] = max(widths[index], len(text))
        lines = [
            " | ".join(c.ljust(w) for c, w in zip(result.columns, widths)),
            "-+-".join("-" * w for w in widths),
        ]
        for rendered in rendered_rows:
            lines.append(" | ".join(t.ljust(w) for t, w in zip(rendered, widths)))
        lines.append(f"({len(result.rows)} rows)")
        return "\n".join(lines) + "\n"

    def _emit(self, text: str) -> None:
        self.output_chars += len(text)
