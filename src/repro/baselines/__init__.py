"""Baseline interfaces the paper's design is compared against.

* :class:`SqlCli` — a line-mode SQL monitor (what a 1983 DBA had);
* :class:`DumpBrowser` — a record-at-a-time dump browser (pre-forms UI).

Both count keystrokes through :class:`repro.metrics.KeystrokeMeter` and
count output characters, so interaction-cost tables compare like with like.
"""

from repro.baselines.dump_browser import DumpBrowser
from repro.baselines.sql_cli import SqlCli

__all__ = ["DumpBrowser", "SqlCli"]
