"""Exception hierarchy for the WoW reproduction.

Every layer of the system raises a subclass of :class:`WowError`, so callers
can catch a single base class at the application boundary while tests can
assert on precise failure modes.
"""

from __future__ import annotations


class WowError(Exception):
    """Base class for every error raised by this package."""

    #: overridden to True by :class:`RetryableError` failures; uniform here
    #: so clients and the wire protocol can always ask ``exc.retryable``
    retryable = False


# ---------------------------------------------------------------------------
# Relational engine
# ---------------------------------------------------------------------------

class DatabaseError(WowError):
    """Base class for errors raised by the relational engine."""


class TypeMismatchError(DatabaseError):
    """A value could not be coerced to its column's declared type."""


class SchemaError(DatabaseError):
    """Invalid schema definition (duplicate column, unknown type, ...)."""


class CatalogError(DatabaseError):
    """Catalog-level failure: unknown or duplicate table/view/index/form."""


class ConstraintError(DatabaseError):
    """A NOT NULL, UNIQUE, primary-key, or check constraint was violated."""


class ForeignKeyError(ConstraintError):
    """A referential-integrity constraint was violated."""


class CheckConstraintError(ConstraintError):
    """A table-level CHECK constraint rejected a row."""


class StorageError(DatabaseError):
    """Low-level storage failure (bad page, torn file, missing heap)."""


class WalCorruptionError(StorageError):
    """The WAL holds records proven invalid (bad CRC, garbage mid-log)."""


class ReadOnlyError(DatabaseError):
    """A write was attempted while the database is degraded to read-only."""


class TransactionError(DatabaseError):
    """Illegal transaction state transition (commit without begin, ...)."""


# ---------------------------------------------------------------------------
# Sessions & concurrency control
# ---------------------------------------------------------------------------

class RetryableError:
    """Mixin marking an error safe to retry from the top of the transaction.

    The client-side retry wrapper (:meth:`repro.session.manager.Session.
    execute`) and the wire protocol both key off this: a retryable failure
    left no partial effects behind (the victim transaction was fully rolled
    back, or never admitted), so re-running the whole unit is sound.
    """

    retryable = True


class SessionError(DatabaseError):
    """Base class for session-layer failures (bad state, closed session)."""


class SerializationError(RetryableError, SessionError):
    """This transaction was aborted as a deadlock victim; retry it."""


class LockTimeoutError(RetryableError, SessionError):
    """A lock wait exceeded ``lock_timeout``; the transaction was aborted."""


class BusyError(RetryableError, SessionError):
    """Admission control refused a new session: the server is at capacity."""


class StatementTimeoutError(SessionError):
    """A statement exceeded its row budget and was cancelled.

    Deliberately *not* retryable: re-running the same statement against the
    same data would blow the same budget; the client must raise the budget
    or narrow the statement.
    """


class LockDisciplineError(SessionError):
    """The opt-in dynamic lock checker (``WOW_LOCK_CHECK=1``) observed an
    acquisition that violates the engine's locking discipline — a table
    lock requested under the engine latch, a lockset acquired out of
    order, or an inversion against the observed lock-order graph.

    Deliberately *not* retryable: the bug is in the code path, not the
    interleaving; retrying would re-run the same illegal acquisition.
    """


class SqlError(DatabaseError):
    """Base class for SQL front-end failures."""


class LexError(SqlError):
    """The SQL lexer met a character sequence it cannot tokenize."""


class ParseError(SqlError):
    """The SQL parser met an unexpected token."""


class BindError(SqlError):
    """Name resolution failed: unknown table, column, or ambiguous name."""


class PlanError(DatabaseError):
    """The planner could not produce a physical plan for a valid query."""


class ExecutionError(DatabaseError):
    """Runtime failure while executing a plan (division by zero, ...)."""


# ---------------------------------------------------------------------------
# Views
# ---------------------------------------------------------------------------

class ViewError(DatabaseError):
    """Base class for view-machinery failures."""


class ViewNotUpdatable(ViewError):
    """DML was attempted through a view outside the updatable subset."""


class CheckOptionError(ViewError):
    """A WITH CHECK OPTION view rejected a row that would escape the view."""


# ---------------------------------------------------------------------------
# Windowing substrate
# ---------------------------------------------------------------------------

class WindowError(WowError):
    """Base class for windowing-substrate failures."""


class GeometryError(WindowError):
    """A window or widget was given an impossible rectangle."""


class FocusError(WindowError):
    """Focus was requested for a window/widget that cannot take it."""


# ---------------------------------------------------------------------------
# Forms
# ---------------------------------------------------------------------------

class FormError(WowError):
    """Base class for forms-runtime failures."""


class FormSpecError(FormError):
    """A form specification is internally inconsistent."""


class FieldValidationError(FormError):
    """User input in a field failed validation against its column type."""


class FormModeError(FormError):
    """An operation was attempted in the wrong form mode."""
