"""Zero-dependency span tracer with a thread-local span stack.

``Tracer.span(name)`` is a context manager.  The *stack* of active spans
is module-level and thread-local, shared by **all** tracer instances in
the process — so a ``db.execute`` span started by the database tracer
correctly nests under a ``form.save`` span started by the forms layer,
even though each layer holds its own ``Tracer``.  What stays per-tracer
is where finished spans go: each tracer keeps its own ring of recent
spans, reports durations into its registry (as ``span.<name>``
histograms), and optionally feeds a :class:`~repro.obs.slowlog.SlowLog`.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional

from .registry import Registry
from .slowlog import SlowLog

_stack_local = threading.local()


def _stack() -> List["Span"]:
    stack = getattr(_stack_local, "spans", None)
    if stack is None:
        stack = _stack_local.spans = []
    return stack


def current_span() -> Optional["Span"]:
    """The innermost active span on this thread, if any."""
    stack = _stack()
    return stack[-1] if stack else None


class Span:
    """One timed operation.  ``path`` is the dotted chain of ancestors."""

    __slots__ = ("name", "tags", "path", "depth", "start", "duration_ms")

    def __init__(self, name: str, tags: Optional[Dict[str, Any]], path: str, depth: int) -> None:
        self.name = name
        self.tags: Dict[str, Any] = tags if tags is not None else {}
        self.path = path
        self.depth = depth
        self.start = 0.0
        self.duration_ms = 0.0

    def tag(self, key: str, value: Any) -> None:
        self.tags[key] = value

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "path": self.path,
            "depth": self.depth,
            "duration_ms": self.duration_ms,
            "tags": dict(self.tags),
        }


class _SpanContext:
    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        _stack().append(self.span)
        self.span.start = time.perf_counter()
        return self.span

    def __exit__(self, exc_type, exc, tb) -> None:
        span = self.span
        span.duration_ms = (time.perf_counter() - span.start) * 1000.0
        stack = _stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # defensive: unwound out of order
            stack.remove(span)
        if exc_type is not None:
            span.tags["error"] = exc_type.__name__
        self._tracer._finish(span)


class _NullSpanContext:
    """Returned while tracing is disabled; still usable as a span."""

    __slots__ = ("span",)

    def __init__(self) -> None:
        self.span = Span("disabled", None, "disabled", 0)

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


class Tracer:
    """Hands out spans; keeps a ring of finished ones; feeds a slow log."""

    def __init__(
        self,
        registry: Optional[Registry] = None,
        slow_log: Optional[SlowLog] = None,
        keep: int = 256,
    ) -> None:
        self.registry = registry
        self.slow_log = slow_log
        self.enabled = True
        self.finished: Deque[Span] = deque(maxlen=keep)

    def span(self, name: str, tags: Optional[Dict[str, Any]] = None):
        """Context manager timing one operation; yields the :class:`Span`."""
        if not self.enabled:
            return _NullSpanContext()
        parent = current_span()
        path = f"{parent.path}/{name}" if parent is not None else name
        depth = parent.depth + 1 if parent is not None else 0
        return _SpanContext(self, Span(name, tags, path, depth))

    def _finish(self, span: Span) -> None:
        self.finished.append(span)
        if self.registry is not None and self.registry.enabled:
            self.registry.histogram(f"span.{span.name}").observe(span.duration_ms)
        if self.slow_log is not None:
            self.slow_log.record(span.path, span.duration_ms, span.tags)

    def recent(self) -> List[Dict[str, Any]]:
        """Finished spans oldest-first as JSON-serialisable dicts."""
        return [span.to_dict() for span in self.finished]
