"""Metrics exporters: Prometheus text format and JSON.

The registry's :meth:`~repro.obs.registry.Registry.snapshot` is already
JSON; this module renders the same snapshot in the Prometheus text
exposition format (v0.0.4) so an external scraper — or a human with
``curl`` once the ROADMAP item-1 server exists — can read the engine's
counters without any new dependency.

Names are sanitised to the Prometheus grammar (``[a-zA-Z_:][a-zA-Z0-9_:]*``)
and prefixed ``wow_``; dotted metric paths become underscores
(``pager.page_reads`` → ``wow_pager_page_reads``).  Histograms export as
summaries: ``_count``, ``_sum``, and ``quantile``-labelled samples.
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, List, Optional

_NAME_PREFIX = "wow_"
_BAD_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    sanitized = _BAD_CHARS.sub("_", name)
    if not sanitized or not (sanitized[0].isalpha() or sanitized[0] in "_:"):
        sanitized = "_" + sanitized
    return _NAME_PREFIX + sanitized


def _prom_value(value: Optional[float]) -> str:
    if value is None:
        return "NaN"
    return repr(float(value))


def prometheus_text(snapshot: Dict[str, Any]) -> str:
    """Render a :meth:`Registry.snapshot` dict as Prometheus text."""
    lines: List[str] = []
    for name, value in snapshot.get("counters", {}).items():
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} counter")
        lines.append(f"{prom} {_prom_value(value)}")
    for name, value in snapshot.get("gauges", {}).items():
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom} {_prom_value(value)}")
    for name, summary in snapshot.get("histograms", {}).items():
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} summary")
        for q, key in (("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99")):
            lines.append(
                f'{prom}{{quantile="{q}"}} {_prom_value(summary.get(key))}'
            )
        lines.append(f"{prom}_sum {_prom_value(summary.get('total'))}")
        lines.append(f"{prom}_count {_prom_value(summary.get('count'))}")
    return "\n".join(lines) + ("\n" if lines else "")


def json_text(snapshot: Dict[str, Any], indent: Optional[int] = None) -> str:
    """The snapshot as JSON (same content, different consumer)."""
    return json.dumps(snapshot, indent=indent)
