"""The metrics registry: named counters, gauges, and histograms.

Design rules (see docs/INTERNALS.md §Observability):

* **Zero dependencies** — everything here is stdlib-only and in-process.
* **Pay for what you use** — a disabled registry hands out shared no-op
  instruments and short-circuits :meth:`Registry.add` /
  :meth:`Registry.observe` on a single attribute test, so instrumented
  call sites cost one branch when observability is off.
* **JSON all the way down** — :meth:`Registry.snapshot` returns plain
  dicts/lists/numbers, so ``json.dumps`` always succeeds on it.

Metric names are dotted paths (``pager.page_reads``, ``span.db.execute``);
the registry imposes no hierarchy beyond the convention.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from typing import Any, Deque, Dict, List, Optional

#: ring size for histogram percentile windows (recent samples)
_HISTOGRAM_WINDOW = 1024


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A value that goes up and down (pool sizes, open windows, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float = 1.0) -> None:
        self.value += delta


class Histogram:
    """Streaming summary of observed values with windowed percentiles.

    Count/total/min/max cover the full stream; percentiles are computed
    over a ring of the most recent ``_HISTOGRAM_WINDOW`` samples, which is
    exact for short runs and a recency-weighted estimate for long ones.
    """

    __slots__ = ("name", "count", "total", "min", "max", "_window")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._window: Deque[float] = deque(maxlen=_HISTOGRAM_WINDOW)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        self._window.append(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> Optional[float]:
        """The *q*-th percentile (0..100) of the recent-sample window."""
        if not self._window:
            return None
        ordered = sorted(self._window)
        if len(ordered) == 1:
            return ordered[0]
        rank = (q / 100.0) * (len(ordered) - 1)
        low = int(rank)
        high = min(low + 1, len(ordered) - 1)
        fraction = rank - low
        return ordered[low] * (1.0 - fraction) + ordered[high] * fraction

    def summary(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }


class _NullCounter(Counter):
    """Shared no-op counter handed out by disabled registries."""

    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def add(self, delta: float = 1.0) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


NULL_COUNTER = _NullCounter("null")
NULL_GAUGE = _NullGauge("null")
NULL_HISTOGRAM = _NullHistogram("null")


class Registry:
    """A namespace of metrics instruments, snapshottable as JSON.

    Instrument factories (:meth:`counter` & co.) return live instruments
    while the registry is enabled and shared no-ops while it is disabled —
    so components that cache an instrument at construction time pay nothing
    per operation when observability was off at construction.  The
    name-keyed helpers :meth:`add` and :meth:`observe` re-check ``enabled``
    on every call and are the right choice for code that must honour
    runtime toggling.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._lock = threading.Lock()

    # -- toggling ----------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    # -- instrument factories ---------------------------------------------

    def counter(self, name: str) -> Counter:
        if not self.enabled:
            return NULL_COUNTER
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        if not self.enabled:
            return NULL_GAUGE
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        if not self.enabled:
            return NULL_HISTOGRAM
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram(name)
        return instrument

    # -- one-shot helpers ---------------------------------------------------

    def add(self, name: str, amount: int = 1) -> None:
        """Increment counter *name* (no-op while disabled)."""
        if self.enabled:
            self.counter(name).inc(amount)

    def observe(self, name: str, value: float) -> None:
        """Record *value* into histogram *name* (no-op while disabled)."""
        if self.enabled:
            self.histogram(name).observe(value)

    # -- export -------------------------------------------------------------

    def counter_value(self, name: str) -> int:
        instrument = self._counters.get(name)
        return instrument.value if instrument is not None else 0

    def snapshot(self) -> Dict[str, Any]:
        """All instruments as a JSON-serialisable dict."""
        with self._lock:
            return {
                "enabled": self.enabled,
                "counters": {n: c.value for n, c in sorted(self._counters.items())},
                "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
                "histograms": {
                    n: h.summary() for n, h in sorted(self._histograms.items())
                },
            }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.snapshot(), indent=indent)

    def to_prometheus(self) -> str:
        """The registry in Prometheus text exposition format."""
        from repro.obs.exporter import prometheus_text

        return prometheus_text(self.snapshot())

    def reset(self) -> None:
        """Forget every instrument (tests and benchmark iterations)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


# -- process-wide default registry ------------------------------------------

_default_registry = Registry(enabled=True)


def get_registry() -> Registry:
    """The process-wide default registry (shared by UI-layer components)."""
    return _default_registry


def set_registry(registry: Registry) -> Registry:
    """Swap the default registry; returns the previous one (for tests)."""
    global _default_registry
    previous = _default_registry
    _default_registry = registry
    return previous


def set_enabled(flag: bool) -> None:
    """Toggle the default registry."""
    _default_registry.enabled = flag
