"""EXPLAIN ANALYZE support: per-operator runtime counters.

:func:`instrument` walks an operator tree and wraps each node's ``rows()``
and ``rows_batched()`` with counting/timing generators (instance-attribute
assignment — operator classes have no ``__slots__``).  The wrappers only
exist on trees that are being ANALYZEd, so the normal execution path pays
nothing.

Timings are *inclusive*: an operator's elapsed time includes its children,
matching PostgreSQL's EXPLAIN ANALYZE convention.  ``loops`` counts how
many times ``rows()`` was restarted (e.g. the inner side of a nested-loop
join before materialisation, or a re-executed view).  Under vectorized
execution ``batches`` counts emitted batches; operators without a native
batch path (served by the base-class adapter over ``rows()``) count their
rows through the ``rows()`` wrapper and only the batch chunking here, so
nothing is double-counted.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.relational.algebra import DEFAULT_BATCH_SIZE, Operator


class OpStats:
    """Runtime counters for one operator node.

    ``est_rows`` is the planner's cardinality estimate, copied off the
    operator at instrumentation time so estimated-vs-actual comparisons
    (EXPLAIN ANALYZE, the statement log's ``_plan_stats`` feedback) read
    from one place.
    """

    __slots__ = ("rows_out", "elapsed", "loops", "batches", "est_rows")

    def __init__(self, est_rows: Optional[float] = None) -> None:
        self.rows_out = 0
        self.elapsed = 0.0  # seconds, inclusive of children
        self.loops = 0
        self.batches = 0
        self.est_rows = est_rows

    @property
    def misestimate(self) -> Optional[float]:
        """``max(est/act, act/est)`` with both sides floored at one row."""
        from repro.obs.statlog import misestimate_factor

        return misestimate_factor(self.est_rows, self.rows_out)

    def to_dict(self) -> Dict[str, Any]:
        out = {
            "rows": self.rows_out,
            "loops": self.loops,
            "batches": self.batches,
            "time_ms": self.elapsed * 1000.0,
        }
        if self.est_rows is not None:
            out["est_rows"] = self.est_rows
            out["misestimate"] = self.misestimate
        return out


def instrument(root: Operator) -> Dict[int, OpStats]:
    """Attach counting wrappers to every node of *root*'s tree.

    Returns ``{id(op): OpStats}``; stats fill in as the tree is consumed.
    """
    stats: Dict[int, OpStats] = {}

    def wrap(op: Operator) -> None:
        op_stats = stats[id(op)] = OpStats(
            est_rows=None if op.est_rows is None else float(op.est_rows)
        )
        original_rows = op.rows
        original_batched = op.rows_batched
        native_batched = type(op).rows_batched is not Operator.rows_batched

        def counted_rows() -> Iterator[Tuple[Any, ...]]:
            op_stats.loops += 1
            start = time.perf_counter()
            try:
                for row in original_rows():
                    op_stats.elapsed += time.perf_counter() - start
                    op_stats.rows_out += 1
                    yield row
                    start = time.perf_counter()
            finally:
                op_stats.elapsed += time.perf_counter() - start

        def counted_batches(
            batch_size: int = DEFAULT_BATCH_SIZE,
        ) -> Iterator[List[Tuple[Any, ...]]]:
            if not native_batched:
                # The base-class adapter pulls op.rows() — which is now
                # counted_rows, already tracking rows/loops/time — so only
                # tally the chunking here.
                for batch in original_batched(batch_size):
                    op_stats.batches += 1
                    yield batch
                return
            op_stats.loops += 1
            start = time.perf_counter()
            try:
                for batch in original_batched(batch_size):
                    op_stats.elapsed += time.perf_counter() - start
                    op_stats.batches += 1
                    op_stats.rows_out += len(batch)
                    yield batch
                    start = time.perf_counter()
            finally:
                op_stats.elapsed += time.perf_counter() - start

        op.rows = counted_rows  # type: ignore[method-assign]
        op.rows_batched = counted_batches  # type: ignore[method-assign]
        for child in op.children():
            wrap(child)

    wrap(root)
    return stats


def render_analyze(
    root: Operator,
    stats: Dict[int, OpStats],
    planning_ms: float,
    execution_ms: float,
    plan_cache: Optional[Dict[str, int]] = None,
    verified: Optional[int] = None,
    replans: Optional[int] = None,
) -> str:
    """The annotated plan text returned by EXPLAIN ANALYZE.

    *plan_cache*, when given, is the database's statement-cache counter
    snapshot; EXPLAIN ANALYZE itself always plans fresh (instrumentation
    wraps the plan's ``rows`` methods, which must never leak into a cached
    tree), so the line reports the cache's lifetime counters, not a hit for
    this statement.  Under vectorized execution each operator line carries
    ``batches=`` and, where expressions were lowered, ``compiled=yes/no``.
    *verified*, when given, is the operator count the static plan verifier
    checked (see :mod:`repro.analysis.planverify`).
    """
    lines: List[str] = []

    def walk(op: Operator, depth: int) -> None:
        text = op.label()
        op_stats = stats.get(id(op))
        if op.est_rows is not None and op_stats is None:
            text += f"  [~{op.est_rows:.0f} rows]"
        if op_stats is not None:
            if op_stats.est_rows is not None:
                # The estimated-vs-actual line: the feedback signal the
                # adaptive optimizer reads.  "x1.0 off" is a perfect guess.
                text += (
                    f"  [est=~{op_stats.est_rows:.0f} act={op_stats.rows_out}"
                    f" (x{op_stats.misestimate:.1f} off)"
                    f" loops={op_stats.loops}"
                )
            else:
                text += f"  [rows={op_stats.rows_out} loops={op_stats.loops}"
            if op_stats.batches:
                text += f" batches={op_stats.batches}"
            compiled = op.compiled_status()
            if compiled is not None:
                text += f" compiled={compiled}"
            text += f" time={op_stats.elapsed * 1000.0:.3f} ms]"
        lines.append("  " * depth + text)
        for child in op.children():
            walk(child, depth + 1)

    walk(root, 0)
    lines.append(f"Planning Time: {planning_ms:.3f} ms")
    if verified is not None:
        lines.append(f"Plan verified: {verified} operators ok")
    if plan_cache is not None:
        lines.append(
            "Plan Cache: hits={hits} misses={misses} "
            "invalidations={invalidations}".format(**plan_cache)
        )
    if replans is not None:
        lines.append(f"Adaptive: replans={replans}")
    lines.append(f"Execution Time: {execution_ms:.3f} ms")
    return "\n".join(lines)


def stats_tree(root: Operator, stats: Dict[int, OpStats]) -> Dict[str, Any]:
    """The same information as a JSON-serialisable nested dict."""
    node: Dict[str, Any] = {"op": op_label(root)}
    op_stats = stats.get(id(root))
    if op_stats is not None:
        node.update(op_stats.to_dict())
        compiled = root.compiled_status()
        if compiled is not None:
            node["compiled"] = compiled
    children = [stats_tree(child, stats) for child in root.children()]
    if children:
        node["children"] = children
    return node


def operator_rows(
    root: Operator, stats: Dict[int, OpStats]
) -> List[Dict[str, Any]]:
    """Flat preorder per-operator est/act list, for the statement log.

    ``i`` is the preorder position — stable for a given plan shape, so
    records with the same plan fingerprint aggregate per position in
    ``_plan_stats``.
    """
    out: List[Dict[str, Any]] = []

    def walk(op: Operator) -> None:
        op_stats = stats.get(id(op))
        out.append(
            {
                "i": len(out),
                "op": op.label(),
                "est": None if op_stats is None else op_stats.est_rows,
                "act": 0 if op_stats is None else op_stats.rows_out,
            }
        )
        for child in op.children():
            walk(child)

    walk(root)
    return out


def op_label(op: Operator) -> str:
    return op.label()
