"""Ring-buffered slow-operation log.

Any span (or hand-rolled timing) whose duration crosses a configurable
threshold is recorded here with its name, tags, and timestamp.  The ring
keeps only the most recent ``capacity`` entries, so it is safe to leave on
in long sessions; the app's debug window and ``Database.slow_log`` both
read from the same ring.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional

#: default threshold: 50 ms, generous for an interactive TUI frame budget
DEFAULT_THRESHOLD_MS = 50.0
DEFAULT_CAPACITY = 128


class SlowLog:
    """Threshold-filtered ring buffer of slow operations."""

    def __init__(
        self,
        threshold_ms: float = DEFAULT_THRESHOLD_MS,
        capacity: int = DEFAULT_CAPACITY,
    ) -> None:
        self.threshold_ms = threshold_ms
        self._ring: Deque[Dict[str, Any]] = deque(maxlen=capacity)
        self.dropped = 0  # entries pushed out of the ring

    def record(
        self,
        name: str,
        duration_ms: float,
        tags: Optional[Dict[str, Any]] = None,
        when: Optional[float] = None,
    ) -> bool:
        """Record *name* if it crossed the threshold; True when kept."""
        if duration_ms < self.threshold_ms:
            return False
        if len(self._ring) == self._ring.maxlen:
            self.dropped += 1
        self._ring.append(
            {
                "name": name,
                "duration_ms": duration_ms,
                "tags": dict(tags) if tags else {},
                "when": when if when is not None else time.time(),
            }
        )
        return True

    def entries(self) -> List[Dict[str, Any]]:
        """Entries oldest-first, as JSON-serialisable dicts."""
        return list(self._ring)

    def clear(self) -> None:
        self._ring.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._ring)

    def dump(self) -> List[str]:
        """Human-readable lines, newest last (for the debug window)."""
        lines = []
        for entry in self._ring:
            stamp = time.strftime("%H:%M:%S", time.localtime(entry["when"]))
            tags = entry["tags"]
            suffix = (
                " " + " ".join(f"{k}={v}" for k, v in sorted(tags.items()))
                if tags
                else ""
            )
            lines.append(
                f"{stamp} {entry['duration_ms']:8.2f} ms  {entry['name']}{suffix}"
            )
        return lines
