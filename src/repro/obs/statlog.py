"""The statement log: telemetry-as-relations for every executed statement.

The paper's thesis — everything browsable through a form over a relational
view — applies to the engine's own telemetry too.  :class:`StatementLog`
records every ``Database.execute``/``stream``/prepared execution into a
bounded in-memory ring (and, optionally, a rotating JSONL file sink), and
the records are queryable as the ``_statements`` system table (see
:mod:`repro.obs.systables`) and browsable in the F12 query-inspector
window.

Each :class:`StatementRecord` carries the statement's normalized SQL, its
**fingerprint** (literals and parameters lifted to ``?`` — the join key the
slow log and the future interface-mining work share), plan-cache hit/miss,
the physical **plan fingerprint**, duration, pages read, rows returned, and
— for sampled or EXPLAIN ANALYZE'd executions — per-operator estimated vs
actual row counts.  That est/act signal, aggregated per plan in
:attr:`StatementLog.plan_stats`, is exactly what the adaptive optimizer
(ROADMAP item 2) will consume to re-plan badly estimated statements; the
``python -m repro.obs --misestimates`` CLI reports it today.

All file I/O goes through the :class:`~repro.relational.faults.IOShim`, so
the crash-exhaustion harness counts, crashes on, and tears sink writes like
any other durable write; a torn trailing line is skipped (and counted) on
replay by :func:`read_jsonl`.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple

from repro.errors import LexError
from repro.relational.faults import DEFAULT_IO, IOShim
from repro.sql.lexer import tokenize

#: ring size for the in-memory statement ring (0 disables capture)
DEFAULT_CAPACITY = 256
#: default rotation threshold for the JSONL sink
DEFAULT_SINK_MAX_BYTES = 1_000_000

#: token kinds replaced by ``?`` when fingerprinting (constants only —
#: identifiers and keywords shape the statement, literals parameterize it)
_LITERAL_KINDS = frozenset({"INT", "FLOAT", "STRING"})


def fingerprint_sql(sql: str) -> str:
    """A stable fingerprint of *sql* with literals lifted to ``?``.

    Two statements that differ only in constants (``id = 3`` vs ``id = 7``)
    — or in whitespace or keyword case — share a fingerprint, so the
    statement log, slow log, and ``_statements`` aggregate them as one
    shape.  Unlexable text falls back to a hash of the normalized string.
    """
    try:
        tokens = tokenize(sql)
    except LexError:
        shape = " ".join(sql.split())
    else:
        shape = " ".join(
            "?" if token.kind in _LITERAL_KINDS or token.kind == "PARAM" else str(token.value)
            for token in tokens
            if token.kind != "EOF"
        )
    return hashlib.sha1(shape.encode("utf-8")).hexdigest()[:12]


def plan_fingerprint(root: Any) -> str:
    """A structural fingerprint of a physical plan (labels, preorder).

    Cached on the plan object, so cached plans and prepared statements pay
    the walk once.
    """
    cached = getattr(root, "_plan_fp", None)
    if cached is not None:
        return cached
    labels: List[str] = []

    def walk(op: Any, depth: int) -> None:
        labels.append(f"{depth}:{op.label()}")
        for child in op.children():
            walk(child, depth + 1)

    walk(root, 0)
    fp = hashlib.sha1("|".join(labels).encode("utf-8")).hexdigest()[:12]
    try:
        root._plan_fp = fp
    except AttributeError:  # operators with __slots__ would land here
        pass
    return fp


def misestimate_factor(est: Optional[float], act: Optional[int]) -> Optional[float]:
    """How far off an estimate was: ``max(est/act, act/est)``, floored at 1.

    Both sides are clamped to 1 row so empty results do not divide by zero;
    a perfect estimate scores 1.0, an estimate 10x too high (or low) scores
    10.0.  None when there was no estimate.
    """
    if est is None or act is None:
        return None
    e = max(float(est), 1.0)
    a = max(float(act), 1.0)
    return max(e / a, a / e)


class JsonlSink:
    """An append-only JSONL file with size-capped rotation.

    When the live file would cross ``max_bytes`` it is renamed to
    ``<path>.1`` (replacing any previous rotation) and a fresh file is
    started — so the sink holds at most ~``2 * max_bytes`` on disk however
    long the session runs.  All writes go through the :class:`IOShim`.
    """

    def __init__(
        self,
        path: str,
        max_bytes: int = DEFAULT_SINK_MAX_BYTES,
        io: Optional[IOShim] = None,
    ) -> None:
        self.path = path
        self.max_bytes = max_bytes
        self.io = io if io is not None else DEFAULT_IO
        self.rotations = 0
        self.bytes_written = 0
        self._fd: Optional[int] = None
        self._size = 0

    def _open(self) -> None:
        self._fd = self.io.open(
            self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        self._size = os.fstat(self._fd).st_size

    def _rotate(self) -> None:
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None
        self.io.replace(self.path, self.path + ".1")
        self.rotations += 1
        self._open()

    def write(self, record: Dict[str, Any]) -> None:
        """Append one record as a JSON line, rotating at the size cap."""
        data = (json.dumps(record, separators=(",", ":"), default=str) + "\n").encode(
            "utf-8"
        )
        if self._fd is None:
            self._open()
        if self._size > 0 and self._size + len(data) > self.max_bytes:
            self._rotate()
        self.io.write_all(self._fd, data)
        self._size += len(data)
        self.bytes_written += len(data)

    def close(self) -> None:
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None


def read_jsonl(path: str) -> Tuple[List[Dict[str, Any]], int]:
    """Replay a JSONL statement log: ``(records, skipped_lines)``.

    Tolerates a torn trailing line (crash mid-append) — and any other
    undecodable line — by skipping and counting it, so a log written up to
    the moment of a crash is always readable.
    """
    records: List[Dict[str, Any]] = []
    skipped = 0
    with open(path, "r", encoding="utf-8", errors="replace") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
            except json.JSONDecodeError:
                skipped += 1
                continue
            if isinstance(doc, dict):
                records.append(doc)
            else:
                skipped += 1
    return records, skipped


class StatementRecord:
    """One executed statement, as captured by the log."""

    __slots__ = (
        "seq", "ts", "session", "kind", "sql", "fingerprint", "params",
        "cache", "plan_fp", "est_rows", "rows", "pages_read", "duration_ms",
        "error", "ops",
        # capture-time scratch (not exported)
        "_start", "_pages0", "_hits0", "_misses0",
    )

    def __init__(self) -> None:
        self.seq = 0
        self.ts = 0.0
        #: session id the statement ran under (None in embedded use) —
        #: the join key against the _sessions telemetry table
        self.session: Optional[int] = None
        self.kind: Optional[str] = None
        self.sql: Optional[str] = None
        self.fingerprint: Optional[str] = None
        self.params: Optional[str] = None
        self.cache: Optional[str] = None
        self.plan_fp: Optional[str] = None
        self.est_rows: Optional[float] = None
        self.rows: Optional[int] = None
        self.pages_read: Optional[int] = None
        self.duration_ms: Optional[float] = None
        self.error: Optional[str] = None
        #: per-operator [{"i": idx, "op": label, "est": float|None, "act": int}]
        self.ops: Optional[List[Dict[str, Any]]] = None
        self._start = 0.0
        self._pages0 = 0
        self._hits0 = 0
        self._misses0 = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seq": self.seq,
            "ts": self.ts,
            "session": self.session,
            "kind": self.kind,
            "sql": self.sql,
            "fingerprint": self.fingerprint,
            "params": self.params,
            "cache": self.cache,
            "plan": self.plan_fp,
            "est_rows": self.est_rows,
            "rows": self.rows,
            "pages_read": self.pages_read,
            "duration_ms": self.duration_ms,
            "error": self.error,
            "ops": self.ops,
        }


class PlanOpStat:
    """Aggregated est-vs-act for one operator position of one plan shape."""

    __slots__ = ("plan_fp", "op_index", "label", "execs", "est_rows",
                 "act_total", "worst_factor")

    def __init__(self, plan_fp: str, op_index: int, label: str) -> None:
        self.plan_fp = plan_fp
        self.op_index = op_index
        self.label = label
        self.execs = 0
        self.est_rows: Optional[float] = None
        self.act_total = 0
        self.worst_factor: Optional[float] = None

    def observe(self, est: Optional[float], act: int) -> None:
        self.execs += 1
        self.est_rows = est
        self.act_total += act
        factor = misestimate_factor(est, act)
        if factor is not None and (
            self.worst_factor is None or factor > self.worst_factor
        ):
            self.worst_factor = factor

    @property
    def mean_act(self) -> float:
        return self.act_total / self.execs if self.execs else 0.0


class StatementLog:
    """Bounded ring of executed statements + optional JSONL sink.

    The database begins a capture before dispatching a statement and
    finishes it with the outcome; plan-level details (``note_plan``,
    ``note_operators``) are filled in by the select path while the capture
    is *current*.  ``sample_every=N`` makes every Nth SELECT execute
    through a freshly planned, instrumented tree (never the cached one —
    instrumentation wrappers must not leak into cached plans), capturing
    true per-operator cardinalities at a controlled cost; ``0`` disables
    sampling, and EXPLAIN ANALYZE always contributes per-operator rows.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        sink: Optional[JsonlSink] = None,
        sample_every: int = 0,
        io: Optional[IOShim] = None,
    ) -> None:
        self.capacity = capacity
        self._ring: Deque[StatementRecord] = deque(maxlen=max(capacity, 0))
        self.sink = sink
        self.sample_every = sample_every
        self.io = io if io is not None else DEFAULT_IO
        self._seq = 0
        self._since_sample = 0
        #: guards the ring, counters, plan_stats, and sink writes — the
        #: engine latch serialises *statements*, but sessions and direct
        #: callers may publish records concurrently
        self._lock = threading.Lock()
        #: capture in flight (statements are serialised by the engine
        #: latch, so one in-flight capture suffices; streams detach)
        self.current: Optional[StatementRecord] = None
        #: (plan_fp, op_index) -> PlanOpStat, fed by samples + EXPLAIN ANALYZE
        self.plan_stats: Dict[Tuple[str, int], PlanOpStat] = {}
        self.counters = {"captured": 0, "dropped": 0, "sampled": 0, "errors": 0}

    @property
    def enabled(self) -> bool:
        return self.capacity > 0

    # -- capture protocol --------------------------------------------------

    def begin(
        self,
        pages_read: int,
        cache_hits: int,
        cache_misses: int,
        session: Optional[int] = None,
    ) -> StatementRecord:
        """Open a capture; counter arguments are begin-time snapshots."""
        record = StatementRecord()
        record.ts = time.time()
        record.session = session
        record._start = time.perf_counter()
        record._pages0 = pages_read
        record._hits0 = cache_hits
        record._misses0 = cache_misses
        self.current = record
        return record

    def describe(
        self,
        record: StatementRecord,
        sql: str,
        fingerprint: Optional[str],
        kind: str,
        params: Optional[Sequence[Any]] = None,
    ) -> None:
        """Fill the capture's identity fields (post statement lookup)."""
        record.sql = " ".join(sql.split())
        record.fingerprint = fingerprint
        record.kind = kind
        if params is not None:
            record.params = json.dumps(list(params), default=str)

    def note_cache(self, outcome: str) -> None:
        """Explicit per-call plan-cache attribution for the current capture.

        The database calls this at each hit/miss decision site.  The old
        scheme — diffing the shared cache's counters between begin and
        finish — mis-attributes under concurrency: another session's
        lookup between the two snapshots shows up in *this* statement's
        delta.  A "hit" sticks once set (parity with the delta scheme,
        where any hit won over a miss).
        """
        record = self.current
        if record is None:
            return
        if record.cache != "hit":
            record.cache = outcome

    def note_plan(self, plan: Any) -> None:
        """Record the physical plan the current capture executed."""
        record = self.current
        if record is None:
            return
        record.plan_fp = plan_fingerprint(plan)
        if plan.est_rows is not None:
            record.est_rows = float(plan.est_rows)

    def note_operators(
        self, plan_fp: str, ops: List[Dict[str, Any]], sampled: bool = False
    ) -> None:
        """Attach per-operator est/act rows (from a sample or ANALYZE)."""
        record = self.current
        if record is not None:
            record.ops = ops
            record.plan_fp = plan_fp
        with self._lock:
            if sampled:
                self.counters["sampled"] += 1
            for op in ops:
                key = (plan_fp, op["i"])
                stat = self.plan_stats.get(key)
                if stat is None:
                    stat = self.plan_stats[key] = PlanOpStat(
                        plan_fp, op["i"], op["op"]
                    )
                stat.observe(op.get("est"), op.get("act", 0))

    def take_sample(self) -> bool:
        """True when the current statement should run instrumented."""
        if self.sample_every <= 0 or self.current is None:
            return False
        self._since_sample += 1
        if self._since_sample >= self.sample_every:
            self._since_sample = 0
            return True
        return False

    def detach(self, record: StatementRecord) -> None:
        """Stop treating *record* as current (streams finish much later)."""
        if self.current is record:
            self.current = None

    def finish(
        self,
        record: StatementRecord,
        rows: Optional[int],
        pages_read: int,
        cache_hits: int,
        cache_misses: int,
        error: Optional[str] = None,
    ) -> None:
        """Complete a capture and publish it to the ring (and the sink)."""
        record.duration_ms = (time.perf_counter() - record._start) * 1000.0
        record.rows = rows
        record.pages_read = max(0, pages_read - record._pages0)
        if record.cache is None:
            # Fallback counter-delta attribution for callers that never
            # reached a note_cache() site (only sound single-session —
            # the database attributes explicitly per call).
            if cache_hits > record._hits0:
                record.cache = "hit"
            elif cache_misses > record._misses0:
                record.cache = "miss"
        self.detach(record)
        with self._lock:
            if error is not None:
                record.error = error
                self.counters["errors"] += 1
            self._seq += 1
            record.seq = self._seq
            if len(self._ring) == self._ring.maxlen:
                self.counters["dropped"] += 1
            self._ring.append(record)
            self.counters["captured"] += 1
            sink = self.sink if self.sink is not None else _DEFAULT_SINK
            if sink is not None:
                sink.write(record.to_dict())

    # -- reading -----------------------------------------------------------

    def records(self) -> List[StatementRecord]:
        """Captured statements, oldest first."""
        with self._lock:
            return list(self._ring)

    def plan_stat_rows(self) -> List[PlanOpStat]:
        """Aggregated per-plan operator stats, worst misestimates first."""
        with self._lock:
            return sorted(
                self.plan_stats.values(),
                key=lambda s: (-(s.worst_factor or 0.0), s.plan_fp, s.op_index),
            )

    def worst_factor_for(self, plan_fp: str) -> Optional[float]:
        """The worst est-vs-act factor observed anywhere in plan *plan_fp* —
        the adaptive optimizer's re-plan trigger signal."""
        worst: Optional[float] = None
        for (fp, _index), stat in self.plan_stats.items():
            if fp != plan_fp or stat.worst_factor is None:
                continue
            if worst is None or stat.worst_factor > worst:
                worst = stat.worst_factor
        return worst

    def forget_plan(self, plan_fp: str) -> None:
        """Drop the aggregates for *plan_fp* — called after a re-plan so the
        stale plan's misestimates cannot re-trigger the feedback loop."""
        for key in [k for k in self.plan_stats if k[0] == plan_fp]:
            del self.plan_stats[key]

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()
            self.plan_stats.clear()

    def snapshot(self) -> Dict[str, Any]:
        """Counters for ``metrics_snapshot()`` / the F11 window."""
        with self._lock:
            out: Dict[str, Any] = {
                "enabled": 1 if self.enabled else 0,
                "capacity": self.capacity,
                "entries": len(self._ring),
                "sample_every": self.sample_every,
                **self.counters,
            }
        sink = self.sink if self.sink is not None else _DEFAULT_SINK
        if sink is not None:
            out["sink_rotations"] = sink.rotations
            out["sink_bytes"] = sink.bytes_written
        return out

    def close(self) -> None:
        if self.sink is not None:
            self.sink.close()

    def __len__(self) -> int:
        return len(self._ring)


# -- process-wide default sink (CI telemetry artifacts) ----------------------

_DEFAULT_SINK: Optional[JsonlSink] = None


def set_default_sink(path: Optional[str], max_bytes: int = DEFAULT_SINK_MAX_BYTES) -> None:
    """Install (or, with None, remove) a process-wide fallback JSONL sink.

    Statement logs without their own sink write here; the tier-1 CI job
    sets this (via ``WOW_TELEMETRY_DIR`` in ``tests/conftest.py``) so a
    failing run uploads its full statement history as an artifact.
    """
    global _DEFAULT_SINK
    if _DEFAULT_SINK is not None:
        _DEFAULT_SINK.close()
    _DEFAULT_SINK = JsonlSink(path, max_bytes=max_bytes) if path else None


def get_default_sink() -> Optional[JsonlSink]:
    return _DEFAULT_SINK
