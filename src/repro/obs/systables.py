"""Telemetry system tables: the engine's own telemetry as relations.

Read-only system tables, synthesised on demand exactly like the
catalog's ``_tables``/``_columns``/... (see
:meth:`repro.relational.catalog.Catalog._system_table`):

* ``_statements`` — the statement log's ring: one row per executed
  statement with fingerprint, plan-cache hit/miss, plan fingerprint,
  est/act rows, duration, pages read;
* ``_slow_ops`` — the slow log, with the statement fingerprint extracted
  from its span tags so it joins against ``_statements``;
* ``_metrics`` — every counter/gauge/histogram of the engine snapshot and
  the attached registry, flattened to rows;
* ``_plan_stats`` — per-plan, per-operator estimated-vs-actual row counts
  aggregated from sampled executions and EXPLAIN ANALYZE — the adaptive
  optimizer's feedback relation;
* ``_table_stats`` — the optimizer statistics ANALYZE collected, one row
  per (table, column): row count, heap pages, distinct-value estimate,
  null count, min/max, and histogram bucket count;
* ``_sessions`` — one row per live session (user, open-transaction flag,
  held locks, retry/abort counters); ``_statements.session`` joins
  against ``_sessions.id``, so "what is session 3 running" is a query.
* ``_storage`` — one row per user table: heap pages, buffer-pool
  occupancy (resident/pinned/dirty against the pool target), hit/miss/
  eviction/prefetch counters, free-space-map coverage, and the columnar
  segment cache's contents — "why is this scan slow" as a SELECT.

Because they are ordinary relations, ``SELECT * FROM _statements`` works
in the SQL window, the F12 query inspector is just a browser window over
``_statements``, and a form can be generated over any of them — the forms
runtime dogfooding itself on the engine.

:func:`register_telemetry_tables` binds the builders to one
:class:`~repro.relational.database.Database`; a bare catalog (no database
attached) serves the same schemas empty via :func:`empty_system_table`.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Dict, Iterator, List, Tuple

from repro.relational.schema import Column, TableSchema
from repro.relational.types import ColumnType

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.relational.database import Database
    from repro.relational.table import Table

TELEMETRY_TABLE_NAMES = (
    "_statements",
    "_slow_ops",
    "_metrics",
    "_plan_stats",
    "_table_stats",
    "_sessions",
    "_storage",
)


def _schema_statements() -> TableSchema:
    return TableSchema(
        "_statements",
        [
            Column("seq", ColumnType.INT, nullable=False),
            Column("ts", ColumnType.FLOAT, nullable=False),
            # the session the statement ran under — joins against
            # _sessions.id (NULL for embedded, session-less execution)
            Column("session", ColumnType.INT),
            Column("kind", ColumnType.TEXT),
            Column("sql", ColumnType.TEXT),
            Column("fingerprint", ColumnType.TEXT),
            Column("params", ColumnType.TEXT),
            Column("cache", ColumnType.TEXT),
            Column("plan", ColumnType.TEXT),
            Column("est_rows", ColumnType.FLOAT),
            Column("act_rows", ColumnType.INT),
            Column("pages_read", ColumnType.INT),
            Column("duration_ms", ColumnType.FLOAT),
            Column("error", ColumnType.TEXT),
        ],
        primary_key=["seq"],
    )


def _schema_slow_ops() -> TableSchema:
    return TableSchema(
        "_slow_ops",
        [
            Column("seq", ColumnType.INT, nullable=False),
            Column("ts", ColumnType.FLOAT, nullable=False),
            Column("name", ColumnType.TEXT, nullable=False),
            Column("duration_ms", ColumnType.FLOAT, nullable=False),
            Column("fingerprint", ColumnType.TEXT),
            Column("tags", ColumnType.TEXT),
        ],
        primary_key=["seq"],
    )


def _schema_metrics() -> TableSchema:
    return TableSchema(
        "_metrics",
        [
            Column("source", ColumnType.TEXT, nullable=False),
            Column("name", ColumnType.TEXT, nullable=False),
            Column("kind", ColumnType.TEXT, nullable=False),
            Column("value", ColumnType.FLOAT),
            # "samples"/"peak" rather than "count"/"max": those are SQL
            # keywords here and could not be selected by name
            Column("samples", ColumnType.INT),
            Column("p95", ColumnType.FLOAT),
            Column("peak", ColumnType.FLOAT),
        ],
    )


def _schema_plan_stats() -> TableSchema:
    return TableSchema(
        "_plan_stats",
        [
            Column("plan", ColumnType.TEXT, nullable=False),
            Column("op_index", ColumnType.INT, nullable=False),
            Column("op", ColumnType.TEXT, nullable=False),
            Column("execs", ColumnType.INT, nullable=False),
            Column("est_rows", ColumnType.FLOAT),
            Column("mean_act_rows", ColumnType.FLOAT, nullable=False),
            Column("worst_factor", ColumnType.FLOAT),
        ],
        primary_key=["plan", "op_index"],
    )


def _schema_table_stats() -> TableSchema:
    return TableSchema(
        "_table_stats",
        [
            Column("table_name", ColumnType.TEXT, nullable=False),
            Column("column_name", ColumnType.TEXT, nullable=False),
            Column("row_count", ColumnType.INT, nullable=False),
            Column("pages", ColumnType.INT, nullable=False),
            Column("n_distinct", ColumnType.INT, nullable=False),
            Column("null_count", ColumnType.INT, nullable=False),
            Column("min_value", ColumnType.TEXT),
            Column("max_value", ColumnType.TEXT),
            Column("histogram_buckets", ColumnType.INT),
        ],
        primary_key=["table_name", "column_name"],
    )


def _schema_sessions() -> TableSchema:
    return TableSchema(
        "_sessions",
        [
            Column("id", ColumnType.INT, nullable=False),
            Column("user_name", ColumnType.TEXT, nullable=False),
            Column("in_txn", ColumnType.INT, nullable=False),
            Column("undo_entries", ColumnType.INT, nullable=False),
            Column("locks", ColumnType.TEXT),
            Column("statements", ColumnType.INT, nullable=False),
            Column("retries", ColumnType.INT, nullable=False),
            Column("aborts", ColumnType.INT, nullable=False),
        ],
        primary_key=["id"],
    )


def _schema_storage() -> TableSchema:
    return TableSchema(
        "_storage",
        [
            Column("table_name", ColumnType.TEXT, nullable=False),
            Column("heap_pages", ColumnType.INT, nullable=False),
            Column("pool_target", ColumnType.INT),
            Column("resident", ColumnType.INT),
            Column("pinned", ColumnType.INT),
            Column("dirty", ColumnType.INT),
            Column("hits", ColumnType.INT, nullable=False),
            Column("misses", ColumnType.INT, nullable=False),
            Column("evictions", ColumnType.INT, nullable=False),
            Column("prefetched", ColumnType.INT, nullable=False),
            Column("fsm_pages", ColumnType.INT, nullable=False),
            Column("fsm_free_bytes", ColumnType.INT, nullable=False),
            Column("seg_cached", ColumnType.INT, nullable=False),
            Column("seg_cached_rows", ColumnType.INT, nullable=False),
            Column("seg_hits", ColumnType.INT, nullable=False),
            Column("seg_misses", ColumnType.INT, nullable=False),
            Column("data_version", ColumnType.INT, nullable=False),
        ],
        primary_key=["table_name"],
    )


_SCHEMAS = {
    "_statements": _schema_statements,
    "_slow_ops": _schema_slow_ops,
    "_metrics": _schema_metrics,
    "_plan_stats": _schema_plan_stats,
    "_table_stats": _schema_table_stats,
    "_sessions": _schema_sessions,
    "_storage": _schema_storage,
}


def _fresh(schema: TableSchema, rows: Iterator[Tuple[Any, ...]]) -> "Table":
    from repro.relational.heap import HeapFile
    from repro.relational.pager import MemoryPager
    from repro.relational.table import Table

    table = Table(schema, HeapFile(MemoryPager()))
    for row in rows:
        table.insert(row)
    return table


def empty_system_table(name: str) -> "Table":
    """A telemetry table with its declared schema and zero rows — what a
    catalog without an attached database serves."""
    return _fresh(_SCHEMAS[name](), iter(()))


# -- builders ----------------------------------------------------------------


def build_statements(db: "Database") -> "Table":
    def rows() -> Iterator[Tuple[Any, ...]]:
        for r in db.statement_log.records():
            yield (
                r.seq, r.ts, r.session, r.kind, r.sql, r.fingerprint,
                r.params, r.cache, r.plan_fp, r.est_rows, r.rows,
                r.pages_read, r.duration_ms, r.error,
            )

    return _fresh(_schema_statements(), rows())


def build_slow_ops(db: "Database") -> "Table":
    def rows() -> Iterator[Tuple[Any, ...]]:
        for seq, entry in enumerate(db.slow_log.entries(), start=1):
            tags = dict(entry.get("tags") or {})
            fingerprint = tags.pop("fp", None)
            yield (
                seq,
                entry["when"],
                entry["name"],
                entry["duration_ms"],
                fingerprint,
                json.dumps(tags, default=str) if tags else None,
            )

    return _fresh(_schema_slow_ops(), rows())


def _numeric(value: Any) -> Any:
    """Coerce snapshot values to floats; None for non-numeric entries."""
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    if isinstance(value, (int, float)):
        return float(value)
    return None


def build_metrics(db: "Database") -> "Table":
    snap = db.metrics_snapshot()
    registry = snap.pop("registry")

    def rows() -> Iterator[Tuple[Any, ...]]:
        for source, counters in snap.items():
            if not isinstance(counters, dict):
                continue
            for name, value in sorted(counters.items()):
                numeric = _numeric(value)
                if numeric is None:
                    continue
                yield (source, name, "counter", numeric, None, None, None)
        for name, value in sorted(registry["counters"].items()):
            yield ("registry", name, "counter", float(value), None, None, None)
        for name, value in sorted(registry["gauges"].items()):
            yield ("registry", name, "gauge", float(value), None, None, None)
        for name, summary in sorted(registry["histograms"].items()):
            yield (
                "registry", name, "histogram",
                _numeric(summary["mean"]), summary["count"],
                _numeric(summary["p95"]), _numeric(summary["max"]),
            )

    return _fresh(_schema_metrics(), rows())


def build_plan_stats(db: "Database") -> "Table":
    def rows() -> Iterator[Tuple[Any, ...]]:
        for stat in db.statement_log.plan_stat_rows():
            yield (
                stat.plan_fp, stat.op_index, stat.label, stat.execs,
                stat.est_rows, stat.mean_act, stat.worst_factor,
            )

    return _fresh(_schema_plan_stats(), rows())


def build_table_stats(db: "Database") -> "Table":
    def render(value: Any) -> Any:
        return None if value is None else str(value)

    def rows() -> Iterator[Tuple[Any, ...]]:
        for table_name in sorted(db.planner.stats):
            stats = db.planner.stats[table_name]
            for column_name in sorted(stats.columns):
                column = stats.columns[column_name]
                histogram = column.histogram
                yield (
                    table_name, column_name, stats.row_count, stats.pages,
                    column.n_distinct, column.null_count,
                    render(column.min_value), render(column.max_value),
                    None if histogram is None else len(histogram.counts),
                )

    return _fresh(_schema_table_stats(), rows())


def build_sessions(db: "Database") -> "Table":
    def rows() -> Iterator[Tuple[Any, ...]]:
        manager = db.session_manager
        if manager is None:
            return
        for row in manager.session_rows():
            yield (
                row["id"], row["user"], row["in_txn"],
                row["undo_entries"], row["locks"] or None,
                row["statements"], row["retries"], row["aborts"],
            )

    return _fresh(_schema_sessions(), rows())


def build_storage(db: "Database") -> "Table":
    def rows() -> Iterator[Tuple[Any, ...]]:
        for table in db.catalog.tables():
            heap = table.heap
            pager = heap._pager
            stats = pager.stats
            # FilePager pool introspection; a MemoryPager has no pool, so
            # those columns are NULL for in-memory tables.
            pool_target = getattr(pager, "pool_size", None)
            resident = getattr(pager, "resident_pages", None)
            pinned = getattr(pager, "pinned_pages", None)
            dirty = getattr(pager, "dirty_page_count", None)
            fsm = heap.free_space_stats()
            seg = table.segments.snapshot()
            yield (
                table.name,
                heap.page_count(),
                pool_target,
                resident() if resident is not None else None,
                pinned() if pinned is not None else None,
                dirty() if dirty is not None else None,
                stats.get("hits", 0),
                stats.get("misses", 0),
                stats.get("evictions", 0),
                stats.get("prefetched", 0),
                fsm["fsm_pages"],
                fsm["fsm_free_bytes"],
                seg["seg_cached"],
                seg["seg_cached_rows"],
                seg["seg_hits"],
                seg["seg_misses"],
                heap.data_version,
            )

    return _fresh(_schema_storage(), rows())


_BUILDERS: Dict[str, Any] = {
    "_statements": build_statements,
    "_slow_ops": build_slow_ops,
    "_metrics": build_metrics,
    "_plan_stats": build_plan_stats,
    "_table_stats": build_table_stats,
    "_sessions": build_sessions,
    "_storage": build_storage,
}


def register_telemetry_tables(db: "Database") -> None:
    """Attach the telemetry tables to *db*'s catalog."""
    for name, builder in _BUILDERS.items():
        db.catalog.register_system_source(
            name, (lambda b: lambda: b(db))(builder)
        )
