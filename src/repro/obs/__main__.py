"""Query-insight analyzer CLI over a JSONL statement log.

Usage::

    python -m repro.obs --log statements.jsonl --top-slow 10
    python -m repro.obs --log statements.jsonl --misestimates
    python -m repro.obs --log statements.jsonl --summary --json

* ``--top-slow N`` — the N slowest statements (duration, cache, rows,
  pages, fingerprint, SQL).
* ``--misestimates`` — operators ordered by worst cardinality misestimate
  (``max(est/act, act/est)`` per operator occurrence), aggregated across
  records that carry per-operator stats (sampled executions and EXPLAIN
  ANALYZE).  This listing is the feedback signal the adaptive optimizer
  (ROADMAP item 2) will consume.
* ``--summary`` — one-line totals (statements, errors, cache hit rate).

``--json`` switches every report to machine-readable JSON.  The log is a
JSONL file written by a :class:`~repro.obs.statlog.JsonlSink`; torn lines
(crash mid-append) are skipped and counted.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional, Sequence

from repro.obs.statlog import misestimate_factor, read_jsonl

DEFAULT_LOG = "statements.jsonl"


def top_slow(records: List[Dict[str, Any]], n: int) -> List[Dict[str, Any]]:
    """The *n* slowest statements, slowest first."""
    timed = [r for r in records if r.get("duration_ms") is not None]
    timed.sort(key=lambda r: -r["duration_ms"])
    return [
        {
            "duration_ms": round(r["duration_ms"], 3),
            "kind": r.get("kind"),
            "cache": r.get("cache"),
            "rows": r.get("rows"),
            "pages_read": r.get("pages_read"),
            "fingerprint": r.get("fingerprint"),
            "sql": r.get("sql"),
        }
        for r in timed[:n]
    ]


def misestimates(records: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Operators ordered by worst est-vs-act factor, aggregated per
    (plan fingerprint, operator position)."""
    agg: Dict[Any, Dict[str, Any]] = {}
    for record in records:
        ops = record.get("ops")
        if not ops:
            continue
        plan = record.get("plan")
        for op in ops:
            factor = misestimate_factor(op.get("est"), op.get("act"))
            if factor is None:
                continue
            key = (plan, op.get("i"))
            entry = agg.get(key)
            if entry is None:
                entry = agg[key] = {
                    "plan": plan,
                    "op_index": op.get("i"),
                    "op": op.get("op"),
                    "execs": 0,
                    "est_rows": op.get("est"),
                    "act_rows": op.get("act"),
                    "worst_factor": 0.0,
                    "sql": record.get("sql"),
                }
            entry["execs"] += 1
            entry["est_rows"] = op.get("est")
            entry["act_rows"] = op.get("act")
            if factor > entry["worst_factor"]:
                entry["worst_factor"] = factor
    out = sorted(agg.values(), key=lambda e: -e["worst_factor"])
    for entry in out:
        entry["worst_factor"] = round(entry["worst_factor"], 2)
    return out


def summary(records: List[Dict[str, Any]], skipped: int) -> Dict[str, Any]:
    hits = sum(1 for r in records if r.get("cache") == "hit")
    misses = sum(1 for r in records if r.get("cache") == "miss")
    looked_up = hits + misses
    return {
        "statements": len(records),
        "errors": sum(1 for r in records if r.get("error")),
        "cache_hit_rate": round(hits / looked_up, 4) if looked_up else None,
        "with_operator_stats": sum(1 for r in records if r.get("ops")),
        "torn_lines_skipped": skipped,
    }


def _render_table(rows: List[Dict[str, Any]], columns: List[str]) -> str:
    if not rows:
        return "(no rows)"
    cells = [[str(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(line[i]) for line in cells))
        for i, col in enumerate(columns)
    ]
    lines = [
        "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns)),
        "  ".join("-" * widths[i] for i in range(len(columns))),
    ]
    lines.extend(
        "  ".join(line[i].ljust(widths[i]) for i in range(len(columns)))
        for line in cells
    )
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Analyze a JSONL statement log (see repro.obs.statlog).",
    )
    parser.add_argument(
        "--log", default=DEFAULT_LOG,
        help=f"JSONL statement log to read (default: {DEFAULT_LOG})",
    )
    parser.add_argument(
        "--top-slow", type=int, metavar="N", default=None,
        help="report the N slowest statements",
    )
    parser.add_argument(
        "--misestimates", action="store_true",
        help="report operators ordered by worst cardinality misestimate",
    )
    parser.add_argument(
        "--summary", action="store_true", help="report one-line totals"
    )
    parser.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    args = parser.parse_args(argv)
    if args.top_slow is None and not args.misestimates and not args.summary:
        args.summary = True
        if args.top_slow is None:
            args.top_slow = 10

    try:
        records, skipped = read_jsonl(args.log)
    except OSError as exc:
        print(f"cannot read statement log {args.log!r}: {exc}", file=sys.stderr)
        return 2

    reports: Dict[str, Any] = {}
    if args.summary:
        reports["summary"] = summary(records, skipped)
    if args.top_slow is not None:
        reports["top_slow"] = top_slow(records, args.top_slow)
    if args.misestimates:
        reports["misestimates"] = misestimates(records)

    if args.json:
        print(json.dumps(reports, indent=1))
        return 0

    if "summary" in reports:
        print("== summary ==")
        for key, value in reports["summary"].items():
            print(f"  {key:<22} {value}")
    if "top_slow" in reports:
        print(f"\n== top {args.top_slow} slow statements ==")
        print(
            _render_table(
                reports["top_slow"],
                ["duration_ms", "kind", "cache", "rows", "pages_read",
                 "fingerprint", "sql"],
            )
        )
    if "misestimates" in reports:
        print("\n== cardinality misestimates (worst first) ==")
        print(
            _render_table(
                reports["misestimates"],
                ["worst_factor", "op", "est_rows", "act_rows", "execs",
                 "plan", "sql"],
            )
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
