"""``repro.obs`` — in-process observability: metrics, spans, slow log.

Three pieces, all stdlib-only:

* :class:`Registry` — named counters / gauges / histograms with
  percentile summaries and JSON export (:mod:`repro.obs.registry`);
* :class:`Tracer` / :class:`Span` — context-manager spans on a
  thread-local stack shared across tracer instances
  (:mod:`repro.obs.tracer`);
* :class:`SlowLog` — threshold-filtered ring of slow operations
  (:mod:`repro.obs.slowlog`).

A process-wide default registry (:func:`get_registry`) serves the UI
layers; each :class:`~repro.relational.database.Database` additionally
owns a tracer and slow log wired to the same registry unless told
otherwise.  EXPLAIN ANALYZE plumbing lives in :mod:`repro.obs.analyze`.
"""

from .analyze import OpStats, instrument, operator_rows, render_analyze, stats_tree
from .exporter import json_text, prometheus_text
from .registry import (
    Counter,
    Gauge,
    Histogram,
    Registry,
    get_registry,
    set_enabled,
    set_registry,
)
from .slowlog import SlowLog
from .statlog import (
    JsonlSink,
    PlanOpStat,
    StatementLog,
    StatementRecord,
    fingerprint_sql,
    misestimate_factor,
    plan_fingerprint,
    read_jsonl,
    set_default_sink,
)
from .tracer import Span, Tracer, current_span

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Registry",
    "get_registry",
    "set_registry",
    "set_enabled",
    "SlowLog",
    "Span",
    "Tracer",
    "current_span",
    "OpStats",
    "instrument",
    "render_analyze",
    "stats_tree",
    "operator_rows",
    "prometheus_text",
    "json_text",
    "StatementLog",
    "StatementRecord",
    "PlanOpStat",
    "JsonlSink",
    "fingerprint_sql",
    "plan_fingerprint",
    "misestimate_factor",
    "read_jsonl",
    "set_default_sink",
]
