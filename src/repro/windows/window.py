"""Windows: framed, titled regions holding widgets with focus traversal."""

from __future__ import annotations

from typing import List, Optional

from repro.errors import FocusError, GeometryError
from repro.windows.events import Key, KeyEvent
from repro.windows.geometry import Rect
from repro.windows.screen import Attr, ScreenBuffer
from repro.windows.widgets import Widget


class Window:
    """A bordered window containing widgets.

    Widget coordinates are relative to the window's *content area* (inside
    the border).  TAB/BACKTAB cycle focus among focusable widgets; other
    unconsumed keys return False so the window manager / application can
    handle them.
    """

    def __init__(self, title: str, rect: Rect) -> None:
        if rect.width < 4 or rect.height < 3:
            raise GeometryError("a window needs at least 4x3 cells")
        self.title = title
        self.rect = rect
        self.widgets: List[Widget] = []
        self._focus_index: Optional[int] = None
        self.active = False  # set by the window manager

    # -- content ------------------------------------------------------------

    @property
    def content(self) -> Rect:
        """The drawable interior (window-relative sizes, absolute origin)."""
        return self.rect.inset(1, 1)

    def add(self, widget: Widget) -> Widget:
        """Add a widget; the first focusable one gains focus."""
        self.widgets.append(widget)
        if self._focus_index is None and widget.focusable:
            self._focus_index = len(self.widgets) - 1
            widget.focused = True
        return widget

    # -- focus ------------------------------------------------------------

    @property
    def focused_widget(self) -> Optional[Widget]:
        if self._focus_index is None:
            return None
        return self.widgets[self._focus_index]

    def focus(self, widget: Widget) -> None:
        """Give focus to a specific widget of this window."""
        if widget not in self.widgets:
            raise FocusError("widget does not belong to this window")
        if not widget.focusable:
            raise FocusError("widget cannot take focus")
        if self.focused_widget is not None:
            self.focused_widget.focused = False
        self._focus_index = self.widgets.index(widget)
        widget.focused = True
        widget.on_focus()

    def focus_next(self, backwards: bool = False) -> None:
        """Cycle focus among focusable widgets (TAB order = add order)."""
        focusable = [i for i, w in enumerate(self.widgets) if w.focusable and w.visible]
        if not focusable:
            return
        if self._focus_index is None:
            target = focusable[0]
        else:
            try:
                position = focusable.index(self._focus_index)
            except ValueError:
                position = 0
            step = -1 if backwards else 1
            target = focusable[(position + step) % len(focusable)]
        if self.focused_widget is not None:
            self.focused_widget.focused = False
        self._focus_index = target
        self.widgets[target].focused = True
        self.widgets[target].on_focus()

    # -- events -----------------------------------------------------------

    def handle_key(self, event: KeyEvent) -> bool:
        """Dispatch to the focused widget, then to TAB traversal."""
        widget = self.focused_widget
        if widget is not None and widget.handle_key(event):
            return True
        if event.key == Key.TAB:
            self.focus_next()
            return True
        if event.key == Key.BACKTAB:
            self.focus_next(backwards=True)
            return True
        return False

    # -- geometry ------------------------------------------------------------

    def move(self, dx: int, dy: int) -> None:
        self.rect = self.rect.moved(dx, dy)

    def resize(self, width: int, height: int) -> None:
        if width < 4 or height < 3:
            raise GeometryError("a window needs at least 4x3 cells")
        self.rect = Rect(self.rect.x, self.rect.y, width, height)

    # -- rendering -----------------------------------------------------------

    def render(self, screen: ScreenBuffer) -> None:
        """Draw frame, title, and widgets, clipped to my rectangle."""
        previous_clip = None
        screen.set_clip(self.rect)
        try:
            screen.fill(self.rect, " ")
            frame_attr = Attr.BOLD if self.active else Attr.DIM
            screen.box(self.rect, frame_attr)
            title = f" {self.title} "
            max_title = self.rect.width - 4
            if max_title > 0:
                screen.write(
                    self.rect.x + 2,
                    self.rect.y,
                    title[:max_title],
                    frame_attr | Attr.REVERSE,
                )
            content = self.content
            screen.set_clip(content)
            for widget in self.widgets:
                if widget.visible:
                    widget.render(screen, content.x, content.y)
        finally:
            screen.set_clip(previous_clip)
