"""The window manager: z-ordered windows over a differential renderer.

The manager composites every visible window back-to-front into the
renderer's back buffer, routes keyboard events to the active (topmost
focused) window, and offers the classic desktop verbs: open, close, raise,
cycle, move, resize, tile.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import FocusError, WindowError
from repro.windows.events import Key, KeyEvent
from repro.windows.geometry import Rect
from repro.windows.render import Renderer
from repro.windows.screen import ScreenBuffer
from repro.windows.window import Window


class WindowManager:
    """Owns the window stack and the screen."""

    def __init__(self, width: int = 80, height: int = 24, differential: bool = True) -> None:
        self.renderer = Renderer(width, height, differential)
        self.windows: List[Window] = []  # back-to-front z-order
        self._keys_dispatched = 0

    # -- stack operations ---------------------------------------------------

    @property
    def active_window(self) -> Optional[Window]:
        """The topmost window (receives keyboard input)."""
        return self.windows[-1] if self.windows else None

    def open(self, window: Window) -> Window:
        """Push a window on top of the stack and activate it."""
        if window in self.windows:
            raise WindowError("window is already open")
        if self.active_window is not None:
            self.active_window.active = False
        self.windows.append(window)
        window.active = True
        return window

    def close(self, window: Window) -> None:
        """Remove a window; the next topmost becomes active."""
        if window not in self.windows:
            raise WindowError("window is not open")
        self.windows.remove(window)
        window.active = False
        if self.active_window is not None:
            self.active_window.active = True

    def raise_window(self, window: Window) -> None:
        """Bring *window* to the top of the z-order and activate it."""
        if window not in self.windows:
            raise WindowError("window is not open")
        if self.active_window is not None:
            self.active_window.active = False
        self.windows.remove(window)
        self.windows.append(window)
        window.active = True

    def cycle(self) -> Optional[Window]:
        """Rotate the bottom window to the top (the F1 'next window' verb)."""
        if len(self.windows) > 1:
            bottom = self.windows[0]
            self.raise_window(bottom)
        return self.active_window

    def tile(self) -> None:
        """Tile all windows side by side across the screen."""
        count = len(self.windows)
        if count == 0:
            return
        width = self.renderer.width // count
        if width < 4:
            raise WindowError(f"cannot tile {count} windows into {self.renderer.width} columns")
        for position, window in enumerate(self.windows):
            x = position * width
            window.rect = Rect(x, 0, width, self.renderer.height)

    # -- events -----------------------------------------------------------

    def dispatch(self, event: KeyEvent) -> bool:
        """Send a key to the active window; F1 cycles windows globally.

        Returns True if anything consumed the event.
        """
        self._keys_dispatched += 1
        if event.key == Key.F1:
            self.cycle()
            return True
        window = self.active_window
        if window is None:
            return False
        return window.handle_key(event)

    @property
    def keys_dispatched(self) -> int:
        return self._keys_dispatched

    # -- rendering -----------------------------------------------------------

    def render_frame(self) -> int:
        """Composite all windows and flush; returns cells transmitted."""
        back = self.renderer.begin_frame()
        for window in self.windows:
            window.render(back)
        return self.renderer.flush()

    def screen_text(self) -> str:
        """Text of the currently *presented* frame (front buffer)."""
        return self.renderer.front.to_text()
