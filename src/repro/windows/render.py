"""The differential renderer.

The renderer owns two buffers: the *front* buffer (what the terminal shows)
and a *back* buffer the compositor draws each frame into.  ``flush`` sends
the frame to the terminal:

* differential mode (the paper's design, D2 in DESIGN.md): diff back vs
  front and transmit only changed cells;
* full mode (the ablation): retransmit every cell.

"Transmitting" means counting — the substrate is headless.  The counters
model the dominant cost of a 9600-baud 1983 terminal: bytes on the wire.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.obs import get_registry
from repro.windows.screen import Cell, ScreenBuffer


class Renderer:
    """Double-buffered renderer with per-flush cell-write accounting."""

    def __init__(self, width: int, height: int, differential: bool = True) -> None:
        self.width = width
        self.height = height
        self.differential = differential
        self.front = ScreenBuffer(width, height)
        self.back = ScreenBuffer(width, height)
        #: cumulative count of cells transmitted to the "terminal"
        self.cells_transmitted = 0
        #: number of flush() calls
        self.frames = 0
        #: cells transmitted by the most recent flush
        self.last_frame_cells = 0

    def begin_frame(self) -> ScreenBuffer:
        """Clear and return the back buffer for the compositor to draw on."""
        self.back.clear()
        return self.back

    def flush(self) -> int:
        """Present the back buffer; returns cells transmitted this frame."""
        if self.differential:
            changes = self.back.diff(self.front)
            transmitted = len(changes)
        else:
            transmitted = self.width * self.height
        self.front.copy_from(self.back)
        self.cells_transmitted += transmitted
        self.last_frame_cells = transmitted
        self.frames += 1
        registry = get_registry()
        if registry.enabled:
            registry.counter("windows.frames").inc()
            registry.counter("windows.cells_transmitted").inc(transmitted)
            registry.histogram("windows.frame_cells").observe(transmitted)
        return transmitted

    def changed_cells(self) -> List[Tuple[int, int, Cell]]:
        """The pending differences (without flushing) — for tests."""
        return self.back.diff(self.front)

    def reset_stats(self) -> None:
        self.cells_transmitted = 0
        self.frames = 0
        self.last_frame_cells = 0
