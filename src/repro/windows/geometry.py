"""Rectangles on the character grid."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import GeometryError


@dataclass(frozen=True)
class Rect:
    """A rectangle: top-left (x, y), width, height — all in character cells."""

    x: int
    y: int
    width: int
    height: int

    def __post_init__(self) -> None:
        if self.width < 1 or self.height < 1:
            raise GeometryError(f"degenerate rectangle {self!r}")

    @property
    def right(self) -> int:
        """One past the last column."""
        return self.x + self.width

    @property
    def bottom(self) -> int:
        """One past the last row."""
        return self.y + self.height

    def contains(self, x: int, y: int) -> bool:
        return self.x <= x < self.right and self.y <= y < self.bottom

    def intersect(self, other: "Rect") -> Optional["Rect"]:
        """The overlapping rectangle, or None if disjoint."""
        x = max(self.x, other.x)
        y = max(self.y, other.y)
        right = min(self.right, other.right)
        bottom = min(self.bottom, other.bottom)
        if right <= x or bottom <= y:
            return None
        return Rect(x, y, right - x, bottom - y)

    def inset(self, dx: int, dy: int) -> "Rect":
        """Shrink by dx columns on each side and dy rows on each side."""
        return Rect(self.x + dx, self.y + dy, self.width - 2 * dx, self.height - 2 * dy)

    def moved(self, dx: int, dy: int) -> "Rect":
        return Rect(self.x + dx, self.y + dy, self.width, self.height)

    @property
    def area(self) -> int:
        return self.width * self.height
