"""Keyboard events and the key-script notation.

Printable keys are single characters.  Special keys use the :class:`Key`
constants.  Key scripts — the notation tests, examples, and benchmarks use
to drive the UI — write special keys in angle brackets::

    "ada<TAB>100<ENTER>"   ->  a d a TAB 1 0 0 ENTER

``parse_keys`` turns such a script into KeyEvent objects; every event counts
as exactly one keystroke for the interaction-cost metrics (as it did on a
real terminal).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List


class Key:
    """Names of non-printable keys."""

    ENTER = "ENTER"
    ESC = "ESC"
    TAB = "TAB"
    BACKTAB = "BACKTAB"
    BACKSPACE = "BACKSPACE"
    DELETE = "DELETE"
    UP = "UP"
    DOWN = "DOWN"
    LEFT = "LEFT"
    RIGHT = "RIGHT"
    HOME = "HOME"
    END = "END"
    PGUP = "PGUP"
    PGDN = "PGDN"
    F1 = "F1"
    F2 = "F2"
    F3 = "F3"
    F4 = "F4"
    F5 = "F5"
    F6 = "F6"
    F7 = "F7"
    F8 = "F8"
    F9 = "F9"
    F10 = "F10"
    F11 = "F11"
    F12 = "F12"

    ALL = frozenset(
        [
            ENTER, ESC, TAB, BACKTAB, BACKSPACE, DELETE,
            UP, DOWN, LEFT, RIGHT, HOME, END, PGUP, PGDN,
            F1, F2, F3, F4, F5, F6, F7, F8, F9, F10, F11, F12,
        ]
    )


@dataclass(frozen=True)
class KeyEvent:
    """One keystroke: either a printable character or a Key name."""

    key: str

    @property
    def printable(self) -> bool:
        return len(self.key) == 1

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return self.key if self.printable else f"<{self.key}>"


def parse_keys(script: str) -> List[KeyEvent]:
    """Parse a key script ("abc<ENTER><F2>") into KeyEvents.

    A literal ``<`` is written ``<<``.
    """
    events: List[KeyEvent] = []
    i = 0
    while i < len(script):
        ch = script[i]
        if ch == "<":
            if script.startswith("<<", i):
                events.append(KeyEvent("<"))
                i += 2
                continue
            end = script.find(">", i)
            if end == -1:
                raise ValueError(f"unterminated key name at offset {i} in {script!r}")
            name = script[i + 1 : end].upper()
            if name not in Key.ALL:
                raise ValueError(f"unknown key <{name}> in {script!r}")
            events.append(KeyEvent(name))
            i = end + 1
        else:
            events.append(KeyEvent(ch))
            i += 1
    return events


def format_keys(events: List[KeyEvent]) -> str:
    """Inverse of :func:`parse_keys` (for error messages and logs)."""
    parts = []
    for event in events:
        if event.key == "<":
            parts.append("<<")
        elif event.printable:
            parts.append(event.key)
        else:
            parts.append(f"<{event.key}>")
    return "".join(parts)
