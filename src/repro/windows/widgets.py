"""The widget set: labels, editable fields, grids, buttons, status bars.

Widgets draw into a :class:`~repro.windows.screen.ScreenBuffer` at
coordinates relative to their parent window's content area (the window
offsets them when rendering) and handle :class:`KeyEvent`s when focused.

``handle_key`` returns True if the widget consumed the event; unconsumed
events bubble to the window (TAB traversal) and then to the application
(function keys).
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.errors import GeometryError
from repro.windows.events import Key, KeyEvent
from repro.windows.geometry import Rect
from repro.windows.screen import Attr, ScreenBuffer


class Widget:
    """Base class: a rectangle plus focus and key-handling behaviour."""

    focusable = False

    def __init__(self, rect: Rect) -> None:
        self.rect = rect
        self.focused = False
        self.visible = True

    def render(self, screen: ScreenBuffer, dx: int, dy: int) -> None:
        """Draw at my rect offset by (dx, dy)."""
        raise NotImplementedError

    def handle_key(self, event: KeyEvent) -> bool:
        """Process a key while focused; True if consumed."""
        return False

    def on_focus(self) -> None:
        """Called by the window when focus arrives at this widget."""


class Label(Widget):
    """Static text."""

    def __init__(self, x: int, y: int, text: str, attr: Attr = Attr.NORMAL) -> None:
        super().__init__(Rect(x, y, max(1, len(text)), 1))
        self.text = text
        self.attr = attr

    def render(self, screen: ScreenBuffer, dx: int, dy: int) -> None:
        screen.write(self.rect.x + dx, self.rect.y + dy, self.text, self.attr)


class TextField(Widget):
    """A single-line editable field with a cursor and horizontal scrolling.

    The field is the forms system's atom: every form column binds to one.
    ``on_change`` fires after any edit; ``read_only`` fields take focus (so
    the cursor can rest on them) but reject edits.
    """

    focusable = True

    def __init__(
        self,
        x: int,
        y: int,
        width: int,
        text: str = "",
        read_only: bool = False,
        on_change: Optional[Callable[[str], None]] = None,
    ) -> None:
        if width < 1:
            raise GeometryError("TextField width must be >= 1")
        super().__init__(Rect(x, y, width, 1))
        self._text = text
        self.cursor = len(text)
        self.scroll = 0
        self.read_only = read_only
        self.on_change = on_change
        #: 1983 type-over: the next printable key replaces the whole text.
        #: Set when focus arrives or the text is (re)loaded; cleared by any
        #: cursor/editing key.
        self.overwrite_pending = False

    @property
    def text(self) -> str:
        return self._text

    @text.setter
    def text(self, value: str) -> None:
        self._text = value
        self.cursor = min(self.cursor, len(value))
        self._fix_scroll()

    def set_text(self, value: str) -> None:
        """Replace content and put the cursor at the end."""
        self._text = value
        self.cursor = len(value)
        self._fix_scroll()

    def clear(self) -> None:
        self.set_text("")

    def on_focus(self) -> None:
        self.overwrite_pending = True

    def handle_key(self, event: KeyEvent) -> bool:
        key = event.key
        if self.read_only and not event.printable:
            # A read-only field has no cursor to move: let navigation and
            # editing keys bubble to the window/form (record navigation).
            return False
        if event.printable:
            if self.read_only:
                return True  # swallow: typing on a read-only field is a no-op
            if self.overwrite_pending:
                self._text = ""
                self.cursor = 0
                self.scroll = 0
                self.overwrite_pending = False
            self._text = self._text[: self.cursor] + key + self._text[self.cursor :]
            self.cursor += 1
            self._edited()
            return True
        self.overwrite_pending = False
        if key == Key.BACKSPACE:
            if not self.read_only and self.cursor > 0:
                self._text = self._text[: self.cursor - 1] + self._text[self.cursor :]
                self.cursor -= 1
                self._edited()
            return True
        if key == Key.DELETE:
            if not self.read_only and self.cursor < len(self._text):
                self._text = self._text[: self.cursor] + self._text[self.cursor + 1 :]
                self._edited()
            return True
        if key == Key.LEFT:
            self.cursor = max(0, self.cursor - 1)
            self._fix_scroll()
            return True
        if key == Key.RIGHT:
            self.cursor = min(len(self._text), self.cursor + 1)
            self._fix_scroll()
            return True
        if key == Key.HOME:
            self.cursor = 0
            self._fix_scroll()
            return True
        if key == Key.END:
            self.cursor = len(self._text)
            self._fix_scroll()
            return True
        return False

    def _edited(self) -> None:
        self._fix_scroll()
        if self.on_change is not None:
            self.on_change(self._text)

    def _fix_scroll(self) -> None:
        width = self.rect.width
        if self.cursor < self.scroll:
            self.scroll = self.cursor
        elif self.cursor >= self.scroll + width:
            self.scroll = self.cursor - width + 1

    def render(self, screen: ScreenBuffer, dx: int, dy: int) -> None:
        width = self.rect.width
        visible = self._text[self.scroll : self.scroll + width].ljust(width)
        attr = Attr.REVERSE if self.focused else Attr.UNDERLINE
        if self.read_only:
            attr |= Attr.DIM
        screen.write(self.rect.x + dx, self.rect.y + dy, visible, attr)
        if self.focused:
            cursor_col = self.rect.x + dx + (self.cursor - self.scroll)
            if self.cursor - self.scroll < width:
                ch = visible[self.cursor - self.scroll]
                screen.put(cursor_col, self.rect.y + dy, ch, attr | Attr.BOLD)


class Button(Widget):
    """A focusable action trigger (ENTER or space activates)."""

    focusable = True

    def __init__(self, x: int, y: int, label: str, on_press: Callable[[], None]) -> None:
        super().__init__(Rect(x, y, len(label) + 2, 1))
        self.label = label
        self.on_press = on_press

    def handle_key(self, event: KeyEvent) -> bool:
        if event.key in (Key.ENTER, " "):
            self.on_press()
            return True
        return False

    def render(self, screen: ScreenBuffer, dx: int, dy: int) -> None:
        attr = Attr.REVERSE if self.focused else Attr.NORMAL
        screen.write(self.rect.x + dx, self.rect.y + dy, f"[{self.label}]", attr)


class GridView(Widget):
    """A scrolling table of rows: the browse surface of the system.

    Rows are sequences of display strings.  The grid keeps a selected row,
    scrolls it into view, and exposes ``on_select`` (selection moved) and
    ``on_activate`` (ENTER on a row).
    """

    focusable = True

    def __init__(
        self,
        rect: Rect,
        columns: Sequence[Tuple[str, int]],
        on_select: Optional[Callable[[int], None]] = None,
        on_activate: Optional[Callable[[int], None]] = None,
    ) -> None:
        if rect.height < 2:
            raise GeometryError("GridView needs at least a header row and one body row")
        super().__init__(rect)
        self.columns: List[Tuple[str, int]] = list(columns)
        self.rows: List[Sequence[str]] = []
        self.selected = 0
        self.scroll = 0
        self.on_select = on_select
        self.on_activate = on_activate

    @property
    def body_height(self) -> int:
        return self.rect.height - 1  # minus header

    def set_rows(self, rows: Sequence[Sequence[str]]) -> None:
        self.rows = list(rows)
        self.selected = min(self.selected, max(0, len(self.rows) - 1))
        self._fix_scroll()

    def select(self, index: int) -> None:
        if self.rows:
            old = self.selected
            self.selected = max(0, min(index, len(self.rows) - 1))
            self._fix_scroll()
            if self.selected != old and self.on_select is not None:
                self.on_select(self.selected)

    def handle_key(self, event: KeyEvent) -> bool:
        key = event.key
        if key == Key.UP:
            self.select(self.selected - 1)
            return True
        if key == Key.DOWN:
            self.select(self.selected + 1)
            return True
        if key == Key.PGUP:
            self.select(self.selected - self.body_height)
            return True
        if key == Key.PGDN:
            self.select(self.selected + self.body_height)
            return True
        if key == Key.HOME:
            self.select(0)
            return True
        if key == Key.END:
            self.select(len(self.rows) - 1)
            return True
        if key == Key.ENTER and self.rows and self.on_activate is not None:
            self.on_activate(self.selected)
            return True
        return False

    def _fix_scroll(self) -> None:
        if self.selected < self.scroll:
            self.scroll = self.selected
        elif self.selected >= self.scroll + self.body_height:
            self.scroll = self.selected - self.body_height + 1

    def _format_row(self, values: Sequence[str]) -> str:
        parts = []
        for (header, width), value in zip(self.columns, list(values) + [""] * len(self.columns)):
            text = str(value)[:width].ljust(width)
            parts.append(text)
        return " ".join(parts)[: self.rect.width]

    def render(self, screen: ScreenBuffer, dx: int, dy: int) -> None:
        x = self.rect.x + dx
        y = self.rect.y + dy
        header = self._format_row([h for h, _w in self.columns])
        screen.write(x, y, header.ljust(self.rect.width), Attr.BOLD | Attr.UNDERLINE)
        for line in range(self.body_height):
            row_index = self.scroll + line
            if row_index < len(self.rows):
                text = self._format_row(self.rows[row_index])
                attr = (
                    Attr.REVERSE
                    if (row_index == self.selected and self.focused)
                    else Attr.NORMAL
                )
            else:
                text = ""
                attr = Attr.NORMAL
            screen.write(x, y + 1 + line, text.ljust(self.rect.width), attr)


class StatusBar(Widget):
    """A one-line message area (bottom of a window or screen)."""

    def __init__(self, x: int, y: int, width: int) -> None:
        super().__init__(Rect(x, y, width, 1))
        self.message = ""

    def set_message(self, message: str) -> None:
        self.message = message

    def render(self, screen: ScreenBuffer, dx: int, dy: int) -> None:
        text = self.message[: self.rect.width].ljust(self.rect.width)
        screen.write(self.rect.x + dx, self.rect.y + dy, text, Attr.REVERSE)
