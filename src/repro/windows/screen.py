"""The character-cell screen buffer.

A :class:`ScreenBuffer` is a fixed grid of :class:`Cell` (character +
attribute bits).  All drawing clips to the buffer (and optionally to a clip
rectangle), so widgets can draw naively.  The buffer records nothing about
what changed — diffing is the renderer's job — but it counts raw cell
writes, which benchmarks use as the "bytes down the terminal line" measure.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import GeometryError
from repro.windows.geometry import Rect


class Attr(enum.IntFlag):
    """Display attributes a 1983 terminal could render."""

    NORMAL = 0
    BOLD = 1
    REVERSE = 2
    UNDERLINE = 4
    DIM = 8


@dataclass(frozen=True)
class Cell:
    """One character cell."""

    char: str = " "
    attr: Attr = Attr.NORMAL

    def __post_init__(self) -> None:
        if len(self.char) != 1:
            raise GeometryError(f"a cell holds exactly one character, got {self.char!r}")


BLANK = Cell()


class ScreenBuffer:
    """A width x height grid of cells with clipped drawing primitives."""

    def __init__(self, width: int, height: int) -> None:
        if width < 1 or height < 1:
            raise GeometryError(f"bad screen size {width}x{height}")
        self.width = width
        self.height = height
        self._cells: List[List[Cell]] = [
            [BLANK for _ in range(width)] for _ in range(height)
        ]
        self._clip: Optional[Rect] = None
        #: total individual cell writes since construction (or reset_stats)
        self.cells_written = 0

    # -- clipping -----------------------------------------------------------

    def set_clip(self, rect: Optional[Rect]) -> None:
        """Restrict subsequent writes to *rect* (None = whole screen)."""
        self._clip = rect

    def _writable(self, x: int, y: int) -> bool:
        if not (0 <= x < self.width and 0 <= y < self.height):
            return False
        if self._clip is not None and not self._clip.contains(x, y):
            return False
        return True

    # -- drawing ------------------------------------------------------------

    def put(self, x: int, y: int, char: str, attr: Attr = Attr.NORMAL) -> None:
        """Write one character (clipped)."""
        if self._writable(x, y):
            self._cells[y][x] = Cell(char, attr)
            self.cells_written += 1

    def write(self, x: int, y: int, text: str, attr: Attr = Attr.NORMAL) -> None:
        """Write a string left-to-right starting at (x, y) (clipped)."""
        for offset, ch in enumerate(text):
            self.put(x + offset, y, ch, attr)

    def fill(self, rect: Rect, char: str = " ", attr: Attr = Attr.NORMAL) -> None:
        """Fill a rectangle with one character (clipped)."""
        for y in range(rect.y, rect.bottom):
            for x in range(rect.x, rect.right):
                self.put(x, y, char, attr)

    def hline(self, x: int, y: int, length: int, char: str = "-", attr: Attr = Attr.NORMAL) -> None:
        for offset in range(length):
            self.put(x + offset, y, char, attr)

    def vline(self, x: int, y: int, length: int, char: str = "|", attr: Attr = Attr.NORMAL) -> None:
        for offset in range(length):
            self.put(x, y + offset, char, attr)

    def box(self, rect: Rect, attr: Attr = Attr.NORMAL) -> None:
        """Draw a border box on the edge of *rect* with +-| characters."""
        self.hline(rect.x + 1, rect.y, rect.width - 2, "-", attr)
        self.hline(rect.x + 1, rect.bottom - 1, rect.width - 2, "-", attr)
        self.vline(rect.x, rect.y + 1, rect.height - 2, "|", attr)
        self.vline(rect.right - 1, rect.y + 1, rect.height - 2, "|", attr)
        for cx, cy in (
            (rect.x, rect.y),
            (rect.right - 1, rect.y),
            (rect.x, rect.bottom - 1),
            (rect.right - 1, rect.bottom - 1),
        ):
            self.put(cx, cy, "+", attr)

    def clear(self) -> None:
        """Blank the whole buffer (ignores the clip rectangle)."""
        for y in range(self.height):
            row = self._cells[y]
            for x in range(self.width):
                row[x] = BLANK
        self.cells_written += self.width * self.height

    # -- reading ----------------------------------------------------------

    def cell(self, x: int, y: int) -> Cell:
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise GeometryError(f"cell ({x},{y}) outside {self.width}x{self.height}")
        return self._cells[y][x]

    def row_text(self, y: int) -> str:
        """The characters of row *y* as a string."""
        return "".join(cell.char for cell in self._cells[y])

    def to_text(self) -> str:
        """The whole frame as newline-joined rows (tests and examples)."""
        return "\n".join(self.row_text(y) for y in range(self.height))

    def find(self, needle: str) -> Optional[Tuple[int, int]]:
        """(x, y) of the first occurrence of *needle* in row text, or None."""
        for y in range(self.height):
            x = self.row_text(y).find(needle)
            if x != -1:
                return (x, y)
        return None

    # -- diffing support ----------------------------------------------------

    def diff(self, other: "ScreenBuffer") -> List[Tuple[int, int, Cell]]:
        """Cells where *self* differs from *other* (same dimensions)."""
        if (other.width, other.height) != (self.width, self.height):
            raise GeometryError("cannot diff screens of different sizes")
        changes = []
        for y in range(self.height):
            mine = self._cells[y]
            theirs = other._cells[y]
            for x in range(self.width):
                if mine[x] != theirs[x]:
                    changes.append((x, y, mine[x]))
        return changes

    def copy_from(self, other: "ScreenBuffer") -> None:
        """Make this buffer identical to *other* (no write accounting)."""
        if (other.width, other.height) != (self.width, self.height):
            raise GeometryError("cannot copy screens of different sizes")
        for y in range(self.height):
            self._cells[y] = list(other._cells[y])

    def reset_stats(self) -> None:
        self.cells_written = 0
