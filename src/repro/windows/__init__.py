"""Character-cell windowing substrate: screens, windows, widgets, events.

A pure-Python stand-in for a 1983 CRT terminal: a :class:`ScreenBuffer` of
character cells, a differential :class:`Renderer` that counts cell writes
(the quantity a 9600-baud line made precious), a :class:`WindowManager`
compositing overlapping windows, and a small widget set (labels, text
fields, grids, status bars) that the forms runtime builds on.

Everything is deterministic and headless — benchmarks and tests drive it
with synthetic key events and read frames back as text.
"""

from repro.windows.events import Key, KeyEvent
from repro.windows.geometry import Rect
from repro.windows.manager import WindowManager
from repro.windows.render import Renderer
from repro.windows.screen import Attr, Cell, ScreenBuffer
from repro.windows.widgets import Button, GridView, Label, StatusBar, TextField
from repro.windows.window import Window

__all__ = [
    "Attr",
    "Button",
    "Cell",
    "GridView",
    "Key",
    "KeyEvent",
    "Label",
    "Rect",
    "Renderer",
    "ScreenBuffer",
    "StatusBar",
    "TextField",
    "Window",
    "WindowManager",
]
