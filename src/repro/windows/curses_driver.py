"""Optional curses front-end: run a WowApp on a real terminal.

The whole system is headless by design (frames are text, keys are events),
which is what makes the evaluation reproducible.  This adapter is the thin
bridge to an actual TTY for people who want to *use* the thing::

    from repro.core import WowApp
    from repro.windows.curses_driver import run_app

    app = WowApp(db)
    app.open_form("students")
    run_app(app)          # blocks until the user presses ctrl-Q

It is intentionally minimal — one screen repaint per keystroke, attribute
mapping to curses A_* flags — and is excluded from the test suite (there is
no TTY in CI); everything underneath it is tested headlessly.
"""

from __future__ import annotations

from typing import Optional

from repro.windows.events import Key, KeyEvent
from repro.windows.screen import Attr

#: curses keycode -> KeyEvent name
_SPECIAL = {
    "KEY_UP": Key.UP,
    "KEY_DOWN": Key.DOWN,
    "KEY_LEFT": Key.LEFT,
    "KEY_RIGHT": Key.RIGHT,
    "KEY_HOME": Key.HOME,
    "KEY_END": Key.END,
    "KEY_PPAGE": Key.PGUP,
    "KEY_NPAGE": Key.PGDN,
    "KEY_BACKSPACE": Key.BACKSPACE,
    "KEY_DC": Key.DELETE,
    "KEY_BTAB": Key.BACKTAB,
    "KEY_F(1)": Key.F1,
    "KEY_F(2)": Key.F2,
    "KEY_F(3)": Key.F3,
    "KEY_F(4)": Key.F4,
    "KEY_F(5)": Key.F5,
    "KEY_F(6)": Key.F6,
    "KEY_F(7)": Key.F7,
    "KEY_F(8)": Key.F8,
    "KEY_F(9)": Key.F9,
    "KEY_F(10)": Key.F10,
}


def translate_key(name: str) -> Optional[KeyEvent]:
    """Map a curses key name to a KeyEvent (None = ignore)."""
    if name in _SPECIAL:
        return KeyEvent(_SPECIAL[name])
    if name == "\n":
        return KeyEvent(Key.ENTER)
    if name == "\t":
        return KeyEvent(Key.TAB)
    if name == "\x1b":
        return KeyEvent(Key.ESC)
    if name in ("\x7f", "\x08"):
        return KeyEvent(Key.BACKSPACE)
    if len(name) == 1 and name.isprintable():
        return KeyEvent(name)
    return None


def _attr_to_curses(attr: Attr, curses_module) -> int:  # pragma: no cover - TTY only
    flags = 0
    if attr & Attr.BOLD:
        flags |= curses_module.A_BOLD
    if attr & Attr.REVERSE:
        flags |= curses_module.A_REVERSE
    if attr & Attr.UNDERLINE:
        flags |= curses_module.A_UNDERLINE
    if attr & Attr.DIM:
        flags |= curses_module.A_DIM
    return flags


def run_app(app) -> None:  # pragma: no cover - requires a TTY
    """Drive *app* interactively until ctrl-Q."""
    import curses

    def loop(stdscr) -> None:
        curses.raw()
        stdscr.keypad(True)
        front = app.wm.renderer.front
        while True:
            app.wm.render_frame()
            for y in range(front.height):
                for x in range(front.width):
                    cell = front.cell(x, y)
                    try:
                        stdscr.addstr(
                            y, x, cell.char, _attr_to_curses(cell.attr, curses)
                        )
                    except curses.error:
                        pass  # bottom-right corner write
            stdscr.refresh()
            name = stdscr.getkey()
            if name == "\x11":  # ctrl-Q
                return
            event = translate_key(name)
            if event is not None:
                app.send_key(event)

    curses.wrapper(loop)
