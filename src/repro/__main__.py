"""``python -m repro`` — a self-contained demonstration session.

Builds the university workload, opens several windows on it, drives them
with keystrokes, and prints each frame with a caption.  No arguments, no
network, no terminal control codes: every frame is plain text.
"""

from __future__ import annotations

from repro.core import WowApp
from repro.windows.geometry import Rect
from repro.workloads import build_university


def demo() -> None:
    print("Windows on the World — demonstration session")
    print("=" * 60)
    db = build_university(students=40, courses=12)
    app = WowApp(db, width=100, height=30)

    departments = app.open_form("departments", x=0, y=0)
    students = app.open_form("students", x=40, y=0)
    app.link(departments, students, on=[("id", "major_id")])
    print("\n[1] Two linked windows: department master, student detail")
    print(app.screen_text())

    app.send_keys("<DOWN>")
    print("\n[2] After <DOWN> on the master — the detail follows")
    print(app.screen_text())

    app.wm.raise_window(students)
    app.send_keys("<F4><TAB><TAB><TAB><TAB>>3.5<ENTER>")
    print("\n[3] Query-by-form on the student window: gpa > 3.5")
    print(app.screen_text())

    app.open_sql_window(Rect(0, 12, 98, 16))
    app.send_keys(
        "SELECT d.name, COUNT(*) AS n FROM students s "
        "JOIN departments d ON s.major_id = d.id GROUP BY d.name ORDER BY n DESC"
        "<ENTER>"
    )
    print("\n[4] An ad-hoc SQL window alongside the forms")
    print(app.screen_text())

    print("\nsession cost:", app.keys.total, "keystrokes,",
          app.wm.renderer.cells_transmitted, "cells transmitted")
    print("run the examples/ scripts and `pytest benchmarks/ --benchmark-only`")
    print("for the full reconstructed evaluation.")


if __name__ == "__main__":
    demo()
