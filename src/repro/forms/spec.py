"""Form specifications: the declarative description a form is built from.

A :class:`FormSpec` can be written by hand or derived automatically from a
view's schema (:mod:`repro.forms.generate`).  Specs are plain data — the
runtime interprets them; the window layer renders them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import FormSpecError
from repro.relational.types import ColumnType

#: Default field display widths per column type (1983 form conventions).
DEFAULT_WIDTHS = {
    ColumnType.INT: 8,
    ColumnType.FLOAT: 12,
    ColumnType.TEXT: 20,
    ColumnType.BOOL: 6,
    ColumnType.DATE: 10,
}


@dataclass
class PickList:
    """A foreign-key pick list: legal values come from parent_table.

    ``key_column`` supplies the stored value; ``label_column`` is shown to
    the user alongside it.
    """

    parent_table: str
    key_column: str
    label_column: Optional[str] = None


@dataclass
class FieldSpec:
    """One field of a form, bound to a column of the form's source.

    Auto-generated forms leave ``x`` as None (the window lays labels and
    fields out in two columns); painted forms (:mod:`repro.forms.paint`)
    position each field explicitly at (x, row) in the content area.
    """

    column: str
    label: str
    ctype: ColumnType
    width: int
    row: int  # content-relative layout row
    read_only: bool = False
    in_key: bool = False
    pick_list: Optional[PickList] = None
    x: Optional[int] = None  # explicit content-relative column (painted forms)
    #: validation clauses (enforced on save, before the engine sees values)
    required: bool = False
    minimum: Optional[object] = None
    maximum: Optional[object] = None
    pattern: Optional[str] = None  # LIKE pattern the text value must match
    #: a computed display field: a SQL scalar expression over the source's
    #: columns, evaluated per record; always read-only, never part of DML
    expression: Optional[str] = None

    def __post_init__(self) -> None:
        if self.width < 1:
            raise FormSpecError(f"field {self.column!r}: width must be >= 1")
        if self.row < 0:
            raise FormSpecError(f"field {self.column!r}: negative layout row")
        if self.x is not None and self.x < 0:
            raise FormSpecError(f"field {self.column!r}: negative x position")
        if self.expression is not None and self.in_key:
            raise FormSpecError(
                f"field {self.column!r}: a computed field cannot be a key"
            )

    @property
    def virtual(self) -> bool:
        """True for computed display fields (not stored columns)."""
        return self.expression is not None


@dataclass
class FormSpec:
    """A complete form: source relation, title, and field layout.

    ``decorations`` are literal text runs painted onto the content area at
    (x, row) — used by painted forms for captions, rules, and boxes.
    """

    name: str
    source: str  # table or view name
    title: str
    fields: List[FieldSpec] = field(default_factory=list)
    order_by: List[str] = field(default_factory=list)
    decorations: List[Tuple[int, int, str]] = field(default_factory=list)  # (x, row, text)

    def __post_init__(self) -> None:
        seen = set()
        for f in self.fields:
            if f.column in seen:
                raise FormSpecError(f"duplicate field for column {f.column!r}")
            seen.add(f.column)

    @property
    def painted(self) -> bool:
        """True if the layout uses explicit field positions."""
        return any(f.x is not None for f in self.fields) or bool(self.decorations)

    def field_for(self, column: str) -> FieldSpec:
        for f in self.fields:
            if f.column == column.lower():
                return f
        raise FormSpecError(f"form {self.name!r} has no field for column {column!r}")

    @property
    def columns(self) -> List[str]:
        """All field names, in layout order (including computed fields)."""
        return [f.column for f in self.fields]

    @property
    def data_columns(self) -> List[str]:
        """Stored-column fields only (what DML may touch)."""
        return [f.column for f in self.fields if not f.virtual]

    @property
    def layout_rows(self) -> int:
        """Number of content rows the field layout occupies."""
        field_rows = max((f.row for f in self.fields), default=0)
        decoration_rows = max((row for _x, row, _t in self.decorations), default=0)
        return 1 + max(field_rows, decoration_rows)

    @property
    def layout_width(self) -> int:
        """Content width a painted layout needs (0 for auto layouts)."""
        width = 0
        for f in self.fields:
            if f.x is not None:
                width = max(width, f.x + f.width)
        for x, _row, text in self.decorations:
            width = max(width, x + len(text))
        return width

    @property
    def label_width(self) -> int:
        return max((len(f.label) for f in self.fields), default=0)
