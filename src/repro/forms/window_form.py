"""FormWindow: projects a FormController onto window widgets.

The window owns one Label + TextField pair per form field, plus a mode line
at the bottom.  After every dispatched key it re-syncs widget texts and
read-only flags from the controller, so the screen always reflects the
controller's state.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.forms.runtime import FormController, Mode
from repro.forms.spec import FormSpec
from repro.relational.database import Database
from repro.windows.events import KeyEvent
from repro.windows.geometry import Rect
from repro.windows.screen import Attr
from repro.windows.widgets import Label, StatusBar, TextField
from repro.windows.window import Window

_PADDING = 2  # between label and field


class FormWindow(Window):
    """A window presenting one form."""

    def __init__(
        self,
        db: Database,
        spec: FormSpec,
        x: int = 0,
        y: int = 0,
        controller: Optional[FormController] = None,
    ) -> None:
        self.controller = controller or FormController(db, spec)
        spec = self.controller.spec
        if spec.painted:
            content_width = spec.layout_width
        else:
            label_width = spec.label_width
            field_width = max((f.width for f in spec.fields), default=10)
            content_width = label_width + _PADDING + field_width
        width = max(content_width + 2, len(spec.title) + 6, 24)
        height = spec.layout_rows + 3  # border (2) + mode line (1)
        super().__init__(spec.title, Rect(x, y, width, height))

        self.fields: Dict[str, TextField] = {}
        if spec.painted:
            for dec_x, dec_row, text in spec.decorations:
                self.add(Label(dec_x, dec_row, text))
        for field_spec in spec.fields:
            if field_spec.x is not None:
                field_x = field_spec.x
            else:
                self.add(
                    Label(0, field_spec.row, field_spec.label.ljust(spec.label_width))
                )
                field_x = spec.label_width + _PADDING
            text_field = TextField(
                field_x,
                field_spec.row,
                field_spec.width,
                on_change=self._make_on_change(field_spec.column),
            )
            self.fields[field_spec.column] = text_field
            self.add(text_field)
        self.mode_line = StatusBar(0, spec.layout_rows, self.content.width)
        self.add(self.mode_line)
        self._last_mode = self.controller.mode
        #: set by WowApp: callback(form_window, column, choices) opening a
        #: pick-list popup; None when the form runs headless.
        self.open_popup = None
        self.controller.on_record_change.append(self.sync)
        self.sync()

    def _make_on_change(self, column: str):
        def on_change(text: str) -> None:
            self.controller.set_field(column, text)

        return on_change

    # -- synchronisation -------------------------------------------------

    def sync(self) -> None:
        """Copy controller state into the widgets."""
        controller = self.controller
        if controller.mode is not self._last_mode:
            # Mode transitions home the cursor to the first field, so key
            # scripts are deterministic regardless of prior focus.
            self._last_mode = controller.mode
            if self.fields:
                first = next(iter(self.fields.values()))
                self.focus(first)
        for column, widget in self.fields.items():
            if widget.text != controller.field_texts[column]:
                widget.text = controller.field_texts[column]
                widget.cursor = len(widget.text)
                widget.overwrite_pending = True  # reloaded: next key replaces
            widget.read_only = not controller.editable(column)
        self.mode_line.set_message(controller.status_line())

    # -- events -----------------------------------------------------------

    def handle_key(self, event: KeyEvent) -> bool:
        if event.key == "F7" and self._try_open_pick_list():
            return True
        consumed = super().handle_key(event)
        if not consumed:
            consumed = self.controller.handle_key(event)
        self.sync()
        return consumed

    def _try_open_pick_list(self) -> bool:
        """Open a pick-list popup for the focused field, if applicable."""
        if self.open_popup is None:
            return False
        widget = self.focused_widget
        column = next(
            (col for col, field in self.fields.items() if field is widget), None
        )
        if column is None:
            return False
        if not self.controller.editable(column):
            return False
        choices = self.controller.pick_values(column)
        if not choices:
            return False
        self.open_popup(self, column, choices)
        return True

    def accept_pick(self, column: str, value) -> None:
        """Receive a pick-list choice into *column* (called by the popup)."""
        from repro.relational.types import format_value

        text = format_value(value)
        self.fields[column].set_text(text)
        self.controller.set_field(column, text)
        self.sync()
