"""Master-detail linking between forms: several windows on the world.

A :class:`FormLink` ties a detail form to a master form: whenever the master
moves to another record, the detail form's rowset is re-filtered to the rows
whose link columns equal the master's current values (classically, the
detail's foreign key = the master's primary key).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.forms.runtime import FormController
from repro.relational import expr as E


class FormLink:
    """Keep *detail* filtered by *master*'s current record."""

    def __init__(
        self,
        master: FormController,
        detail: FormController,
        on: Sequence[Tuple[str, str]],
    ) -> None:
        """*on* is a list of (master_column, detail_column) pairs."""
        if not on:
            raise ValueError("a form link needs at least one column pair")
        self.master = master
        self.detail = detail
        self.on = list(on)
        for master_column, _detail_column in self.on:
            master.spec.field_for(master_column)  # validate
        for _master_column, detail_column in self.on:
            detail.spec.field_for(detail_column)
        master.on_record_change.append(self.propagate)
        self.propagate()

    def propagate(self) -> None:
        """Recompute the detail filter from the master's current record."""
        row = self.master.current_row
        if row is None:
            # No master record: the detail shows nothing (1 = 0).
            self.detail.extra_filter = E.BinOp("=", E.Literal(1), E.Literal(0))
        else:
            conjuncts: List[E.Expr] = []
            for master_column, detail_column in self.on:
                value = row[self.master.spec.columns.index(master_column)]
                ref = E.ColumnRef(detail_column)
                if value is None:
                    conjuncts.append(E.IsNull(ref))
                else:
                    conjuncts.append(E.BinOp("=", ref, E.Literal(value)))
            self.detail.extra_filter = E.conjoin(conjuncts)
        self.detail.position = 0
        self.detail.refresh()

    def unlink(self) -> None:
        """Detach the link and clear the detail filter."""
        self.master.on_record_change.remove(self.propagate)
        self.detail.extra_filter = None
        self.detail.refresh()
