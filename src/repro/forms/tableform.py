"""The tabular form: many records in a grid, edited cell by cell.

The complement of the record-at-a-time form (and the ancestor of the
datasheet view): rows in a grid, a cell cursor, and in-place editing.

Keys::

    arrows / PGUP / PGDN     move the cell cursor
    TAB / BACKTAB            next / previous column
    any printable character  start editing the cell (type-over)
    ENTER                    commit the cell edit (writes through at once,
                             or into the pending insert row)
    ESC                      cancel the cell edit / abandon pending insert
    F3                       start a new (pending) bottom row
    F2                       save the pending insert row
    F6                       delete the current row
    F5                       requery
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.errors import FormModeError
from repro.forms.generate import source_metadata
from repro.relational import expr as E
from repro.relational.database import Database
from repro.relational.types import format_value, parse_input
from repro.windows.events import Key, KeyEvent
from repro.windows.geometry import Rect
from repro.windows.screen import Attr, ScreenBuffer
from repro.windows.widgets import StatusBar, Widget
from repro.windows.window import Window

_GRID_WIDTHS = {
    "INT": 7,
    "FLOAT": 10,
    "TEXT": 14,
    "BOOL": 6,
    "DATE": 10,
}


class _CellGrid(Widget):
    """The grid surface; all behaviour lives on the owning TableFormWindow."""

    focusable = True

    def __init__(self, owner: "TableFormWindow", rect: Rect) -> None:
        super().__init__(rect)
        self.owner = owner

    def handle_key(self, event: KeyEvent) -> bool:
        return self.owner.grid_key(event)

    def render(self, screen: ScreenBuffer, dx: int, dy: int) -> None:
        self.owner.render_grid(screen, dx, dy, self.rect)


class TableFormWindow(Window):
    """A window showing a relation as an editable grid."""

    def __init__(self, db: Database, source: str, rect: Rect) -> None:
        super().__init__(source, rect)
        self.db = db
        self.source = source
        self.schema = db.catalog.schema_of(source)
        self.metadata = source_metadata(db, source)
        self.columns = list(self.schema.column_names)
        self.widths = [
            max(_GRID_WIDTHS[str(self.schema.column(c).ctype)], len(c))
            for c in self.columns
        ]
        self.rows: List[Tuple[Any, ...]] = []
        self.cursor_row = 0
        self.cursor_col = 0
        self.scroll = 0
        self.edit_buffer: Optional[str] = None
        self.pending_insert: Optional[Dict[str, Any]] = None
        self.message = ""
        content = self.content
        self.grid = _CellGrid(self, Rect(0, 0, content.width, content.height - 1))
        self.add(self.grid)
        self.status = StatusBar(0, content.height - 1, content.width)
        self.add(self.status)
        self.refresh()

    # -- data ----------------------------------------------------------------

    @property
    def body_height(self) -> int:
        return self.grid.rect.height - 1  # minus header

    @property
    def display_row_count(self) -> int:
        return len(self.rows) + (1 if self.pending_insert is not None else 0)

    def refresh(self) -> None:
        sql = f"SELECT {', '.join(self.columns)} FROM {self.source}"
        order = self.metadata.key_columns or [self.columns[0]]
        sql += " ORDER BY " + ", ".join(order)
        self.rows = self.db.query(sql)
        self.cursor_row = min(self.cursor_row, max(0, self.display_row_count - 1))
        self._fix_scroll()
        self._update_status()

    def current_row(self) -> Optional[Tuple[Any, ...]]:
        if self.pending_insert is not None and self.cursor_row == len(self.rows):
            return None
        if not self.rows or self.cursor_row >= len(self.rows):
            return None
        return self.rows[self.cursor_row]

    def _key_predicate(self, row: Tuple[Any, ...]) -> E.Expr:
        keys = self.metadata.key_columns or self.columns
        conjuncts: List[E.Expr] = []
        for column in keys:
            value = row[self.columns.index(column)]
            ref = E.ColumnRef(column)
            conjuncts.append(
                E.IsNull(ref) if value is None else E.BinOp("=", ref, E.Literal(value))
            )
        return E.conjoin(conjuncts)

    # -- key handling ----------------------------------------------------

    def grid_key(self, event: KeyEvent) -> bool:
        key = event.key
        if self.edit_buffer is not None:
            return self._editing_key(event)
        if key == Key.UP:
            self._move(-1, 0)
            return True
        if key == Key.DOWN:
            self._move(1, 0)
            return True
        if key == Key.LEFT or key == Key.BACKTAB:
            self._move(0, -1)
            return True
        if key == Key.RIGHT or key == Key.TAB:
            self._move(0, 1)
            return True
        if key == Key.PGUP:
            self._move(-self.body_height, 0)
            return True
        if key == Key.PGDN:
            self._move(self.body_height, 0)
            return True
        if key == Key.HOME:
            self.cursor_row = 0
            self._fix_scroll()
            self._update_status()
            return True
        if key == Key.END:
            self.cursor_row = max(0, self.display_row_count - 1)
            self._fix_scroll()
            self._update_status()
            return True
        if event.printable:
            self.edit_buffer = event.key  # type-over: start fresh
            self._update_status()
            return True
        if key == Key.F3:
            self._start_insert()
            return True
        if key == Key.F2:
            self._save_insert()
            return True
        if key == Key.F6:
            self._delete_row()
            return True
        if key == Key.F5:
            self.refresh()
            self.message = "requeried"
            self._update_status()
            return True
        if key == Key.ESC and self.pending_insert is not None:
            self.pending_insert = None
            self.cursor_row = min(self.cursor_row, max(0, self.display_row_count - 1))
            self.message = "insert abandoned"
            self._update_status()
            return True
        return False

    def _editing_key(self, event: KeyEvent) -> bool:
        if event.printable:
            self.edit_buffer += event.key
        elif event.key == Key.BACKSPACE:
            self.edit_buffer = self.edit_buffer[:-1]
        elif event.key == Key.ENTER:
            self._commit_cell()
        elif event.key == Key.ESC:
            self.edit_buffer = None
            self.message = "cell edit cancelled"
        else:
            return False
        self._update_status()
        return True

    # -- operations ------------------------------------------------------

    def _move(self, drow: int, dcol: int) -> None:
        self.cursor_row = max(0, min(self.cursor_row + drow, self.display_row_count - 1))
        self.cursor_col = max(0, min(self.cursor_col + dcol, len(self.columns) - 1))
        self._fix_scroll()
        self._update_status()

    def _fix_scroll(self) -> None:
        if self.cursor_row < self.scroll:
            self.scroll = self.cursor_row
        elif self.cursor_row >= self.scroll + self.body_height:
            self.scroll = self.cursor_row - self.body_height + 1

    def _commit_cell(self) -> None:
        column = self.columns[self.cursor_col]
        text = self.edit_buffer or ""
        self.edit_buffer = None
        try:
            value = parse_input(text, self.schema.column(column).ctype)
        except Exception as exc:
            self.message = f"error: {exc}"
            return
        if self.pending_insert is not None and self.cursor_row == len(self.rows):
            self.pending_insert[column] = value
            self.message = f"{column} staged; F2 saves the row"
            return
        row = self.current_row()
        if row is None:
            self.message = "no record here"
            return
        try:
            count = self.db.update(self.source, {column: value}, self._key_predicate(row))
        except Exception as exc:
            self.message = f"error: {exc}"
            return
        self.refresh()
        self.message = f"{count} record(s) updated"

    def _start_insert(self) -> None:
        if self.pending_insert is not None:
            raise FormModeError("an insert row is already pending")
        self.pending_insert = {}
        self.cursor_row = len(self.rows)
        self.cursor_col = 0
        self._fix_scroll()
        self.message = "new row: type values, ENTER per cell, F2 saves"
        self._update_status()

    def _save_insert(self) -> None:
        if self.pending_insert is None:
            self.message = "nothing to save (F3 starts a new row)"
            self._update_status()
            return
        try:
            self.db.insert(self.source, self.pending_insert)
        except Exception as exc:
            self.message = f"error: {exc}"
            self._update_status()
            return
        self.pending_insert = None
        self.refresh()
        self.message = "record inserted"
        self._update_status()

    def _delete_row(self) -> None:
        row = self.current_row()
        if row is None:
            self.message = "no record to delete"
            self._update_status()
            return
        try:
            count = self.db.delete(self.source, self._key_predicate(row))
        except Exception as exc:
            self.message = f"error: {exc}"
            self._update_status()
            return
        self.refresh()
        self.message = f"{count} record(s) deleted"
        self._update_status()

    def _update_status(self) -> None:
        position = f"{min(self.cursor_row + 1, self.display_row_count)}/{self.display_row_count}"
        column = self.columns[self.cursor_col]
        if self.edit_buffer is not None:
            text = f"EDIT {column} = {self.edit_buffer}_"
        elif self.pending_insert is not None:
            text = f"INSERT {position} {column}"
        else:
            text = f"GRID {position} {column}"
        if self.message:
            text += f" | {self.message}"
        self.status.set_message(text)

    # -- rendering -----------------------------------------------------------

    def render_grid(self, screen: ScreenBuffer, dx: int, dy: int, rect: Rect) -> None:
        x0 = rect.x + dx
        y0 = rect.y + dy
        # Header.
        x = x0
        for column, width in zip(self.columns, self.widths):
            screen.write(x, y0, column[:width].ljust(width), Attr.BOLD | Attr.UNDERLINE)
            x += width + 1
        # Body.
        for line in range(self.body_height):
            row_index = self.scroll + line
            y = y0 + 1 + line
            if row_index < len(self.rows):
                values = [format_value(v) for v in self.rows[row_index]]
            elif self.pending_insert is not None and row_index == len(self.rows):
                values = [
                    format_value(self.pending_insert.get(c)) if c in self.pending_insert else "*"
                    for c in self.columns
                ]
            else:
                continue
            x = x0
            for col_index, (value, width) in enumerate(zip(values, self.widths)):
                attr = Attr.NORMAL
                if row_index == self.cursor_row and self.focused_cell() == col_index:
                    attr = Attr.REVERSE
                    if self.edit_buffer is not None:
                        value = self.edit_buffer
                screen.write(x, y, value[:width].ljust(width), attr)
                x += width + 1

    def focused_cell(self) -> int:
        return self.cursor_col
