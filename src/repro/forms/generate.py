"""Automatic form generation from a relation's schema (Table 2's subject).

Given any table or view, derive a complete, immediately usable form:

* one field per column, one layout row per field;
* labels from column names;
* widths from column types;
* primary-key fields flagged (read-only while editing an existing record);
* foreign-key columns get pick lists referencing the parent table, with the
  parent's first TEXT column as the human-readable label.

For views, key and FK information is recovered through the updatable-view
analysis when the view is updatable; non-updatable views yield a read-only
browse form.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import ViewNotUpdatable
from repro.forms.spec import DEFAULT_WIDTHS, FieldSpec, FormSpec, PickList
from repro.relational.database import Database
from repro.relational.table import Table
from repro.relational.types import ColumnType
from repro.views.definition import ViewDefinition
from repro.views.update import analyze_updatability


@dataclass
class FormGenStats:
    """What automatic generation produced (reported in Table 2)."""

    source: str
    fields: int
    layout_rows: int
    pick_lists: int
    key_fields: int
    read_only: bool


def generate_form(
    db: Database, source: str, name: Optional[str] = None
) -> FormSpec:
    """Derive a default FormSpec for table or view *source*."""
    spec, _stats = generate_form_with_stats(db, source, name)
    return spec


@dataclass
class SourceMetadata:
    """Schema-derived facts a form needs about its source relation."""

    key_columns: List[str]
    pick_lists: dict  # column name -> PickList
    read_only: bool


def source_metadata(db: Database, source: str) -> SourceMetadata:
    """Key columns, FK pick lists, and updatability of a table or view.

    Shared by automatic generation and painted forms, so both kinds of
    form behave identically modulo layout.
    """
    entity = db.catalog.resolve(source)
    schema = entity.schema
    key_columns: List[str] = []
    fk_of: dict = {}
    read_only_form = False
    if isinstance(entity, Table):
        key_columns = list(schema.primary_key)
        for fk in schema.foreign_keys:
            if len(fk.columns) == 1:
                fk_of[fk.columns[0]] = _pick_list_for(
                    db, fk.parent_table, fk.parent_columns[0]
                )
    else:
        assert isinstance(entity, ViewDefinition)
        try:
            info = analyze_updatability(entity, db.catalog)
        except ViewNotUpdatable:
            read_only_form = True
        else:
            base_pk = info.base.schema.primary_key
            inverse = {base_col: view_col for view_col, base_col in info.column_map.items()}
            if base_pk and all(c in inverse for c in base_pk):
                key_columns = [inverse[c] for c in base_pk]
            for fk in info.base.schema.foreign_keys:
                if len(fk.columns) == 1 and fk.columns[0] in inverse:
                    fk_of[inverse[fk.columns[0]]] = _pick_list_for(
                        db, fk.parent_table, fk.parent_columns[0]
                    )
    return SourceMetadata(key_columns, fk_of, read_only_form)


def generate_form_with_stats(
    db: Database, source: str, name: Optional[str] = None
):
    """Like :func:`generate_form` but also returns :class:`FormGenStats`."""
    schema = db.catalog.schema_of(source)
    metadata = source_metadata(db, source)
    key_columns = metadata.key_columns
    fk_of = metadata.pick_lists
    read_only_form = metadata.read_only

    fields = []
    for row, column in enumerate(schema.columns):
        fields.append(
            FieldSpec(
                column=column.name,
                label=column.name.replace("_", " ").capitalize(),
                ctype=column.ctype,
                width=DEFAULT_WIDTHS[column.ctype],
                row=row,
                read_only=read_only_form,
                in_key=column.name in key_columns,
                pick_list=fk_of.get(column.name),
            )
        )

    spec = FormSpec(
        name=name or f"{schema.name}_form",
        source=schema.name,
        title=schema.name.replace("_", " ").title(),
        fields=fields,
        order_by=key_columns or [schema.columns[0].name],
    )
    stats = FormGenStats(
        source=schema.name,
        fields=len(fields),
        layout_rows=spec.layout_rows,
        pick_lists=sum(1 for f in fields if f.pick_list is not None),
        key_fields=sum(1 for f in fields if f.in_key),
        read_only=read_only_form,
    )
    return spec, stats


def _pick_list_for(db: Database, parent_table: str, key_column: str) -> PickList:
    """Build a pick list: the parent's first TEXT column is the label."""
    parent_schema = db.catalog.schema_of(parent_table)
    label = next(
        (c.name for c in parent_schema.columns if c.ctype is ColumnType.TEXT),
        None,
    )
    return PickList(parent_table=parent_table, key_column=key_column, label_column=label)
