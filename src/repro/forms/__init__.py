"""The forms core: specs, automatic generation, the runtime, and QBF.

A *form* is a 2-D arrangement of fields bound to the columns of a relational
view (or base table).  The runtime (:class:`FormController`) implements the
four classic modes — BROWSE, EDIT, INSERT, QUERY — and translates every
user action into relational operations, including updates through views.
"""

from repro.forms.generate import FormGenStats, generate_form
from repro.forms.linking import FormLink
from repro.forms.qbf import parse_criterion
from repro.forms.runtime import FormController, Mode
from repro.forms.spec import FieldSpec, FormSpec
from repro.forms.window_form import FormWindow

__all__ = [
    "FieldSpec",
    "FormController",
    "FormGenStats",
    "FormLink",
    "FormSpec",
    "FormWindow",
    "Mode",
    "generate_form",
    "parse_criterion",
]
