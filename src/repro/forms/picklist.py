"""Pick-list popup: choose a foreign-key value from the parent relation.

Pressing F7 on a pick-list field (while editing, inserting, or querying)
opens a small window listing the parent table's keys and labels; ENTER
picks the highlighted value into the field, ESC cancels.  This is the
windowed answer to "what are the legal department numbers?" — the user
never has to leave the form.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Tuple

from repro.relational.types import format_value
from repro.windows.events import Key, KeyEvent
from repro.windows.geometry import Rect
from repro.windows.widgets import GridView
from repro.windows.window import Window

MAX_VISIBLE_ROWS = 8


def pick_sql(pick) -> str:
    """The SELECT behind a pick list.

    The text is a pure function of the (immutable) pick-list spec, so the
    runtime can prepare it once and hit the plan cache on every F7.
    """
    if pick.label_column and pick.label_column != pick.key_column:
        return (
            f"SELECT {pick.key_column}, {pick.label_column} "
            f"FROM {pick.parent_table} ORDER BY {pick.key_column}"
        )
    return (
        f"SELECT {pick.key_column} "
        f"FROM {pick.parent_table} ORDER BY {pick.key_column}"
    )


class PickListWindow(Window):
    """A modal-ish popup offering (value, label) choices."""

    def __init__(
        self,
        choices: List[Tuple[Any, str]],
        on_choice: Callable[[Any], None],
        on_cancel: Callable[[], None],
        x: int = 10,
        y: int = 4,
        title: str = "Pick",
    ) -> None:
        self.choices = list(choices)
        self.on_choice = on_choice
        self.on_cancel = on_cancel
        value_width = max(
            max((len(format_value(v)) for v, _l in self.choices), default=4), 3
        )
        label_width = max(
            max((len(l) for _v, l in self.choices), default=6), 5
        )
        grid_height = min(len(self.choices), MAX_VISIBLE_ROWS) + 1  # + header
        width = max(value_width + label_width + 5, len(title) + 6, 16)
        super().__init__(title, Rect(x, y, width, grid_height + 2))
        self.grid = GridView(
            Rect(0, 0, self.content.width, grid_height),
            [("key", value_width), ("label", label_width)],
            on_activate=self._activate,
        )
        self.grid.set_rows(
            [(format_value(v), l) for v, l in self.choices]
        )
        self.add(self.grid)

    def _activate(self, index: int) -> None:
        self.on_choice(self.choices[index][0])

    def handle_key(self, event: KeyEvent) -> bool:
        if event.key == Key.ESC:
            self.on_cancel()
            return True
        return super().handle_key(event)
