"""The form runtime: modes, navigation, and DML through the form's source.

:class:`FormController` is deliberately headless — it holds the form state
(current rowset, position, field texts, mode) and performs all database
work; :class:`~repro.forms.window_form.FormWindow` merely projects it onto
widgets.  This split keeps the interaction semantics unit-testable without
a screen.

Mode machine (classic 1983 forms interface)::

    BROWSE --F2--> EDIT   --F2 (save)--> BROWSE
    BROWSE --F3--> INSERT --F2 (save)--> BROWSE
    BROWSE --F4--> QUERY  --ENTER/F2 (execute)--> BROWSE
    EDIT/INSERT/QUERY --ESC (cancel)--> BROWSE
    BROWSE: UP/DOWN/PGUP/PGDN/HOME/END navigate, F5 requery, F6 delete.
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import FieldValidationError, FormModeError
from repro.forms.picklist import pick_sql
from repro.forms.qbf import build_predicate
from repro.forms.spec import FormSpec
from repro.obs import get_registry
from repro.relational import expr as E
from repro.relational.database import Database, PreparedStatement
from repro.relational.types import format_value, parse_input
from repro.windows.events import Key, KeyEvent


class Mode(enum.Enum):
    BROWSE = "BROWSE"
    EDIT = "EDIT"
    INSERT = "INSERT"
    QUERY = "QUERY"


class FormController:
    """All form behaviour over a Database, with no UI dependency."""

    #: distinct statement shapes kept prepared per form (LRU beyond this)
    _MAX_PREPARED = 16

    def __init__(self, db: Database, spec: FormSpec) -> None:
        self.db = db
        self.spec = spec
        self.mode = Mode.BROWSE
        self.rows: List[Tuple[Any, ...]] = []
        self.position = 0
        self.field_texts: Dict[str, str] = {f.column: "" for f in spec.fields}
        self.message = ""
        #: predicate imposed from outside (master-detail linking)
        self.extra_filter: Optional[E.Expr] = None
        #: predicate from the last executed query-by-form
        self.query_filter: Optional[E.Expr] = None
        self.on_record_change: List[Callable[[], None]] = []
        #: prepared handles keyed by SQL text — filter *values* become ``?``
        #: parameters, so scrolling a linked master or re-running QBF with
        #: new criteria values reuses one statement shape (and its plan).
        self._prepared: "OrderedDict[str, PreparedStatement]" = OrderedDict()
        self.refresh()

    # -- data ----------------------------------------------------------------

    def refresh(self, keep_position: bool = False) -> None:
        """Re-run the form's query and reload the current record."""
        key = self._current_key() if keep_position and self.rows else None
        sql, params = self._select_sql()
        with self.db.tracer.span(
            "form.refresh", {"source": self.spec.source}
        ) as span:
            self.rows = self._prepared_stmt(sql).query(params)
            span.tag("rows", len(self.rows))
        get_registry().add("forms.refreshes")
        if key is not None:
            for index, row in enumerate(self.rows):
                if self._key_of(row) == key:
                    self.position = index
                    break
            else:
                self.position = 0
        self.position = min(self.position, max(0, len(self.rows) - 1))
        self._load_current()

    def _select_sql(self) -> Tuple[str, Tuple[Any, ...]]:
        """The form's SELECT with filter constants lifted out as parameters."""
        items = []
        for field in self.spec.fields:
            if field.virtual:
                items.append(f"({field.expression}) AS {field.column}")
            else:
                items.append(field.column)
        sql = f"SELECT {', '.join(items)} FROM {self.spec.source}"
        conjuncts = []
        if self.query_filter is not None:
            conjuncts.extend(E.split_conjuncts(self.query_filter))
        if self.extra_filter is not None:
            conjuncts.extend(E.split_conjuncts(self.extra_filter))
        predicate = E.conjoin(conjuncts)
        params: List[Any] = []
        if predicate is not None:
            predicate = E.extract_params(predicate, params)
            sql += f" WHERE {predicate.to_sql()}"
        if self.spec.order_by:
            sql += " ORDER BY " + ", ".join(self.spec.order_by)
        return sql, tuple(params)

    def _prepared_stmt(self, sql: str) -> PreparedStatement:
        """The prepared handle for *sql*, kept in a small per-form LRU."""
        stmt = self._prepared.get(sql)
        if stmt is None:
            stmt = self.db.prepare(sql)
            self._prepared[sql] = stmt
            while len(self._prepared) > self._MAX_PREPARED:
                self._prepared.popitem(last=False)
        else:
            self._prepared.move_to_end(sql)
        return stmt

    @property
    def current_row(self) -> Optional[Tuple[Any, ...]]:
        if not self.rows:
            return None
        return self.rows[self.position]

    @property
    def record_count(self) -> int:
        return len(self.rows)

    def _load_current(self) -> None:
        row = self.current_row
        for index, field in enumerate(self.spec.fields):
            self.field_texts[field.column] = (
                format_value(row[index]) if row is not None else ""
            )
        for callback in self.on_record_change:
            callback()

    # -- keys ---------------------------------------------------------------

    def _key_fields(self) -> List[str]:
        keys = [f.column for f in self.spec.fields if f.in_key]
        return keys or self.spec.data_columns

    def _key_of(self, row: Tuple[Any, ...]) -> Tuple[Any, ...]:
        positions = [self.spec.columns.index(c) for c in self._key_fields()]
        return tuple(row[p] for p in positions)

    def _current_key(self) -> Tuple[Any, ...]:
        return self._key_of(self.rows[self.position])

    def _key_predicate(self, row: Tuple[Any, ...]) -> E.Expr:
        """An expression identifying *row* by its key fields."""
        conjuncts: List[E.Expr] = []
        for column in self._key_fields():
            value = row[self.spec.columns.index(column)]
            ref = E.ColumnRef(column)
            if value is None:
                conjuncts.append(E.IsNull(ref))
            else:
                conjuncts.append(E.BinOp("=", ref, E.Literal(value)))
        return E.conjoin(conjuncts)

    # -- navigation ------------------------------------------------------

    def goto(self, index: int) -> None:
        if self.mode is not Mode.BROWSE:
            raise FormModeError("navigation only in BROWSE mode")
        if self.rows:
            self.position = max(0, min(index, len(self.rows) - 1))
            self._load_current()

    def next_record(self) -> None:
        self.goto(self.position + 1)

    def prev_record(self) -> None:
        self.goto(self.position - 1)

    def first_record(self) -> None:
        self.goto(0)

    def last_record(self) -> None:
        self.goto(len(self.rows) - 1)

    # -- mode transitions ----------------------------------------------------

    def _reject_if_read_only(self) -> bool:
        """True (with a banner message) when the database is degraded."""
        if self.db.read_only:
            self.message = (
                "database is READ-ONLY (corruption detected) — "
                "browsing still works"
            )
            return True
        return False

    def begin_edit(self) -> None:
        if self.mode is not Mode.BROWSE:
            raise FormModeError(f"cannot edit from {self.mode.value}")
        if self._reject_if_read_only():
            return
        if self.current_row is None:
            self.message = "no record to edit"
            return
        self.mode = Mode.EDIT
        self.message = "editing — F2 saves, ESC cancels"

    def begin_insert(self) -> None:
        if self.mode is not Mode.BROWSE:
            raise FormModeError(f"cannot insert from {self.mode.value}")
        if self._reject_if_read_only():
            return
        self.mode = Mode.INSERT
        for field in self.spec.fields:
            self.field_texts[field.column] = ""
        self.message = "new record — F2 saves, ESC cancels"

    def begin_query(self) -> None:
        if self.mode is not Mode.BROWSE:
            raise FormModeError(f"cannot query from {self.mode.value}")
        self.mode = Mode.QUERY
        for field in self.spec.fields:
            self.field_texts[field.column] = ""
        self.message = "enter criteria — ENTER executes, ESC cancels"

    def cancel(self) -> None:
        if self.mode is Mode.BROWSE:
            if self.query_filter is not None:
                self.query_filter = None  # ESC in browse clears the filter
                self.refresh()
                self.message = "filter cleared"
            return
        self.mode = Mode.BROWSE
        self._load_current()
        self.message = "cancelled"

    # -- field access --------------------------------------------------------

    def set_field(self, column: str, text: str) -> None:
        if column not in self.field_texts:
            raise FieldValidationError(f"no field {column!r} on this form")
        self.field_texts[column] = text

    def editable(self, column: str) -> bool:
        """May the user type into *column* right now?"""
        field = self.spec.field_for(column)
        if field.virtual:
            return False  # computed fields are pure display
        if field.read_only:
            return self.mode is Mode.QUERY  # criteria allowed even on RO forms
        if self.mode is Mode.BROWSE:
            return False
        if self.mode is Mode.EDIT and field.in_key:
            return False  # keys are immutable through EDIT
        return True

    def pick_values(self, column: str) -> List[Tuple[Any, str]]:
        """The (value, label) choices for a pick-list field."""
        field = self.spec.field_for(column)
        if field.pick_list is None:
            return []
        pick = field.pick_list
        rows = self._prepared_stmt(pick_sql(pick)).query()
        if pick.label_column and pick.label_column != pick.key_column:
            return [(row[0], str(row[1])) for row in rows]
        return [(row[0], format_value(row[0])) for row in rows]

    # -- actions -----------------------------------------------------------

    def save(self) -> bool:
        """Commit EDIT or INSERT; returns True on success."""
        if self.mode is Mode.EDIT:
            return self._save_edit()
        if self.mode is Mode.INSERT:
            return self._save_insert()
        raise FormModeError(f"nothing to save in {self.mode.value}")

    def _typed_values(self, only_editable: bool) -> Dict[str, Any]:
        values: Dict[str, Any] = {}
        for field in self.spec.fields:
            if field.virtual:
                continue
            if only_editable and not self.editable(field.column):
                continue
            text = self.field_texts[field.column]
            value = parse_input(text, field.ctype)
            self._validate_field(field, value, text)
            values[field.column] = value
        return values

    @staticmethod
    def _validate_field(field, value: Any, text: str) -> None:
        """Enforce the field's declarative validation clauses."""
        from repro.relational.expr import Like
        from repro.relational.types import compare

        if value is None:
            if field.required:
                raise FieldValidationError(f"{field.label or field.column} is required")
            return
        if field.minimum is not None and compare(value, field.minimum) == -1:
            raise FieldValidationError(
                f"{field.column} must be >= {field.minimum}"
            )
        if field.maximum is not None and compare(value, field.maximum) == 1:
            raise FieldValidationError(
                f"{field.column} must be <= {field.maximum}"
            )
        if field.pattern is not None:
            import re

            from repro.relational.expr import like_to_regex

            if re.match(like_to_regex(field.pattern), text) is None:
                raise FieldValidationError(
                    f"{field.column} must match {field.pattern!r}"
                )

    def _save_edit(self) -> bool:
        row = self.current_row
        try:
            changes = self._typed_values(only_editable=True)
        except Exception as exc:
            self.message = f"error: {exc}"
            return False
        where = self._key_predicate(row)
        # The save span covers the full view-update round trip: the DML
        # through the (possibly view) source plus the requery that follows.
        with self.db.tracer.span("form.save", {"source": self.spec.source, "kind": "edit"}):
            try:
                count = self.db.update(self.spec.source, changes, where)
            except Exception as exc:
                self.message = f"error: {exc}"
                return False
            self.mode = Mode.BROWSE
            self.refresh(keep_position=True)
        get_registry().add("forms.saves")
        self.message = f"{count} record(s) updated"
        return True

    def _save_insert(self) -> bool:
        try:
            values = {
                column: value
                for column, value in self._typed_values(only_editable=False).items()
                if value is not None
            }
        except Exception as exc:
            self.message = f"error: {exc}"
            return False
        with self.db.tracer.span(
            "form.save", {"source": self.spec.source, "kind": "insert"}
        ):
            try:
                self.db.insert(self.spec.source, values)
            except Exception as exc:
                self.message = f"error: {exc}"
                return False
            self.mode = Mode.BROWSE
            self.refresh()
        get_registry().add("forms.saves")
        # Jump to the new record if we can identify it by key.
        key_fields = self._key_fields()
        if all(values.get(c) is not None for c in key_fields):
            wanted = tuple(values[c] for c in key_fields)
            for index, row in enumerate(self.rows):
                if self._key_of(row) == wanted:
                    self.position = index
                    self._load_current()
                    break
        self.message = "record inserted"
        return True

    def execute_query(self) -> bool:
        """Run the QBF criteria currently typed into the fields."""
        if self.mode is not Mode.QUERY:
            raise FormModeError("execute_query outside QUERY mode")
        try:
            self.query_filter = build_predicate(
                [
                    (f.column, self.field_texts[f.column], f.ctype)
                    for f in self.spec.fields
                    if not f.virtual
                ]
            )
        except FieldValidationError as exc:
            self.message = f"error: {exc}"
            return False
        self.mode = Mode.BROWSE
        self.position = 0
        self.refresh()
        self.message = f"{len(self.rows)} record(s) match"
        return True

    def cycle_sort(self) -> None:
        """F8: order the rowset by the next data column (wraps around)."""
        columns = self.spec.data_columns
        if not columns:
            return
        current = self.spec.order_by[0] if self.spec.order_by else columns[0]
        try:
            position = columns.index(current)
        except ValueError:
            position = -1
        next_column = columns[(position + 1) % len(columns)]
        self.spec.order_by = [next_column]
        self.position = 0
        self.refresh()
        self.message = f"ordered by {next_column}"

    def delete_record(self) -> bool:
        if self.mode is not Mode.BROWSE:
            raise FormModeError("delete only in BROWSE mode")
        if self._reject_if_read_only():
            return False
        row = self.current_row
        if row is None:
            self.message = "no record to delete"
            return False
        with self.db.tracer.span(
            "form.delete", {"source": self.spec.source}
        ):
            try:
                count = self.db.delete(self.spec.source, self._key_predicate(row))
            except Exception as exc:
                self.message = f"error: {exc}"
                return False
            self.refresh()
        get_registry().add("forms.deletes")
        self.message = f"{count} record(s) deleted"
        return True

    # -- key dispatch ---------------------------------------------------------

    def handle_key(self, event: KeyEvent) -> bool:
        """Form-level keys (called after field widgets decline the event)."""
        key = event.key
        if self.mode is Mode.BROWSE:
            if key in (Key.DOWN, Key.PGDN):
                self.next_record()
                return True
            if key in (Key.UP, Key.PGUP):
                self.prev_record()
                return True
            if key == Key.HOME:
                self.first_record()
                return True
            if key == Key.END:
                self.last_record()
                return True
            if key == Key.F2:
                self.begin_edit()
                return True
            if key == Key.F3:
                self.begin_insert()
                return True
            if key == Key.F4:
                self.begin_query()
                return True
            if key == Key.F5:
                self.refresh(keep_position=True)
                self.message = "requeried"
                return True
            if key == Key.F8:
                self.cycle_sort()
                return True
            if key == Key.F6:
                self.delete_record()
                return True
            if key == Key.ESC:
                self.cancel()
                return True
            return False
        if self.mode in (Mode.EDIT, Mode.INSERT):
            if key == Key.F2:
                self.save()
                return True
            if key == Key.ESC:
                self.cancel()
                return True
            return False
        if self.mode is Mode.QUERY:
            if key in (Key.ENTER, Key.F2):
                self.execute_query()
                return True
            if key == Key.ESC:
                self.cancel()
                return True
            return False
        return False  # pragma: no cover

    def status_line(self) -> str:
        """The text the mode line shows."""
        if self.rows:
            position = f"{self.position + 1}/{len(self.rows)}"
        else:
            position = "0/0"
        filtered = " [filtered]" if self.query_filter is not None else ""
        linked = " [linked]" if self.extra_filter is not None else ""
        banner = "[READ-ONLY] " if self.db.read_only else ""
        text = f"{banner}{self.mode.value} {position}{filtered}{linked}"
        if self.message:
            text += f" | {self.message}"
        return text
