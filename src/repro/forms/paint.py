"""Painted forms: define a form by drawing its screen as text.

This is how 1983 application builders made forms: paint the screen, mark
the fields.  A template is a multi-line string; everything is literal
decoration except field markers::

    Student no: [id     ]     Year: [year]
    Name:       [name                    ]
    GPA:        [gpa   ]

A marker is ``[column<padding>]``: the column name (letters, digits,
underscores), then optional spaces, dots, or underscores to widen the
field; the field's display width is the distance between the brackets.
The field's position is the bracket's position.  Field metadata (type,
key-ness, FK pick lists, read-only) comes from the same schema analysis
automatic generation uses, so a painted form behaves identically to a
generated one — only the layout differs.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.errors import FormSpecError
from repro.forms.generate import source_metadata
from repro.forms.spec import FieldSpec, FormSpec
from repro.relational.database import Database

_MARKER = re.compile(r"\[([a-z_][a-z0-9_]*)[ ._]*\]", re.IGNORECASE)


def paint_form(
    db: Database,
    source: str,
    template: str,
    name: Optional[str] = None,
    title: Optional[str] = None,
) -> FormSpec:
    """Parse a painted *template* into a FormSpec bound to *source*."""
    schema = db.catalog.schema_of(source)
    metadata = source_metadata(db, source)

    fields: List[FieldSpec] = []
    decorations: List[Tuple[int, int, str]] = []
    lines = template.strip("\n").splitlines()
    if not lines:
        raise FormSpecError("empty form template")

    for row, line in enumerate(lines):
        line = line.rstrip()
        consumed = [False] * len(line)
        for match in _MARKER.finditer(line):
            column = match.group(1).lower()
            if not schema.has_column(column):
                raise FormSpecError(
                    f"template marks [{column}] but {source!r} has no such column"
                )
            width = match.end() - match.start() - 2
            fields.append(
                FieldSpec(
                    column=column,
                    label="",  # painted forms carry labels as decorations
                    ctype=schema.column(column).ctype,
                    width=max(1, width),
                    row=row,
                    read_only=metadata.read_only,
                    in_key=column in metadata.key_columns,
                    pick_list=metadata.pick_lists.get(column),
                    x=match.start(),
                )
            )
            for position in range(match.start(), match.end()):
                consumed[position] = True
        # Literal runs between markers become decorations.
        run_start = None
        for position, flag in enumerate(consumed + [True]):
            ch = line[position] if position < len(line) else " "
            is_literal = not flag and position < len(line) and ch != ""
            if is_literal and run_start is None:
                run_start = position
            elif not is_literal and run_start is not None:
                text = line[run_start:position]
                if text.strip():
                    decorations.append((run_start, row, text))
                run_start = None

    if not fields:
        raise FormSpecError("form template contains no [field] markers")

    marked = [f.column for f in fields]
    if len(set(marked)) != len(marked):
        raise FormSpecError("a column is marked more than once in the template")

    return FormSpec(
        name=name or f"{schema.name}_painted",
        source=schema.name,
        title=title or schema.name.replace("_", " ").title(),
        fields=fields,
        order_by=list(metadata.key_columns) or [schema.columns[0].name],
        decorations=decorations,
    )
