"""Subforms: a master record with its detail rows in one window.

Where master–detail *linking* puts two windows on screen, a subform embeds
the relationship: the top of the window is a record-at-a-time form on the
master; below it, a grid lists the current master's detail rows.  TAB moves
between the master fields and the grid; all the usual form keys work on the
master, and the grid scrolls independently.

This is the direct ancestor of the Access form-with-subform.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.forms.generate import generate_form
from repro.forms.runtime import FormController
from repro.forms.spec import FormSpec
from repro.relational import expr as E
from repro.relational.database import Database
from repro.relational.types import ColumnType, format_value
from repro.windows.events import KeyEvent
from repro.windows.geometry import Rect
from repro.windows.screen import Attr
from repro.windows.widgets import GridView, Label, StatusBar, TextField
from repro.windows.window import Window

_PADDING = 2
_GRID_WIDTHS = {
    ColumnType.INT: 6,
    ColumnType.FLOAT: 9,
    ColumnType.TEXT: 12,
    ColumnType.BOOL: 5,
    ColumnType.DATE: 10,
}


class SubformWindow(Window):
    """A master form with an embedded detail grid."""

    def __init__(
        self,
        db: Database,
        master_source: str,
        detail_source: str,
        on: Sequence[Tuple[str, str]],
        rect: Rect,
        master_spec: Optional[FormSpec] = None,
        detail_rows_visible: int = 6,
    ) -> None:
        if not on:
            raise ValueError("a subform needs at least one (master, detail) column pair")
        spec = master_spec or generate_form(db, master_source)
        title = f"{spec.title} / {detail_source}"
        super().__init__(title, rect)
        self.db = db
        self.controller = FormController(db, spec)
        self.detail_source = detail_source
        self.detail_schema = db.catalog.schema_of(detail_source)
        self.on = list(on)
        self.detail_rows: List[Tuple] = []

        # Master fields.
        label_width = spec.label_width
        self.fields = {}
        for field_spec in spec.fields:
            self.add(Label(0, field_spec.row, field_spec.label.ljust(label_width)))
            widget = TextField(
                label_width + _PADDING,
                field_spec.row,
                field_spec.width,
                on_change=self._make_on_change(field_spec.column),
            )
            self.fields[field_spec.column] = widget
            self.add(widget)

        # Detail grid below the fields.
        content = self.content
        grid_top = spec.layout_rows + 1
        grid_height = min(detail_rows_visible + 1, content.height - grid_top - 1)
        if grid_height < 2:
            raise ValueError("window too small for the detail grid")
        columns = [
            (col.name, _GRID_WIDTHS[col.ctype]) for col in self.detail_schema.columns
        ]
        self.grid = GridView(
            Rect(0, grid_top, content.width, grid_height), columns
        )
        self.add(self.grid)
        self.status = StatusBar(0, content.height - 1, content.width)
        self.add(self.status)

        self._last_mode = self.controller.mode
        self.controller.on_record_change.append(self._master_moved)
        self._master_moved()

    # -- synchronisation -------------------------------------------------

    def _make_on_change(self, column: str):
        def on_change(text: str) -> None:
            self.controller.set_field(column, text)

        return on_change

    def _detail_filter(self) -> Optional[E.Expr]:
        row = self.controller.current_row
        if row is None:
            return E.BinOp("=", E.Literal(1), E.Literal(0))
        conjuncts: List[E.Expr] = []
        for master_col, detail_col in self.on:
            value = row[self.controller.spec.columns.index(master_col)]
            ref = E.ColumnRef(detail_col)
            conjuncts.append(
                E.IsNull(ref) if value is None else E.BinOp("=", ref, E.Literal(value))
            )
        return E.conjoin(conjuncts)

    def _master_moved(self) -> None:
        predicate = self._detail_filter()
        sql = f"SELECT * FROM {self.detail_source}"
        if predicate is not None:
            sql += f" WHERE {predicate.to_sql()}"
        if self.detail_schema.primary_key:
            sql += " ORDER BY " + ", ".join(self.detail_schema.primary_key)
        self.detail_rows = self.db.query(sql)
        self.grid.set_rows(
            [[format_value(v) for v in row] for row in self.detail_rows]
        )
        self.sync()

    def sync(self) -> None:
        controller = self.controller
        if controller.mode is not self._last_mode:
            self._last_mode = controller.mode
            first = next(iter(self.fields.values()), None)
            if first is not None:
                self.focus(first)
        for column, widget in self.fields.items():
            if widget.text != controller.field_texts[column]:
                widget.text = controller.field_texts[column]
                widget.cursor = len(widget.text)
                widget.overwrite_pending = True
            widget.read_only = not controller.editable(column)
        detail_count = len(self.detail_rows)
        self.status.set_message(
            f"{controller.status_line()} | {detail_count} detail row(s)"
        )

    # -- events -----------------------------------------------------------

    def handle_key(self, event: KeyEvent) -> bool:
        consumed = super().handle_key(event)
        if not consumed:
            consumed = self.controller.handle_key(event)
            if consumed and event.key in ("F2", "F5", "F6"):
                self._master_moved()  # saves/deletes may change details too
        self.sync()
        return consumed
