"""Query-by-form: turn field criteria into predicates.

In QUERY mode the user types a *criterion* into any field; the conjunction
of all non-empty criteria becomes the WHERE clause.  Criterion grammar::

    5            equality (typed per the column)
    >5  >=5      comparison (also <, <=, !=, <>)
    a%  _x%      LIKE pattern (any text containing % or _)
    ~            IS NULL
    !~           IS NOT NULL
    1..9         BETWEEN 1 AND 9 (inclusive)

This tiny language is the whole point of QBF: common queries cost a handful
of keystrokes instead of a SELECT statement.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import FieldValidationError, WowError
from repro.relational import expr as E
from repro.relational.types import ColumnType, parse_input

_OPS = ("<=", ">=", "!=", "<>", "<", ">", "=")


def parse_criterion(column: str, text: str, ctype: ColumnType) -> Optional[E.Expr]:
    """Parse one field's criterion into an expression over *column*.

    Returns None for an empty criterion.  Raises FieldValidationError when
    the text cannot be interpreted for the column's type.
    """
    text = text.strip()
    if not text:
        return None
    ref = E.ColumnRef(column)
    if text == "~":
        return E.IsNull(ref)
    if text == "!~":
        return E.IsNull(ref, negated=True)
    for op in _OPS:
        if text.startswith(op):
            value = _typed(text[len(op):], ctype)
            # <> is the SQL spelling of !=; expression trees use != only.
            actual = "!=" if op == "<>" else op
            return E.BinOp(actual, ref, E.Literal(value))
    if ".." in text:
        low_text, _sep, high_text = text.partition("..")
        low = _typed(low_text, ctype)
        high = _typed(high_text, ctype)
        return E.BinOp(
            "and",
            E.BinOp(">=", ref, E.Literal(low)),
            E.BinOp("<=", ref, E.Literal(high)),
        )
    if ctype is ColumnType.TEXT and ("%" in text or "_" in text):
        return E.Like(ref, text)
    return E.BinOp("=", ref, E.Literal(_typed(text, ctype)))


def _typed(text: str, ctype: ColumnType):
    text = text.strip()
    if not text:
        raise FieldValidationError("criterion operator needs a value")
    try:
        value = parse_input(text, ctype)
    except (WowError, ValueError, TypeError) as exc:
        raise FieldValidationError(f"bad criterion value {text!r}: {exc}") from exc
    if value is None:
        raise FieldValidationError("criterion operator needs a value")
    return value


def build_predicate(
    criteria: List[Tuple[str, str, ColumnType]]
) -> Optional[E.Expr]:
    """AND together the parsed criteria; None if all fields are empty."""
    conjuncts = []
    for column, text, ctype in criteria:
        expr = parse_criterion(column, text, ctype)
        if expr is not None:
            conjuncts.append(expr)
    return E.conjoin(conjuncts)
