"""Reproduction of "Windows on the World" (SIGMOD 1983).

A forms-over-views windowed database interface — the ancestor of Access
forms, the Django admin, and phpMyAdmin — rebuilt in pure Python, together
with every substrate it needs: a from-scratch relational engine with views
and view updates, a character-cell windowing system, and a keystroke-
scriptable forms runtime.

Public entry points:

* :class:`repro.relational.Database` — the relational engine.
* :class:`repro.core.WowApp` — the windowed forms application.
* :mod:`repro.workloads` — deterministic synthetic databases.
"""

__version__ = "1.0.0"

from repro.relational.database import Database

__all__ = ["Database", "__version__"]
