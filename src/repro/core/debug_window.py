"""The F11 debug window (live metrics + slow log) and the F12 query
inspector (a browser over the ``_statements`` telemetry table).

Both are read-only, in-app faces of the ``repro.obs`` subsystem.  F11
formats ``Database.metrics_snapshot()`` and the slow log as text; F12 is
an ordinary :class:`~repro.core.browser.BrowserWindow` over the
``_statements`` system relation — the forms runtime browsing the engine's
own telemetry.  Inside the metrics window:

    F5            re-snapshot the metrics
    PGUP / PGDN   scroll
    HOME / END    jump to top / bottom
"""

from __future__ import annotations

from typing import List

from repro.core.browser import BrowserWindow
from repro.relational.database import Database
from repro.windows.events import Key, KeyEvent
from repro.windows.geometry import Rect
from repro.windows.screen import ScreenBuffer
from repro.windows.widgets import StatusBar, Widget
from repro.windows.window import Window


class _MetricsPane(Widget):
    """A scrollable read-only text pane."""

    def __init__(self, rect: Rect) -> None:
        super().__init__(rect)
        self.lines: List[str] = []
        self.scroll = 0

    def set_lines(self, lines: List[str]) -> None:
        self.lines = lines
        self.scroll = min(self.scroll, self._max_scroll())

    def _max_scroll(self) -> int:
        return max(0, len(self.lines) - self.rect.height)

    def scroll_by(self, delta: int) -> None:
        self.scroll = max(0, min(self.scroll + delta, self._max_scroll()))

    def render(self, screen: ScreenBuffer, dx: int, dy: int) -> None:
        for line_no in range(self.rect.height):
            index = self.scroll + line_no
            text = self.lines[index] if index < len(self.lines) else ""
            screen.write(
                self.rect.x + dx,
                self.rect.y + dy + line_no,
                text[: self.rect.width].ljust(self.rect.width),
            )


def _snapshot_lines(db: Database) -> List[str]:
    """Format the metrics snapshot and slow log for display."""
    snap = db.metrics_snapshot()
    lines: List[str] = []

    def section(title: str) -> None:
        if lines:
            lines.append("")
        lines.append(f"== {title} ==")

    for title, key in (
        ("statements", "statements"),
        ("pager", "pager"),
        ("wal", "wal"),
        ("btree", "btree"),
        ("txn", "txn"),
        ("planner", "planner"),
        ("plan cache", "plan_cache"),
        ("statement log", "statement_log"),
        ("integrity", "integrity"),
    ):
        counters = snap[key]
        section(title)
        if not counters:
            lines.append("  (none)")
        for name, value in sorted(counters.items()):
            lines.append(f"  {name:<20} {value}")

    registry = snap["registry"]
    if registry["counters"]:
        section("counters")
        for name, value in sorted(registry["counters"].items()):
            lines.append(f"  {name:<28} {value}")
    if registry["histograms"]:
        section("histograms (ms)")
        for name, summary in sorted(registry["histograms"].items()):
            lines.append(
                f"  {name:<28} n={summary['count']}"
                f" mean={summary['mean']:.2f}"
                f" p95={summary['p95'] if summary['p95'] is None else round(summary['p95'], 2)}"
                f" max={summary['max'] if summary['max'] is None else round(summary['max'], 2)}"
            )

    section(f"slow log (>= {snap['slow_log']['threshold_ms']:g} ms)")
    dump = db.slow_log.dump()
    lines.extend("  " + entry for entry in dump)
    if not dump:
        lines.append("  (empty)")
    return lines


class MetricsWindow(Window):
    """The observability window a running WowApp opens with F11."""

    def __init__(self, db: Database, rect: Rect) -> None:
        super().__init__("Metrics", rect)
        self.db = db
        content = self.content
        self.pane = _MetricsPane(Rect(0, 0, content.width, content.height - 1))
        self.add(self.pane)
        self.status = StatusBar(0, content.height - 1, content.width)
        self.add(self.status)
        self.status.set_message("F5 refresh; PGUP/PGDN scroll; F11 close")
        self.refresh()

    def refresh(self) -> None:
        self.pane.set_lines(_snapshot_lines(self.db))

    def handle_key(self, event: KeyEvent) -> bool:
        key = event.key
        if key == Key.F5:
            self.refresh()
            return True
        if key == Key.PGUP:
            self.pane.scroll_by(-self.pane.rect.height)
            return True
        if key == Key.PGDN:
            self.pane.scroll_by(self.pane.rect.height)
            return True
        if key == Key.HOME:
            self.pane.scroll = 0
            return True
        if key == Key.END:
            self.pane.scroll = self.pane._max_scroll()
            return True
        return super().handle_key(event)


class QueryInspectorWindow(BrowserWindow):
    """The F12 query inspector: a browser window over ``_statements``.

    Every executed statement of the session, newest last (the grid orders
    by the ``seq`` primary key), with fingerprint, plan-cache hit/miss,
    est/act rows, duration, and pages read.  F5 (inherited) re-queries the
    ring, so the inspector refreshes like any other browser.
    """

    def __init__(self, db: Database, rect: Rect) -> None:
        super().__init__(db, "_statements", rect)
        self.title = "Query Inspector"
