"""An interactive SQL monitor as a window — the escape hatch.

Fig 5's crossover shows that beyond a point, ad-hoc questions belong in
SQL.  The windowed answer is not to leave the environment but to open one
more window on the world: a query window.  Type a statement, press ENTER,
scroll the listing; the forms in the other windows keep working (F5 there
requeries after your updates here).

Keys::

    printable / editing      edit the SQL input line
    ENTER                    execute
    UP / DOWN                recall input history
    PGUP / PGDN              scroll the listing
"""

from __future__ import annotations

import time
from typing import List, Optional

from repro.baselines.sql_cli import SqlCli
from repro.relational.database import Database
from repro.windows.events import Key, KeyEvent
from repro.windows.geometry import Rect
from repro.windows.screen import Attr, ScreenBuffer
from repro.windows.widgets import Label, StatusBar, TextField, Widget
from repro.windows.window import Window


class _OutputPane(Widget):
    """A scrolling pane of text lines."""

    def __init__(self, rect: Rect) -> None:
        super().__init__(rect)
        self.lines: List[str] = []
        self.scroll = 0

    def append(self, text: str) -> None:
        self.lines.extend(text.rstrip("\n").splitlines())
        # Auto-scroll to the bottom.
        self.scroll = max(0, len(self.lines) - self.rect.height)

    def scroll_by(self, delta: int) -> None:
        self.scroll = max(0, min(self.scroll + delta, max(0, len(self.lines) - self.rect.height)))

    def render(self, screen: ScreenBuffer, dx: int, dy: int) -> None:
        for line_no in range(self.rect.height):
            index = self.scroll + line_no
            text = self.lines[index] if index < len(self.lines) else ""
            screen.write(
                self.rect.x + dx,
                self.rect.y + dy + line_no,
                text[: self.rect.width].ljust(self.rect.width),
            )


class SqlWindow(Window):
    """A window hosting a metered SQL monitor over the shared database."""

    def __init__(self, db: Database, rect: Rect) -> None:
        super().__init__("SQL", rect)
        self.cli = SqlCli(db)
        content = self.content
        self.add(Label(0, 0, "SQL>"))
        self.input = TextField(5, 0, content.width - 5)
        self.add(self.input)
        self.output = _OutputPane(Rect(0, 1, content.width, content.height - 2))
        self.add(self.output)
        self.status = StatusBar(0, content.height - 1, content.width)
        self.add(self.status)
        self.status.set_message("ENTER runs; PGUP/PGDN scroll; UP/DOWN history")
        self._history_pos: Optional[int] = None

    def handle_key(self, event: KeyEvent) -> bool:
        key = event.key
        if key == Key.ENTER:
            self._execute()
            return True
        if key == Key.PGUP:
            self.output.scroll_by(-self.output.rect.height)
            return True
        if key == Key.PGDN:
            self.output.scroll_by(self.output.rect.height)
            return True
        if key == Key.UP:
            self._recall(-1)
            return True
        if key == Key.DOWN:
            self._recall(1)
            return True
        return super().handle_key(event)

    def _execute(self) -> None:
        sql = self.input.text.strip()
        if not sql:
            return
        self._history_pos = None
        with self.cli.db.tracer.span("sql_window.execute") as span:
            start = time.perf_counter()
            result = self.cli.run(sql)
            elapsed_ms = (time.perf_counter() - start) * 1000.0
            span.tag("sql", sql[:80])
        self.output.append(f"SQL> {sql}")
        if result is None:
            self.output.append(self.cli.last_error or "error")
            self.status.set_message(self.cli.last_error or "error")
        else:
            listing = self.cli.render_result(result)
            self.output.append(listing)
            outcome = (
                f"{len(result.rows)} row(s)" if result.columns else
                f"{result.rowcount} row(s) affected"
            )
            self.status.set_message(f"{outcome} in {elapsed_ms:.1f} ms")
        self.input.clear()

    def _recall(self, step: int) -> None:
        history = self.cli.history
        if not history:
            return
        if self._history_pos is None:
            self._history_pos = len(history)
        self._history_pos = max(0, min(self._history_pos + step, len(history)))
        if self._history_pos == len(history):
            self.input.clear()
        else:
            self.input.set_text(history[self._history_pos])
