"""A table/view browser window: a scrolling grid over a relation.

The browser complements forms: forms show one record in depth; the browser
shows many records in brief.  A master browser + detail form is the classic
two-window arrangement the paper's title evokes.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.relational.database import Database
from repro.relational import expr as E
from repro.relational.types import ColumnType, format_value
from repro.windows.events import Key, KeyEvent
from repro.windows.geometry import Rect
from repro.windows.widgets import GridView, StatusBar
from repro.windows.window import Window

_GRID_WIDTHS = {
    ColumnType.INT: 6,
    ColumnType.FLOAT: 10,
    ColumnType.TEXT: 14,
    ColumnType.BOOL: 5,
    ColumnType.DATE: 10,
}


class BrowserWindow(Window):
    """A window containing a grid over all rows of a table or view."""

    def __init__(
        self,
        db: Database,
        source: str,
        rect: Rect,
        on_row_change: Optional[Callable[[Optional[Tuple]], None]] = None,
    ) -> None:
        super().__init__(source, rect)
        self.db = db
        self.source = source
        self.schema = db.catalog.schema_of(source)
        self.on_row_change = on_row_change
        self.filter: Optional[E.Expr] = None
        columns = [
            (col.name, _GRID_WIDTHS[col.ctype]) for col in self.schema.columns
        ]
        content = self.content
        self.grid = GridView(
            Rect(0, 0, content.width, content.height - 1),
            columns,
            on_select=self._selection_moved,
        )
        self.add(self.grid)
        self.status = StatusBar(0, content.height - 1, content.width)
        self.add(self.status)
        self.rows: List[Tuple] = []
        self.refresh()

    def refresh(self) -> None:
        sql = f"SELECT * FROM {self.source}"
        if self.filter is not None:
            sql += f" WHERE {self.filter.to_sql()}"
        if self.schema.primary_key:
            sql += " ORDER BY " + ", ".join(self.schema.primary_key)
        self.rows = self.db.query(sql)
        self.grid.set_rows(
            [[format_value(v) for v in row] for row in self.rows]
        )
        self.status.set_message(f"{len(self.rows)} rows")
        self._selection_moved(self.grid.selected)

    @property
    def current_row(self) -> Optional[Tuple]:
        if not self.rows:
            return None
        return self.rows[self.grid.selected]

    def _selection_moved(self, _index: int) -> None:
        if self.on_row_change is not None:
            self.on_row_change(self.current_row)

    def handle_key(self, event: KeyEvent) -> bool:
        if event.key == Key.F5:
            self.refresh()
            return True
        return super().handle_key(event)
