"""The WoW application: windows + forms + database, scriptable by keystroke."""

from repro.core.app import WowApp
from repro.core.browser import BrowserWindow
from repro.core.sql_window import SqlWindow

__all__ = ["WowApp", "BrowserWindow", "SqlWindow"]
