"""Static analysis for the engine: the ``wowlint`` invariant linter and
the plan verifier.

The engine carries invariants that no runtime assertion can enforce
cheaply — *every* durability-relevant I/O call must flow through the
:class:`~repro.relational.faults.IOShim` or fault injection silently loses
coverage; no handler may swallow ``InjectedCrash``; compiled expressions
must never apply Python truthiness to three-valued-logic results.  This
package enforces them at review time instead of relying on vigilance:

* :mod:`repro.analysis.linter` — ``wowlint``, an AST linter with
  engine-specific rules WOW001–WOW006 (see :mod:`repro.analysis.rules`),
  a checked-in baseline for pre-existing debt, and a CLI
  (``python -m repro.analysis --check src tests``) wired into CI;
* :mod:`repro.analysis.planverify` — a static verifier for physical plan
  trees (schema/arity/type invariants at every operator boundary), run on
  every freshly planned query when ``WOW_VERIFY_PLANS=1`` and always on
  ``EXPLAIN``.

Everything here is stdlib-only by design (``--self-check`` proves it), so
the linter runs in CI before any dependency is installed.
"""

from __future__ import annotations

from repro.analysis.linter import LintReport, lint_paths, lint_source, main
from repro.analysis.planverify import (
    PlanVerificationError,
    VERIFY_METRICS,
    iter_operators,
    maybe_verify_plan,
    verify_plan,
)
from repro.analysis.rules import RULES, Violation, native_batched_operators

__all__ = [
    "LintReport",
    "PlanVerificationError",
    "RULES",
    "VERIFY_METRICS",
    "Violation",
    "iter_operators",
    "lint_paths",
    "lint_source",
    "main",
    "maybe_verify_plan",
    "native_batched_operators",
    "verify_plan",
]
