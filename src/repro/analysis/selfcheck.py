"""Self-audit: prove the analysis package stays stdlib-only and lints clean.

CI runs ``python -m repro.analysis --self-check`` *before* installing any
dependency.  Two checks:

1. every import in ``repro.analysis`` resolves to the standard library or
   to ``repro`` itself (no pytest, no typing_extensions, nothing pip'd);
2. the package passes its own linter with zero violations (the rules are
   written against engine paths, but a rule crash or syntax error here
   would surface).
"""

from __future__ import annotations

import ast
import os
import sys
from typing import List, Set


def _stdlib_modules() -> Set[str]:
    names = getattr(sys, "stdlib_module_names", None)
    if names is not None:  # Python >= 3.10
        return set(names)
    # Fallback for 3.9: the modules this package could plausibly pull in.
    return {
        "abc", "argparse", "ast", "collections", "contextlib", "csv",
        "dataclasses", "datetime", "enum", "functools", "io", "itertools",
        "json", "math", "os", "pathlib", "re", "struct", "sys", "textwrap",
        "types", "typing", "zlib",
    }


def _import_roots(tree: ast.AST) -> Set[str]:
    roots: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                roots.add(alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0 and node.module:  # relative imports stay in-package
                roots.add(node.module.split(".")[0])
    return roots


def run_self_check() -> List[str]:
    """Return a list of problems (empty = healthy)."""
    problems: List[str] = []
    package_dir = os.path.dirname(os.path.abspath(__file__))
    stdlib = _stdlib_modules()

    sources = {}
    for dirpath, dirnames, filenames in os.walk(package_dir):
        dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
        for fname in sorted(filenames):
            if not fname.endswith(".py"):
                continue
            path = os.path.join(dirpath, fname)
            name = os.path.relpath(path, package_dir).replace(os.sep, "/")
            with open(path, "r", encoding="utf-8") as fh:
                source = fh.read()
            try:
                tree = ast.parse(source)
            except SyntaxError as exc:
                problems.append(f"{name}: syntax error at line {exc.lineno}")
                continue
            sources[name] = source
            for root in sorted(_import_roots(tree)):
                if root == "repro" or root in stdlib:
                    continue
                problems.append(
                    f"{name}: imports non-stdlib module {root!r} — the linter "
                    "must run before dependencies are installed"
                )

    # Self-lint: the package's own files, under their real repo paths.
    from repro.analysis.linter import lint_source

    for name, source in sources.items():
        relpath = f"src/repro/analysis/{name}"
        try:
            for violation in lint_source(source, relpath):
                problems.append(f"self-lint: {violation.render()}")
        except SyntaxError as exc:  # already reported above
            problems.append(f"{name}: self-lint parse failure at line {exc.lineno}")

    return problems
