"""Baseline (allowlist) handling for wowlint.

The baseline file (``wowlint.baseline`` at the repo root) records known,
justified violations so existing debt stays visible without failing CI.
Format: one entry per line, ``CODE path scope``; ``#`` starts a comment —
the convention is a justification comment directly above each entry (or
block of entries).  Matching is count-insensitive on ``(code, path, scope)``:
a scope with three baselined WOW002 hits stays green if a fourth appears in
the *same* scope, but a hit in a new scope or file fails.  This trades a
little strictness for baseline lines that survive refactors.

Stale entries (baselined but no longer present) are reported as notes, not
failures, so cleanups don't require a lockstep baseline edit.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

from repro.analysis.rules import Violation

BASELINE_FILENAME = "wowlint.baseline"

BaselineKey = Tuple[str, str, str]  # (code, path, scope)


def parse_baseline(text: str) -> Set[BaselineKey]:
    entries: Set[BaselineKey] = set()
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split(None, 2)
        if len(parts) != 3:
            raise ValueError(f"malformed baseline line: {raw!r} (want `CODE path scope`)")
        code, path, scope = parts
        entries.add((code, path, scope))
    return entries


def format_baseline(violations: Iterable[Violation]) -> str:
    """Render a fresh baseline from current violations, grouped by file.
    Justification comments are the author's job — regeneration emits a
    TODO marker per group so they aren't silently dropped on the floor."""
    by_key: Dict[BaselineKey, Violation] = {}
    for v in violations:
        by_key.setdefault(v.key(), v)
    lines: List[str] = [
        f"# {BASELINE_FILENAME}: known wowlint violations (CODE path scope).",
        "# Each entry needs a justification comment.  Regenerate with",
        "#   python -m repro.analysis --check src tests --write-baseline",
        "# then restore/update the justifications.",
        "",
    ]
    last_path = None
    for code, path, scope in sorted(by_key):
        if path != last_path:
            if last_path is not None:
                lines.append("")
            lines.append(f"# TODO justify ({path}):")
            last_path = path
        lines.append(f"{code} {path} {scope}")
    lines.append("")
    return "\n".join(lines)


def apply_baseline(
    violations: List[Violation], baseline: Set[BaselineKey]
) -> Tuple[List[Violation], List[BaselineKey], List[BaselineKey]]:
    """Split into (new violations, suppressed keys, stale keys)."""
    present: Set[BaselineKey] = {v.key() for v in violations}
    new = [v for v in violations if v.key() not in baseline]
    suppressed = sorted(present & baseline)
    stale = sorted(baseline - present)
    return new, suppressed, stale
