"""Static verification of physical plan trees.

``verify_plan`` walks an operator tree and checks the schema/arity/type
invariants every operator boundary must satisfy: bound column references
in range of the input layout, Filter/Sort/Limit/Distinct preserving their
child's layout, join outputs being the concatenation of their inputs with
type-compatible keys, UnionAll inputs aligned slot-by-slot, scans agreeing
with their table's schema.  A violation raises
:class:`PlanVerificationError` (a :class:`~repro.errors.PlanError`) naming
the exact operator and slot, so a planner bug fails loudly at plan time
instead of surfacing as silently wrong rows.

The verifier runs in three places:

* always on ``EXPLAIN`` (the "verified" trailer line);
* on every freshly planned query when ``WOW_VERIFY_PLANS=1`` (set by CI
  and the tier-1 conftest hook);
* directly from the planner unit tests, which feed it deliberately
  malformed trees.

Type compatibility is *category*-based, mirroring ``types.compare``'s
runtime coercions: {INT, FLOAT} are mutually comparable numerics and
{TEXT, DATE} coerce to each other; BOOL stands alone.  The verifier must
never be stricter than the executor, or valid plans would be rejected.
"""

from __future__ import annotations

import os
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import PlanError
from repro.relational import algebra as A
from repro.relational.expr import ColumnRef, Expr, RowLayout
from repro.relational.types import ColumnType


class PlanVerificationError(PlanError):
    """A plan tree violates an operator-boundary invariant."""


#: process-wide counters, surfaced via ``Database.metrics_snapshot()``
VERIFY_METRICS: Dict[str, int] = {"verified_plans": 0, "rejected_plans": 0}

#: mutually comparable type categories (keep in sync with types.compare,
#: which coerces date<->str and compares int/float numerically)
_TYPE_CATEGORY: Dict[ColumnType, str] = {
    ColumnType.INT: "numeric",
    ColumnType.FLOAT: "numeric",
    ColumnType.TEXT: "textual",
    ColumnType.DATE: "textual",
    ColumnType.BOOL: "boolean",
}

#: module-level switch, initialised from the environment so a test session
#: (or CI) opts every plan in without touching call sites
VERIFY_PLANS: bool = os.environ.get("WOW_VERIFY_PLANS", "") == "1"


def iter_operators(plan: A.Operator) -> Iterator[A.Operator]:
    """Pre-order walk of the operator tree."""
    yield plan
    for child in plan.children():
        yield from iter_operators(child)


def _compatible(a: ColumnType, b: ColumnType) -> bool:
    return _TYPE_CATEGORY.get(a) == _TYPE_CATEGORY.get(b)


def _fail(op: A.Operator, message: str) -> None:
    raise PlanVerificationError(f"{op.label()}: {message}")


def _check_layout(op: A.Operator) -> RowLayout:
    layout = getattr(op, "layout", None)
    if not isinstance(layout, RowLayout):
        _fail(op, "operator has no RowLayout")
    for pos, slot in enumerate(layout.slots):
        if len(slot) != 3 or not isinstance(slot[2], ColumnType):
            _fail(op, f"slot {pos} is untyped: {slot!r}")
    return layout


def _check_refs_bound(op: A.Operator, expr: Expr, input_arity: int, what: str) -> None:
    for node in expr.walk():
        if isinstance(node, ColumnRef):
            if node.index is None:
                _fail(op, f"{what} contains unbound column reference {node.to_sql()!r}")
            if not (0 <= node.index < input_arity):
                _fail(
                    op,
                    f"{what} references slot {node.index} but the input "
                    f"has only {input_arity} columns",
                )


def _check_same_slots(op: A.Operator, child: A.Operator, kind: str) -> None:
    if op.layout.slots != child.layout.slots:
        _fail(
            op,
            f"{kind} must preserve its child's layout exactly "
            f"(child has {len(child.layout)} slots, operator declares "
            f"{len(op.layout)})",
        )


def _check_scan(op: A.Operator) -> None:
    expected = RowLayout.for_table(op.alias, op.table.schema)
    if op.layout.slots != expected.slots:
        _fail(op, f"scan layout does not match schema of table {op.table.name!r}")
    from repro.analysis.rules import PREFETCH_HINTS

    hint = getattr(op, "prefetch_hint", None)
    if hint not in PREFETCH_HINTS:
        _fail(
            op,
            f"scan declares unknown prefetch_hint {hint!r} (expected one "
            f"of {sorted(PREFETCH_HINTS)}) — the buffer pool cannot pick "
            "a read-ahead strategy",
        )
    if isinstance(op, A.SeqScan):
        use_segments = getattr(op, "use_segments", False)
        if not isinstance(use_segments, bool):
            _fail(op, f"SeqScan.use_segments must be a bool, got {use_segments!r}")
        if use_segments and getattr(op.table, "segments", None) is None:
            _fail(
                op,
                f"segment-fed SeqScan over table {op.table.name!r} which "
                "has no segment store — the batched path would fall over "
                "at execution time",
            )
    index = getattr(op, "index", None)
    if index is not None:
        schema_names = {col.name for col in op.table.schema.columns}
        for column in index.columns:
            if column not in schema_names:
                _fail(
                    op,
                    f"index {index.name!r} references column {column!r} "
                    f"missing from table {op.table.name!r}",
                )
        key = getattr(op, "key", None)
        if key is not None and len(key) != len(index.columns):
            _fail(
                op,
                f"lookup key has {len(key)} components but index "
                f"{index.name!r} covers {len(index.columns)} columns",
            )
        if isinstance(op, A.IndexRangeScan):
            for side in ("low", "high"):
                bound = getattr(op, side, None)
                if bound is not None and len(bound) > len(index.columns):
                    _fail(
                        op,
                        f"range {side} bound has {len(bound)} components "
                        f"but index {index.name!r} covers only "
                        f"{len(index.columns)} columns",
                    )


def _check_join_keys(
    op: A.Operator,
    outer: A.Operator,
    inner: A.Operator,
    outer_keys: Sequence[int],
    inner_keys: Sequence[int],
) -> None:
    if len(outer_keys) != len(inner_keys) or not outer_keys:
        _fail(op, "join needs matching, non-empty key position lists")
    for side, keys, child in (("outer", outer_keys, outer), ("inner", inner_keys, inner)):
        for pos in keys:
            if not (0 <= pos < len(child.layout)):
                _fail(
                    op,
                    f"{side} key position {pos} out of range for input "
                    f"with {len(child.layout)} columns",
                )
    for o_pos, i_pos in zip(outer_keys, inner_keys):
        o_type = outer.layout.type_at(o_pos)
        i_type = inner.layout.type_at(i_pos)
        if not _compatible(o_type, i_type):
            _fail(
                op,
                f"join key types incompatible: outer[{o_pos}] is "
                f"{o_type.name}, inner[{i_pos}] is {i_type.name}",
            )


def _check_join_layout(op: A.Operator, outer: A.Operator, inner: A.Operator) -> None:
    expected = outer.layout.slots + inner.layout.slots
    if op.layout.slots != expected:
        _fail(
            op,
            "join layout must be outer slots followed by inner slots "
            f"({len(outer.layout)} + {len(inner.layout)} columns, operator "
            f"declares {len(op.layout)})",
        )


def _verify_operator(op: A.Operator) -> None:
    from repro.relational.stats import is_valid_estimate

    _check_layout(op)
    est = op.est_rows
    if est is not None:
        try:
            negative = float(est) < 0
        except (TypeError, ValueError):
            negative = False
        if negative:
            _fail(op, f"negative cardinality estimate {est!r}")
        elif not is_valid_estimate(est):
            # Shares the planner's clamp_rows contract: every annotated
            # estimate is a finite whole number of at least one row.
            _fail(op, f"non-normalized cardinality estimate {est!r}")

    if isinstance(op, (A.SeqScan, A.IndexEqScan, A.IndexRangeScan)):
        _check_scan(op)
    elif isinstance(op, A.RowSource):
        arity = len(op.layout)
        for i, row in enumerate(op._rows):
            if len(row) != arity:
                _fail(op, f"row {i} has {len(row)} values for a {arity}-column layout")
                break
    elif isinstance(op, A.Rename):
        if len(op.layout) != len(op.child.layout):
            _fail(
                op,
                f"rename changes arity ({len(op.child.layout)} -> "
                f"{len(op.layout)}); it may only re-qualify",
            )
        for pos, ((_q, _n, out_t), (_cq, _cn, in_t)) in enumerate(
            zip(op.layout.slots, op.child.layout.slots)
        ):
            if out_t is not in_t:
                _fail(op, f"rename changes the type of slot {pos}")
    elif isinstance(op, A.Filter):
        _check_same_slots(op, op.child, "Filter")
        _check_refs_bound(op, op.predicate, len(op.child.layout), "predicate")
    elif isinstance(op, A.Project):
        if len(op.exprs) != len(op.layout):
            _fail(
                op,
                f"projects {len(op.exprs)} expressions into "
                f"{len(op.layout)} output slots",
            )
        for expr in op.exprs:
            _check_refs_bound(op, expr, len(op.child.layout), "projection expression")
    elif isinstance(op, A.Sort):
        _check_same_slots(op, op.child, "Sort")
        for expr, _asc in op.keys:
            _check_refs_bound(op, expr, len(op.child.layout), "sort key")
    elif isinstance(op, A.Limit):
        _check_same_slots(op, op.child, "Limit")
        if (op.limit is not None and op.limit < 0) or op.offset < 0:
            _fail(op, f"negative LIMIT/OFFSET ({op.limit!r}, {op.offset!r})")
    elif isinstance(op, A.Distinct):
        _check_same_slots(op, op.child, "Distinct")
    elif isinstance(op, A.NestedLoopJoin):
        _check_join_layout(op, op.outer, op.inner)
        if op.predicate is not None:
            _check_refs_bound(op, op.predicate, len(op.layout), "join predicate")
    elif isinstance(op, (A.HashJoin, A.MergeJoin)):
        _check_join_layout(op, op.outer, op.inner)
        _check_join_keys(op, op.outer, op.inner, op.outer_keys, op.inner_keys)
        residual = getattr(op, "residual", None)
        if residual is not None:
            _check_refs_bound(op, residual, len(op.layout), "residual predicate")
    elif isinstance(op, A.UnionAll):
        left, right = op.left, op.right
        if len(left.layout) != len(right.layout):
            _fail(
                op,
                f"UNION inputs disagree on arity "
                f"({len(left.layout)} vs {len(right.layout)})",
            )
        for pos, ((_lq, _ln, lt), (_rq, _rn, rt)) in enumerate(
            zip(left.layout.slots, right.layout.slots)
        ):
            if not _compatible(lt, rt):
                _fail(
                    op,
                    f"UNION column {pos} types incompatible: "
                    f"{lt.name} vs {rt.name}",
                )
        if op.layout.slots != left.layout.slots:
            _fail(op, "UNION output layout must be the left input's layout")
    elif isinstance(op, A.Aggregate):
        expected = len(op.group_exprs) + len(op.aggregates)
        if len(op.layout) != expected:
            _fail(
                op,
                f"declares {len(op.layout)} output columns but has "
                f"{len(op.group_exprs)} groups + {len(op.aggregates)} aggregates",
            )
        input_arity = len(op.child.layout)
        for expr, _name, _type in op.group_exprs:
            _check_refs_bound(op, expr, input_arity, "group expression")
        for spec in op.aggregates:
            if spec.arg is not None:
                _check_refs_bound(op, spec.arg, input_arity, f"{spec.func.upper()} argument")


def verify_plan(plan: A.Operator) -> int:
    """Check every operator boundary in *plan*; return the number of
    operators verified.  Raises :class:`PlanVerificationError` naming the
    offending operator on the first violation."""
    count = 0
    try:
        for op in iter_operators(plan):
            _verify_operator(op)
            count += 1
    except PlanVerificationError:
        VERIFY_METRICS["rejected_plans"] += 1
        raise
    VERIFY_METRICS["verified_plans"] += 1
    return count


def maybe_verify_plan(plan: A.Operator) -> Optional[int]:
    """Verify *plan* iff plan verification is switched on (module flag or
    ``WOW_VERIFY_PLANS=1``); the engine calls this on every fresh plan."""
    if not VERIFY_PLANS:
        return None
    return verify_plan(plan)


def set_verify_plans(enabled: bool) -> bool:
    """Flip the module switch (used by the conftest hook); returns the
    previous value so callers can restore it."""
    global VERIFY_PLANS
    previous = VERIFY_PLANS
    VERIFY_PLANS = enabled
    return previous
