"""CLI entry point: ``python -m repro.analysis --check src tests``."""

from __future__ import annotations

import sys

from repro.analysis.linter import main

if __name__ == "__main__":
    sys.exit(main())
