"""The wowlint rule catalog: engine-specific invariants as AST checks.

Each rule has a stable code, a one-line description, a path scope (rules
only fire where the invariant they protect applies), and a fix-it message
telling the author what the compliant code looks like.  Rules WOW001–WOW005
are per-file AST visitors; WOW006 is a project rule that cross-references
two files (the operator algebra and the batched-equivalence property-test
registry).

Adding a rule: subclass :class:`Rule`, give it ``code``/``title``/``fixit``,
implement ``applies`` (path scope) and ``check`` (AST walk returning
:class:`Violation` objects), and append it to :data:`RULES`.  The linter,
baseline machinery, CLI, and docs pick it up from there.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple


@dataclass(frozen=True)
class Violation:
    """One rule hit at one source location."""

    code: str
    path: str  # posix-style path, relative to the repo root
    line: int
    col: int
    scope: str  # dotted enclosing class/function qualname, or "<module>"
    message: str
    fixit: str

    def key(self) -> Tuple[str, str, str]:
        """The baseline identity: line numbers churn, scopes rarely do."""
        return (self.code, self.path, self.scope)

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col + 1}: {self.code} {self.message}\n"
            f"    fix: {self.fixit}"
        )


# ---------------------------------------------------------------------------
# Shared AST plumbing
# ---------------------------------------------------------------------------


def annotate_scopes(tree: ast.AST) -> None:
    """Attach ``_wow_scope`` (dotted qualname of the enclosing def/class)
    to every node, so violations carry a stable, line-number-free identity."""

    def walk(node: ast.AST, scope: str) -> None:
        for child in ast.iter_child_nodes(node):
            child_scope = scope
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                child_scope = f"{scope}.{child.name}" if scope != "<module>" else child.name
            child._wow_scope = scope  # type: ignore[attr-defined]
            walk(child, child_scope)

    tree._wow_scope = "<module>"  # type: ignore[attr-defined]
    walk(tree, "<module>")


def scope_of(node: ast.AST) -> str:
    return getattr(node, "_wow_scope", "<module>")


def dotted_name(node: ast.AST) -> Optional[str]:
    """``os.path.join`` for an Attribute/Name chain; None for anything else."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class Rule:
    """Base class for per-file rules."""

    code: str = "WOW000"
    title: str = ""
    fixit: str = ""

    def applies(self, path: str) -> bool:
        raise NotImplementedError

    def check(self, tree: ast.AST, path: str) -> List[Violation]:
        raise NotImplementedError

    def violation(self, node: ast.AST, path: str, message: str) -> Violation:
        return Violation(
            code=self.code,
            path=path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            scope=scope_of(node),
            message=message,
            fixit=self.fixit,
        )


# ---------------------------------------------------------------------------
# WOW001 — raw file I/O in relational/ bypassing the IOShim
# ---------------------------------------------------------------------------

#: os-level calls that touch durable state; each must route through IOShim
#: so FaultInjector can count it, crash on it, and tear it.  Reads are
#: included: an unreadable sector is a fault the engine must surface, and
#: a crash between a read and the decision made from it is a real world.
_RAW_WRITE_CALLS = {
    "os.open",
    "os.write",
    "os.fsync",
    "os.fdatasync",
    "os.replace",
    "os.rename",
    "os.remove",
    "os.unlink",
    "os.ftruncate",
    "os.truncate",
    "os.read",
    "os.pread",
    "os.fstat",
}


class RawEngineIO(Rule):
    """Durability-relevant I/O in ``relational/`` must go through IOShim."""

    code = "WOW001"
    title = "raw file I/O in relational/ bypasses the IOShim"
    fixit = (
        "route the call through the IOShim (self._io.open/write_all/fsync/"
        "replace/remove/ftruncate/pread/fstat) so fault injection covers "
        "it; read-only open(path) / open(path, 'r'/'rb') stays raw"
    )

    def applies(self, path: str) -> bool:
        return "relational/" in path and not path.endswith("faults.py")

    def check(self, tree: ast.AST, path: str) -> List[Violation]:
        out: List[Violation] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name in _RAW_WRITE_CALLS:
                out.append(
                    self.violation(
                        node, path,
                        f"`{name}` bypasses the IOShim — fault injection "
                        "cannot crash, tear, or count this call",
                    )
                )
            elif name == "open":
                mode = self._open_mode(node)
                if mode is None or any(ch in mode for ch in "wax+"):
                    shown = "?" if mode is None else mode
                    out.append(
                        self.violation(
                            node, path,
                            f"writable builtin `open(..., {shown!r})` bypasses "
                            "the IOShim — a crash inside this write is "
                            "invisible to the exhaustion harness",
                        )
                    )
        return out

    @staticmethod
    def _open_mode(call: ast.Call) -> Optional[str]:
        """The literal mode of a builtin open() call; 'r' when omitted,
        None when it cannot be determined statically."""
        mode_node: Optional[ast.AST] = None
        if len(call.args) >= 2:
            mode_node = call.args[1]
        else:
            for kw in call.keywords:
                if kw.arg == "mode":
                    mode_node = kw.value
        if mode_node is None:
            return "r"
        if isinstance(mode_node, ast.Constant) and isinstance(mode_node.value, str):
            return mode_node.value
        return None


# ---------------------------------------------------------------------------
# WOW002 — bare/broad except handlers
# ---------------------------------------------------------------------------


class BroadExcept(Rule):
    """``except:`` / ``except BaseException`` can swallow InjectedCrash and
    KeyboardInterrupt; ``except Exception`` hides engine bugs behind catch-alls.
    Either re-raise or catch the narrowest WowError subclass the body expects."""

    code = "WOW002"
    title = "bare or broad except without re-raise"
    fixit = (
        "catch the specific WowError subclass(es) the body expects, or keep "
        "the broad handler and re-raise with a bare `raise`"
    )

    def applies(self, path: str) -> bool:
        return "repro/" in path

    def check(self, tree: ast.AST, path: str) -> List[Violation]:
        out: List[Violation] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            broad = self._broad_catch(node.type)
            if broad is None or self._reraises(node):
                continue
            out.append(
                self.violation(
                    node, path,
                    f"{broad} does not re-raise — "
                    + (
                        "it can swallow InjectedCrash/KeyboardInterrupt"
                        if broad != "`except Exception`"
                        else "it masks unexpected engine bugs as handled errors"
                    ),
                )
            )
        return out

    @staticmethod
    def _broad_catch(type_node: Optional[ast.AST]) -> Optional[str]:
        if type_node is None:
            return "bare `except:`"
        names: List[Optional[str]]
        if isinstance(type_node, ast.Tuple):
            names = [dotted_name(el) for el in type_node.elts]
        else:
            names = [dotted_name(type_node)]
        if "BaseException" in names:
            return "`except BaseException`"
        if "Exception" in names:
            return "`except Exception`"
        return None

    @staticmethod
    def _reraises(handler: ast.ExceptHandler) -> bool:
        """Only a bare ``raise`` preserves the caught exception; raising a
        new exception still swallows a crash signal caught by ``except:``."""
        return any(
            isinstance(n, ast.Raise) and n.exc is None for n in ast.walk(handler)
        )


# ---------------------------------------------------------------------------
# WOW003 — Python truthiness on three-valued-logic results
# ---------------------------------------------------------------------------


class TruthyThreeValued(Rule):
    """``Expr.eval`` returns True/False/None; ``if pred.eval(row):`` treats
    NULL as False by accident of Python truthiness.  Engine code must compare
    ``is True`` (or ``is None`` / ``is False``) explicitly."""

    code = "WOW003"
    title = "truthiness applied to a nullable Expr result"
    fixit = "compare explicitly: `expr.eval(row) is True` (3VL: NULL is not False)"

    def applies(self, path: str) -> bool:
        return "relational/" in path or "views/" in path

    def check(self, tree: ast.AST, path: str) -> List[Violation]:
        out: List[Violation] = []
        for expr in self._boolean_contexts(tree):
            if self._is_eval_call(expr):
                out.append(
                    self.violation(
                        expr, path,
                        "`.eval(...)` used directly in a boolean context — "
                        "a NULL (None) result silently behaves as False",
                    )
                )
        return out

    @staticmethod
    def _boolean_contexts(tree: ast.AST) -> Iterable[ast.AST]:
        for node in ast.walk(tree):
            if isinstance(node, (ast.If, ast.While, ast.IfExp)):
                yield node.test
            elif isinstance(node, ast.Assert):
                yield node.test
            elif isinstance(node, ast.BoolOp):
                yield from node.values
            elif isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.Not):
                yield node.operand
            elif isinstance(node, ast.comprehension):
                yield from node.ifs

    @staticmethod
    def _is_eval_call(node: ast.AST) -> bool:
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "eval"
        )


# ---------------------------------------------------------------------------
# WOW004 — wall clock / randomness in crash-replayed engine paths
# ---------------------------------------------------------------------------

#: calls whose results differ between a run and its crash-replay;
#: time.perf_counter is deliberately allowed (observability timing only —
#: its values never reach durable state).
_NONDETERMINISTIC_SUFFIXES = (
    "time.time",
    "time.time_ns",
    "time.localtime",
    "time.gmtime",
    "time.ctime",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "date.today",
    "os.urandom",
    "uuid.uuid1",
    "uuid.uuid4",
)

_NONDETERMINISTIC_MODULES = {"random", "secrets"}


class NondeterministicEnginePath(Rule):
    """Crash exhaustion re-runs a workload once per I/O point and expects the
    same byte stream every time; wall-clock or random values in ``relational/``
    would make every replay a different world."""

    code = "WOW004"
    title = "wall-clock/random use in a crash-replayed engine path"
    fixit = (
        "thread the value in from the caller (or derive it from stored data); "
        "monotonic time.perf_counter is fine for metrics"
    )

    def applies(self, path: str) -> bool:
        return "relational/" in path

    def check(self, tree: ast.AST, path: str) -> List[Violation]:
        out: List[Violation] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".")[0] in _NONDETERMINISTIC_MODULES:
                        out.append(
                            self.violation(
                                node, path,
                                f"`import {alias.name}` in an engine module — "
                                "randomness breaks deterministic crash replay",
                            )
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module and node.module.split(".")[0] in _NONDETERMINISTIC_MODULES:
                    out.append(
                        self.violation(
                            node, path,
                            f"`from {node.module} import ...` in an engine "
                            "module — randomness breaks deterministic crash replay",
                        )
                    )
            elif isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name is None:
                    continue
                root = name.split(".")[0]
                if root in _NONDETERMINISTIC_MODULES or any(
                    name == s or name.endswith("." + s) for s in _NONDETERMINISTIC_SUFFIXES
                ):
                    out.append(
                        self.violation(
                            node, path,
                            f"`{name}` is nondeterministic — crash replay of "
                            "this path cannot reproduce the original run",
                        )
                    )
        return out


# ---------------------------------------------------------------------------
# WOW005 — tracer spans outside `with`
# ---------------------------------------------------------------------------


class UnpairedSpan(Rule):
    """``tracer.span(...)`` is a context manager: entered, it pushes onto the
    thread-local span stack; only ``__exit__`` pops it.  A span call outside a
    ``with`` statement never pops, corrupting every later span's ancestry path
    and leaking its duration."""

    code = "WOW005"
    title = "tracer span started outside a with statement"
    fixit = "wrap it: `with tracer.span(name) as span:` (spans must pair start/stop)"

    def applies(self, path: str) -> bool:
        return "repro/" in path and not path.endswith("obs/tracer.py")

    def check(self, tree: ast.AST, path: str) -> List[Violation]:
        with_items: Set[int] = set()
        for node in ast.walk(tree):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    with_items.add(id(item.context_expr))
        out: List[Violation] = []
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "span"
                and id(node) not in with_items
            ):
                out.append(
                    self.violation(
                        node, path,
                        "span context manager created outside `with` — the "
                        "span stack is never popped",
                    )
                )
        return out


# ---------------------------------------------------------------------------
# WOW007 — module-level mutable state written without the owning lock
# ---------------------------------------------------------------------------

#: substrings that mark a `with` context expression as a lock acquisition
#: (threading.Lock/RLock/Condition conventions: self._lock, _latch, _mutex,
#: self._cond, LOCK_REGISTRY[...], ...)
_LOCK_HINTS = ("lock", "latch", "mutex", "cond")

#: method calls that mutate a dict/list/set in place
_MUTATOR_METHODS = {
    "append", "extend", "insert", "add", "update", "setdefault",
    "pop", "popitem", "remove", "discard", "clear",
}

#: constructor calls whose result is a shared mutable container
_MUTABLE_CONSTRUCTORS = {
    "dict", "list", "set",
    "collections.OrderedDict", "OrderedDict",
    "collections.defaultdict", "defaultdict",
    "collections.deque", "deque",
    "collections.Counter", "Counter",
}


class SharedMutableState(Rule):
    """Sessions made the engine multi-threaded: a module-level dict/list
    mutated from a function without a lexically enclosing ``with <lock>:``
    is a data race waiting for a second thread.  Import-time initialisation
    (module scope) is fine; so are writes inside any ``with`` whose context
    expression names a lock (``self._latch``, ``self._cond``, ...)."""

    code = "WOW007"
    title = "module-level mutable state written without the owning lock"
    fixit = (
        "wrap the write in `with <owning lock>:` (Lock/RLock/Condition named "
        "*lock*/*latch*/*mutex*/*cond*), or move the state onto an instance "
        "that owns such a lock"
    )

    def applies(self, path: str) -> bool:
        return "session/" in path or "relational/" in path

    def check(self, tree: ast.AST, path: str) -> List[Violation]:
        shared = self._module_mutables(tree)
        if not shared:
            return []
        protected: Set[int] = set()
        self._mark_protected(tree, False, protected)
        out: List[Violation] = []
        for node in ast.walk(tree):
            if scope_of(node) == "<module>":
                continue  # import-time initialisation is single-threaded
            if id(node) in protected:
                continue
            target = self._mutation_target(node)
            if target is None or target not in shared:
                continue
            out.append(
                self.violation(
                    node, path,
                    f"module-level `{target}` is mutated outside any "
                    "lock-guarded `with` block — racy once a second "
                    "session thread runs this path",
                )
            )
        return out

    @classmethod
    def _module_mutables(cls, tree: ast.AST) -> Set[str]:
        """Names bound at module scope to a mutable container, plus
        ALL_CAPS names imported from other modules (shared metrics dicts
        like EXEC_METRICS travel by `from ... import`)."""
        shared: Set[str] = set()
        for node in ast.iter_child_nodes(tree):
            if isinstance(node, ast.Assign) and cls._is_mutable_value(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        shared.add(target.id)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if cls._is_mutable_value(node.value) and isinstance(node.target, ast.Name):
                    shared.add(node.target.id)
            elif isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    bound = alias.asname or alias.name
                    if bound.isupper() and any(ch.isalpha() for ch in bound):
                        shared.add(bound)
        return shared

    @staticmethod
    def _is_mutable_value(value: ast.AST) -> bool:
        if isinstance(value, (ast.Dict, ast.List, ast.Set,
                              ast.DictComp, ast.ListComp, ast.SetComp)):
            return True
        if isinstance(value, ast.Call):
            return dotted_name(value.func) in _MUTABLE_CONSTRUCTORS
        return False

    @classmethod
    def _mark_protected(
        cls, node: ast.AST, protected: bool, out: Set[int]
    ) -> None:
        """Collect ids of nodes lexically inside a lock-acquiring `with`."""
        for child in ast.iter_child_nodes(node):
            child_protected = protected
            if isinstance(child, (ast.With, ast.AsyncWith)) and any(
                cls._is_lockish(item.context_expr) for item in child.items
            ):
                child_protected = True
            if child_protected:
                out.add(id(child))
            cls._mark_protected(child, child_protected, out)

    @staticmethod
    def _is_lockish(expr: ast.AST) -> bool:
        name = dotted_name(expr)
        if name is None and isinstance(expr, ast.Call):
            name = dotted_name(expr.func)
        if name is None and isinstance(expr, ast.Subscript):
            name = dotted_name(expr.value)
        return name is not None and any(
            hint in name.lower() for hint in _LOCK_HINTS
        )

    @staticmethod
    def _mutation_target(node: ast.AST) -> Optional[str]:
        """The dotted base name a statement mutates, or None."""
        targets: List[ast.AST] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, ast.AugAssign):
            targets = [node.target]
        elif isinstance(node, ast.Delete):
            targets = list(node.targets)
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _MUTATOR_METHODS
        ):
            return dotted_name(node.func.value)
        for target in targets:
            if isinstance(target, ast.Subscript):
                name = dotted_name(target.value)
                if name is not None:
                    return name
        return None


# ---------------------------------------------------------------------------
# WOW006 — batched operators must appear in the equivalence-test registry
# ---------------------------------------------------------------------------

#: name of the dict in tests/test_property_engine.py that maps every
#: native-batched operator to a SQL statement whose plan exercises it
REGISTRY_NAME = "BATCHED_OPERATOR_REGISTRY"

_WOW006_FIXIT = (
    f"add the operator to {REGISTRY_NAME} in tests/test_property_engine.py "
    "with a SQL statement whose plan contains it (the meta-test checks both "
    "directions)"
)


def native_batched_operators(algebra_source: str) -> List[Tuple[str, int]]:
    """(class name, line) of every Operator subclass in *algebra_source*
    that defines its own ``rows_batched`` (mirrors the runtime check
    ``type(op).rows_batched is not Operator.rows_batched``)."""
    tree = ast.parse(algebra_source)
    found: List[Tuple[str, int]] = []
    for node in ast.iter_child_nodes(tree):
        if not isinstance(node, ast.ClassDef) or node.name == "Operator":
            continue
        for item in node.body:
            if isinstance(item, ast.FunctionDef) and item.name == "rows_batched":
                found.append((node.name, node.lineno))
                break
    return found


def registry_keys(test_source: str) -> Optional[Set[str]]:
    """String keys of the ``BATCHED_OPERATOR_REGISTRY`` dict literal, or
    None when the registry assignment is missing."""
    tree = ast.parse(test_source)
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            if isinstance(target, ast.Name) and target.id == REGISTRY_NAME:
                if isinstance(node.value, ast.Dict):
                    return {
                        key.value
                        for key in node.value.keys
                        if isinstance(key, ast.Constant) and isinstance(key.value, str)
                    }
                return set()
    return None


def check_batched_registry(
    algebra_path: str,
    algebra_source: str,
    registry_path: Optional[str],
    registry_source: Optional[str],
) -> List[Violation]:
    """WOW006: every native-batched operator must be registered for the
    batched-equivalence property tests."""
    operators = native_batched_operators(algebra_source)
    if registry_source is None:
        return [
            Violation(
                code="WOW006",
                path=registry_path or "tests/test_property_engine.py",
                line=1,
                col=0,
                scope="<module>",
                message=(
                    f"{REGISTRY_NAME} not found — native-batched operators "
                    "have no equivalence coverage ledger"
                ),
                fixit=_WOW006_FIXIT,
            )
        ]
    keys = registry_keys(registry_source)
    if keys is None:
        keys = set()
    out: List[Violation] = []
    for name, line in operators:
        if name not in keys:
            out.append(
                Violation(
                    code="WOW006",
                    path=algebra_path,
                    line=line,
                    col=0,
                    scope=name,
                    message=(
                        f"operator {name} has a native rows_batched but is "
                        f"missing from {REGISTRY_NAME} — its batched path has "
                        "no equivalence property-test coverage"
                    ),
                    fixit=_WOW006_FIXIT,
                )
            )
    return out


# ---------------------------------------------------------------------------
# WOW008 — scan operators must declare their page-access pattern
# ---------------------------------------------------------------------------

#: the prefetch strategies the storage layer knows how to execute
PREFETCH_HINTS = {"sequential", "range", "point", "none"}


class UndeclaredPrefetchHint(Rule):
    """Access-path leaves in ``relational/algebra.py`` must carry a
    class-level ``prefetch_hint`` so the buffer pool can pick a read-ahead
    strategy from the plan alone — an operator that batches pages without
    saying how it touches them silently loses prefetch (and the planner's
    cost model misprices it)."""

    code = "WOW008"
    title = "scan operator without a declared prefetch hint"
    fixit = (
        'declare a class-level `prefetch_hint = "sequential" | "range" | '
        '"point" | "none"` on the scan class (inheriting the Operator '
        "default hides the access pattern from the storage layer)"
    )

    def applies(self, path: str) -> bool:
        return path.endswith("relational/algebra.py")

    def check(self, tree: ast.AST, path: str) -> List[Violation]:
        out: List[Violation] = []
        for node in ast.iter_child_nodes(tree):
            if not isinstance(node, ast.ClassDef) or not node.name.endswith("Scan"):
                continue
            hint = self._declared_hint(node)
            if hint is None:
                out.append(
                    self.violation(
                        node, path,
                        f"scan operator {node.name} does not declare "
                        "`prefetch_hint` — the storage layer cannot choose "
                        "a read-ahead strategy for it",
                    )
                )
            elif hint not in PREFETCH_HINTS:
                out.append(
                    self.violation(
                        node, path,
                        f"scan operator {node.name} declares unknown "
                        f"prefetch_hint {hint!r} (expected one of "
                        f"{sorted(PREFETCH_HINTS)})",
                    )
                )
        return out

    @staticmethod
    def _declared_hint(cls: ast.ClassDef) -> Optional[str]:
        """The literal value of a class-body ``prefetch_hint`` assignment,
        '' when present but not a string constant, None when absent."""
        for item in cls.body:
            targets: List[ast.AST] = []
            if isinstance(item, ast.Assign):
                targets = list(item.targets)
            elif isinstance(item, ast.AnnAssign) and item.value is not None:
                targets = [item.target]
            for target in targets:
                if isinstance(target, ast.Name) and target.id == "prefetch_hint":
                    value = item.value
                    if isinstance(value, ast.Constant) and isinstance(value.value, str):
                        return value.value
                    return ""
        return None


#: the per-file rules, in code order (WOW006 is project-level; see
#: check_batched_registry and the linter's project pass)
RULES: Sequence[Rule] = (
    RawEngineIO(),
    BroadExcept(),
    TruthyThreeValued(),
    NondeterministicEnginePath(),
    UnpairedSpan(),
    SharedMutableState(),
    UndeclaredPrefetchHint(),
)

#: code -> one-line description, for --list-rules and the docs
RULE_CATALOG: Dict[str, str] = {rule.code: rule.title for rule in RULES}
RULE_CATALOG["WOW006"] = "native-batched operator missing from the equivalence-test registry"
# project-level interprocedural rules (repro.analysis.concurrency)
RULE_CATALOG["WOW009"] = (
    "latch held across a blocking lock wait, lock-order cycle, or "
    "catalog-after-table acquisition"
)
RULE_CATALOG["WOW010"] = (
    "shared state mutated both with and without its owning lock"
)
