"""Eraser-style dynamic lockset detector (opt-in via ``WOW_LOCK_CHECK=1``).

The static checkers in :mod:`lockorder` prove discipline over paths the
call graph can see; this module cross-checks the paths that actually ran.
When enabled, :class:`Database` wraps its latch in a :class:`CheckedLock`
and :class:`SessionManager` wraps its :class:`LockManager` in a
:class:`CheckedLockManager`; every acquisition then flows through one
process-wide :class:`LockCheckState` that keeps, per thread, the stack of
held locks *with the Python stack that acquired each one*, and globally
the observed lock-order graph with a first-witness stack per edge.

Checks (each violation is recorded as a structured report — thread,
both stacks, the cycle — and raised as :class:`LockDisciplineError`):

* **latch discipline** — a table-lock/catalog acquisition while this
  thread holds the engine latch (the PR 8 golden rule: lock waits happen
  outside the latch);
* **lockset order** — within one ``begin_lockset`` run, resources must
  arrive catalog-first then sorted ascending (the no-deadlock-by-
  construction argument for single-statement locksets);
* **order-graph inversion** — acquiring mutex B while holding mutex A
  when the observed graph already contains a path B ->* A (a cycle two
  concurrent threads could deadlock on, even if this run got lucky).

Cross-*statement* table-lock inversions are deliberately NOT violations:
2PL transactions acquire locks statement-by-statement in whatever order
the workload dictates — the chaos harness provokes exactly that — and
the runtime wait-for-graph detector is the enforcement there.  The
dynamic checker polices the mutexes and the per-statement lockset, where
deadlock would be a code bug rather than a workload property.

Everything here is stdlib-only (plus :mod:`repro.errors`): the analysis
package must import before any dependency is installed.
"""

from __future__ import annotations

import json
import os
import threading
import traceback
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.errors import LockDisciplineError
from repro.analysis.concurrency.lockmodel import (
    CATALOG_RESOURCE_VALUE,
    TABLE_LOCKS,
)

_ENGINE_LATCH = "engine_latch"

#: process-wide switch; WOW_LOCK_CHECK=1 at import time, or set_lock_check()
_enabled = os.environ.get("WOW_LOCK_CHECK", "0") not in ("", "0")


def enabled() -> bool:
    return _enabled


def set_lock_check(on: bool) -> None:
    """Flip the detector for Database/SessionManager instances created
    *after* this call (existing instances keep their unwrapped locks)."""
    global _enabled
    _enabled = bool(on)


def _capture_stack(skip: int = 2) -> List[str]:
    """Trimmed frame summaries, innermost last, dynlock frames dropped."""
    frames = traceback.format_stack()[:-skip]
    return [line.rstrip("\n") for line in frames[-12:]]


def _lockset_sort_key(resource: str) -> Tuple[bool, str]:
    """Catalog pseudo-lock first, then table names ascending — must match
    SessionManager._statement_locks."""
    return (resource != CATALOG_RESOURCE_VALUE, resource)


class LockCheckState:
    """Process-wide observed-order graph + per-thread held stacks."""

    def __init__(self) -> None:
        self._mutex = threading.Lock()
        self._tls = threading.local()
        #: (first, then) -> first-witness {thread, stack}
        self.edges: Dict[Tuple[str, str], Dict[str, Any]] = {}
        self.violations: List[Dict[str, Any]] = []
        self.acquisitions = 0
        self.lockset_runs = 0

    # -- per-thread state -------------------------------------------------
    def _held(self) -> List[Tuple[str, List[str]]]:
        if not hasattr(self._tls, "held"):
            self._tls.held = []
        return self._tls.held

    def _lockset(self) -> List[Tuple[str, List[str]]]:
        if not hasattr(self._tls, "lockset"):
            self._tls.lockset = []
        return self._tls.lockset

    # -- mutex events (CheckedLock) ---------------------------------------
    def on_mutex_acquire(self, key: str) -> Optional[str]:
        """Record the acquisition; return a violation message when it
        inverted the observed order (the CheckedLock raises after backing
        the acquisition out, keeping lock state consistent)."""
        stack = _capture_stack(skip=3)
        held = self._held()
        problem: Optional[str] = None
        with self._mutex:
            self.acquisitions += 1
            for prior, prior_stack in held:
                if prior == key:
                    continue
                message = self._add_edge(prior, key, prior_stack, stack)
                if message is not None and problem is None:
                    problem = message
        held.append((key, stack))
        return problem

    def on_mutex_release(self, key: str) -> None:
        held = self._held()
        for i in range(len(held) - 1, -1, -1):
            if held[i][0] == key:
                del held[i]
                return

    def holds(self, key: str) -> Optional[List[str]]:
        for name, stack in self._held():
            if name == key:
                return stack
        return None

    # -- table-lock events (CheckedLockManager) ---------------------------
    def begin_lockset(self, session_id: int) -> None:
        with self._mutex:
            self.lockset_runs += 1
        self._tls.lockset = []

    def on_resource_acquire(self, session_id: int, resource: str,
                            mode: str) -> None:
        stack = _capture_stack(skip=3)
        latch_stack = self.holds(_ENGINE_LATCH)
        if latch_stack is not None:
            self._violation(
                kind="latch_held_during_lock_wait",
                message=(
                    f"session {session_id} requested table lock "
                    f"{resource!r} ({mode}) while this thread holds the "
                    "engine latch — a lock wait here stalls every session"
                ),
                stacks={"engine_latch": latch_stack, "table_lock": stack},
                cycle=[_ENGINE_LATCH, TABLE_LOCKS, _ENGINE_LATCH],
            )
        lockset = self._lockset()
        if lockset:
            last, last_stack = lockset[-1]
            if (last != resource
                    and _lockset_sort_key(resource) < _lockset_sort_key(last)):
                self._violation(
                    kind="lockset_order_inversion",
                    message=(
                        f"session {session_id} acquired {resource!r} after "
                        f"{last!r} within one lockset — locksets must be "
                        "catalog-first then sorted, or two statements can "
                        "deadlock inside the no-deadlock window"
                    ),
                    stacks={last: last_stack, resource: stack},
                    cycle=[last, resource, last],
                )
        lockset.append((resource, stack))
        # mutex -> resource edges for the observed graph (held CheckedLocks
        # other than the latch; the latch case was flagged above)
        problem: Optional[str] = None
        with self._mutex:
            self.acquisitions += 1
            for prior, prior_stack in self._held():
                if prior != _ENGINE_LATCH:
                    message = self._add_edge(
                        prior, TABLE_LOCKS, prior_stack, stack)
                    if message is not None and problem is None:
                        problem = message
        if problem is not None:
            raise LockDisciplineError(problem)

    # -- order graph ------------------------------------------------------
    def _add_edge(self, first: str, then: str, first_stack: List[str],
                  then_stack: List[str]) -> Optional[str]:
        """Record first->then; when the reverse path already exists,
        record the inversion and return its message so the caller can
        raise outside this mutex.  Caller holds self._mutex."""
        edge = (first, then)
        if edge in self.edges:
            return None
        path = self._find_path(then, first)
        self.edges[edge] = {
            "thread": threading.current_thread().name,
            "stack": then_stack,
            "held_stack": first_stack,
        }
        if path is None:
            return None
        witness = self.edges.get((path[0], path[1]), {})
        message = (
            f"acquired `{then}` while holding `{first}`, but the "
            "observed order graph already contains "
            + " -> ".join(path)
            + " — two threads interleaving these paths can deadlock"
        )
        self._violation_locked(
            kind="order_graph_inversion",
            message=message,
            stacks={
                f"this thread ({first} held here)": first_stack,
                f"this thread ({then} acquired here)": then_stack,
                f"prior witness ({path[0]} -> {path[1]})":
                    witness.get("stack", []),
            },
            cycle=list(path) + [then],
        )
        return message

    def _find_path(self, src: str, dst: str) -> Optional[List[str]]:
        """BFS path src ->* dst in the observed edge graph (mutex held)."""
        if src == dst:
            return [src]
        parents: Dict[str, str] = {}
        queue = [src]
        seen: Set[str] = {src}
        while queue:
            cur = queue.pop(0)
            for a, b in self.edges:
                if a != cur or b in seen:
                    continue
                parents[b] = cur
                if b == dst:
                    path = [b]
                    while path[-1] != src:
                        path.append(parents[path[-1]])
                    return list(reversed(path))
                seen.add(b)
                queue.append(b)
        return None

    # -- violations -------------------------------------------------------
    def _violation(self, **report: Any) -> None:
        with self._mutex:
            self._violation_locked(**report)
        raise LockDisciplineError(report["message"])

    def _violation_locked(self, **report: Any) -> None:
        report["thread"] = threading.current_thread().name
        self.violations.append(report)
        self._dump(report)

    def _dump(self, report: Dict[str, Any]) -> None:
        target = os.environ.get("WOW_TELEMETRY_DIR")
        if not target:
            return
        try:
            os.makedirs(target, exist_ok=True)
            with open(os.path.join(target, "lock_violations.jsonl"),
                      "a", encoding="utf-8") as fh:
                fh.write(json.dumps(report) + "\n")
        except OSError:
            pass  # telemetry must never break the engine  # wowlint: allow WOW002

    # -- reporting --------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        with self._mutex:
            return {
                "enabled": _enabled,
                "acquisitions": self.acquisitions,
                "lockset_runs": self.lockset_runs,
                "observed_edges": sorted(
                    f"{a} -> {b}" for a, b in self.edges),
                "violations": [dict(v) for v in self.violations],
            }

    def reset(self) -> None:
        with self._mutex:
            self.edges.clear()
            self.violations.clear()
            self.acquisitions = 0
            self.lockset_runs = 0


#: the process-wide detector state
_STATE = LockCheckState()


def state() -> LockCheckState:
    return _STATE


def snapshot() -> Dict[str, Any]:
    return _STATE.snapshot()


def reset() -> None:
    _STATE.reset()


class CheckedLock:
    """An RLock that reports outermost acquire/release to the detector."""

    def __init__(self, key: str, inner: Optional[threading.RLock] = None):
        self.key = key
        self._inner = inner if inner is not None else threading.RLock()
        self._tls = threading.local()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        ok = self._inner.acquire(blocking, timeout)
        if ok:
            depth = getattr(self._tls, "depth", 0)
            problem = None
            if depth == 0:
                problem = _STATE.on_mutex_acquire(self.key)
            self._tls.depth = depth + 1
            if problem is not None:
                # back the acquisition out before raising so lock state
                # stays consistent for the caller's cleanup paths
                self.release()
                raise LockDisciplineError(problem)
        return ok

    def release(self) -> None:
        self._inner.release()
        depth = getattr(self._tls, "depth", 1) - 1
        self._tls.depth = depth
        if depth == 0:
            _STATE.on_mutex_release(self.key)

    def __enter__(self) -> "CheckedLock":
        self.acquire()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.release()


class CheckedLockManager:
    """Delegating wrapper over LockManager that feeds the detector."""

    def __init__(self, inner: Any):
        self._inner = inner

    def begin_lockset(self, session_id: int) -> None:
        _STATE.begin_lockset(session_id)
        self._inner.begin_lockset(session_id)

    def acquire(self, session_id: int, resource: str, mode: str,
                *args: Any, **kwargs: Any) -> None:
        _STATE.on_resource_acquire(session_id, resource, mode)
        self._inner.acquire(session_id, resource, mode, *args, **kwargs)

    def __getattr__(self, name: str) -> Any:
        return getattr(self._inner, name)


def maybe_wrap_latch(lock: threading.RLock) -> Any:
    """The Database latch, wrapped when the detector is enabled."""
    if _enabled:
        return CheckedLock(_ENGINE_LATCH, lock)
    return lock


def maybe_checked_lock_manager(manager: Any) -> Any:
    if _enabled:
        return CheckedLockManager(manager)
    return manager
