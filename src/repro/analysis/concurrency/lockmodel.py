"""The lock model: every synchronization object the engine owns, by name.

The static and dynamic checkers share one closed inventory of locks.  Each
:class:`LockSpec` names an abstract lock (the *key* the order graph and
the violation messages use), the attribute that holds it in the source
(``_latch``, ``_cond``, ...), and the file the attribute lives in — three
different ``self._lock`` attributes in three modules are three different
locks, and the ``where`` scope keeps them apart.

Two *pseudo-resources* extend the inventory past thread mutexes:
``table_locks`` (the 2PL table-lock namespace — blocking on a grant in
:meth:`LockManager.acquire` is a wait on this resource) and
``catalog_resource`` (the ``__catalog__`` pseudo-lock DDL serialises on).
They have no mutex object; they exist so the order graph can express the
PR 8 discipline rules ("never wait on a table lock under the latch",
"catalog before any table lock") as edges and absences of edges.

Adding a lock: add a LockSpec here.  The call-graph walker, the held-set
propagation, the CLI report, and the dynamic shim all pick it up; a
``with <something lockish>:`` in a modeled package whose expression is
*not* in this inventory is reported by the CLI as an unmodeled lock so
the model cannot silently rot.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.rules import dotted_name

#: abstract names for the two pseudo-resources (not thread mutexes)
TABLE_LOCKS = "table_locks"
CATALOG_RESOURCE_LOCK = "catalog_resource"

#: the literal resource string session/locks.py uses for the catalog
CATALOG_RESOURCE_VALUE = "__catalog__"


@dataclass(frozen=True)
class LockSpec:
    """One synchronization object in the tree."""

    key: str  #: abstract name used in the order graph and diagnostics
    attr: str  #: attribute that holds the lock object (``_latch``, ...)
    where: Optional[str]  #: relpath substring that owns it (None = anywhere)
    kind: str  #: "rlock" | "lock" | "condition" | "resource"
    description: str


#: the closed inventory, most-specific ``where`` first
LOCK_SPECS: Tuple[LockSpec, ...] = (
    LockSpec(
        "engine_latch", "_latch", None, "rlock",
        "Database._latch — serialises each statement's engine work; "
        "must never be held across a table-lock wait or condition wait",
    ),
    LockSpec(
        "lock_table", "_cond", "session/locks.py", "condition",
        "LockManager._cond — guards the 2PL lock table; its wait() is "
        "the blocking point for every table-lock grant",
    ),
    LockSpec(
        "session_registry", "_mutex", "session/manager.py", "lock",
        "SessionManager._mutex — guards the session map and lockset cache",
    ),
    LockSpec(
        "plan_cache", "_lock", "relational/plancache.py", "rlock",
        "PlanCache._lock — guards the plan/statement cache LRU",
    ),
    LockSpec(
        "statement_log", "_lock", "obs/statlog.py", "lock",
        "StatementLog._lock — guards the statement ring and plan stats",
    ),
    LockSpec(
        "metrics_registry", "_lock", "obs/registry.py", "lock",
        "Registry._lock — guards counters/gauges/histograms",
    ),
    LockSpec(
        "detector_state", "_mutex", "analysis/concurrency/dynlock.py", "lock",
        "LockCheckState._mutex — guards the dynamic detector's observed "
        "edge graph (the analyzer models itself)",
    ),
    LockSpec(
        "analysis_cache", "_cache_lock", "analysis/concurrency/report.py",
        "lock",
        "report._cache_lock — guards the memoised static analysis report",
    ),
    LockSpec(
        TABLE_LOCKS, "<resource>", "session/locks.py", "resource",
        "2PL table locks (S/X per table, held to transaction end); "
        "blocking on a grant happens inside LockManager.acquire",
    ),
    LockSpec(
        CATALOG_RESOURCE_LOCK, "<resource>", "session/locks.py", "resource",
        "the __catalog__ pseudo-resource — S by data statements, X by "
        "DDL; must be acquired before any table lock in a lockset",
    ),
)

#: key -> spec, for report rendering
SPECS_BY_KEY: Dict[str, LockSpec] = {spec.key: spec for spec in LOCK_SPECS}

#: mutex-kind locks (the ones a thread can lexically hold via ``with``)
MUTEX_KEYS: Tuple[str, ...] = tuple(
    spec.key for spec in LOCK_SPECS if spec.kind != "resource"
)

#: attribute-name hints marking an expression as "lockish" even when it is
#: not in the model (kept in sync with wowlint WOW007's heuristic)
LOCKISH_HINTS = ("lock", "latch", "mutex", "cond")

#: attribute types the call-graph resolver cannot infer from assignments
#: (constructor params stored as-is, late-bound attributes) — the known
#: dispatch points of the Database/Session layers live here too
KNOWN_ATTR_TYPES: Dict[Tuple[str, str], str] = {
    ("SessionManager", "db"): "Database",
    ("SessionManager", "locks"): "LockManager",
    ("Session", "manager"): "SessionManager",
    ("Session", "txn"): "TransactionManager",
    ("Database", "session_manager"): "SessionManager",
    ("Database", "wal"): "WriteAheadLog",
    ("Database", "plan_cache"): "PlanCache",
    ("Database", "statement_log"): "StatementLog",
    ("Database", "obs"): "Registry",
    ("Database", "catalog"): "Catalog",
    ("Database", "txn"): "TransactionManager",
    ("Database", "planner"): "Planner",
    ("SessionServer", "manager"): "SessionManager",
}

#: call edges the AST cannot see: (caller relpath, caller scope) ->
#: (callee relpath, callee scope).  Catalog.table() invokes the telemetry
#: builders registered by obs/systables.py through _system_sources — a
#: first-class dispatch point: those builders take SessionManager._mutex
#: and the statlog/registry locks *under the engine latch*.
DISPATCH_EDGES: Tuple[Tuple[str, str, str, str], ...] = (
    ("src/repro/relational/catalog.py", "Catalog.table",
     "src/repro/obs/systables.py", "build_statements"),
    ("src/repro/relational/catalog.py", "Catalog.table",
     "src/repro/obs/systables.py", "build_slow_ops"),
    ("src/repro/relational/catalog.py", "Catalog.table",
     "src/repro/obs/systables.py", "build_metrics"),
    ("src/repro/relational/catalog.py", "Catalog.table",
     "src/repro/obs/systables.py", "build_plan_stats"),
    ("src/repro/relational/catalog.py", "Catalog.table",
     "src/repro/obs/systables.py", "build_table_stats"),
    ("src/repro/relational/catalog.py", "Catalog.table",
     "src/repro/obs/systables.py", "build_sessions"),
    ("src/repro/relational/catalog.py", "Catalog.table",
     "src/repro/obs/systables.py", "build_storage"),
)

#: packages whose module-level/instance shared state WOW010 inspects
#: (the WOW007 inventory, extended per ISSUE 10 to obs/ and the plan cache)
SHARED_STATE_SCOPES = ("session/", "relational/", "obs/")


def identify_lock(expr: ast.AST, relpath: str) -> Optional[str]:
    """The abstract lock key a ``with`` context / receiver expression
    names, or None when it is not in the model."""
    name = dotted_name(expr)
    if name is None and isinstance(expr, ast.Call):
        name = dotted_name(expr.func)
    if name is None:
        return None
    leaf = name.rsplit(".", 1)[-1]
    for spec in LOCK_SPECS:
        if spec.kind == "resource":
            continue
        if leaf != spec.attr:
            continue
        if spec.where is None or spec.where in relpath:
            return spec.key
    return None


def is_lockish(expr: ast.AST) -> bool:
    """Heuristic: does this expression *look* like a lock acquisition
    (used to spot locks missing from the model)?"""
    name = dotted_name(expr)
    if name is None and isinstance(expr, ast.Call):
        name = dotted_name(expr.func)
    if name is None and isinstance(expr, ast.Subscript):
        name = dotted_name(expr.value)
    return name is not None and any(
        hint in name.lower() for hint in LOCKISH_HINTS
    )
