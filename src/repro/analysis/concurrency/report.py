"""Rendering + caching for the concurrency analyzer.

Feeds three consumers: ``python -m repro.analysis --concurrency`` (human
or ``--json``), ``Database.metrics_snapshot()["analysis"]`` (which wants
a cheap cached summary, not a re-parse of the package per snapshot), and
the wowlint project pass (which only wants the Violations).
"""

from __future__ import annotations

import json
import os
import threading
from typing import Any, Dict, List, Optional

from repro.analysis.concurrency import dynlock, lockmodel
from repro.analysis.concurrency.lockorder import AnalysisReport, analyze_package

#: the package the analyzer covers, derived from this file's location
PACKAGE_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))

_cache_lock = threading.Lock()
_cached: Optional[AnalysisReport] = None

#: the invariants the static pass checks, for the CLI banner and docs
CHECKED_INVARIANTS = (
    "no cycle in the static lock-order graph (mutex-over-mutex)",
    "no Condition.wait / table-lock acquisition reachable with the "
    "engine latch held",
    "CATALOG_RESOURCE acquired before table locks at resolvable sites",
    "shared module-level state is either always or never lock-guarded "
    "(no mixed guarded/unguarded mutation paths)",
)


def cached_report(package_root: Optional[str] = None) -> AnalysisReport:
    """Run the static analysis once per process and memoise the result
    (sources on disk don't change under a running engine)."""
    global _cached
    with _cache_lock:
        if _cached is None:
            _cached = analyze_package(package_root or PACKAGE_ROOT)
        return _cached


def invalidate_cache() -> None:
    global _cached
    with _cache_lock:
        _cached = None


def report_to_dict(report: AnalysisReport,
                   violations: Optional[List[Any]] = None) -> Dict[str, Any]:
    if violations is None:
        violations = report.violations
    return {
        "functions": report.functions,
        "call_edges": report.call_edges,
        "lock_order": report.ordered_locks,
        "order_edges": [
            {"first": e.first, "then": e.then, "at": f"{e.relpath}:{e.line}",
             "scope": e.scope}
            for e in report.order_edges
        ],
        "cycles": report.cycles,
        "checked_invariants": list(CHECKED_INVARIANTS),
        "violations": [
            {"code": v.code, "path": v.path, "line": v.line,
             "scope": v.scope, "message": v.message}
            for v in violations
        ],
        "reach": report.reach,
        "unmodeled_locks": [
            {"path": p, "line": ln, "name": name}
            for p, ln, name in report.unmodeled
        ],
    }


def metrics_section() -> Dict[str, Any]:
    """The ``metrics_snapshot()["analysis"]`` payload: cached static
    summary + live dynamic-detector state."""
    report = cached_report()
    return {
        "static": {
            "functions": report.functions,
            "call_edges": report.call_edges,
            "lock_order": report.ordered_locks,
            "order_edges": len(report.order_edges),
            "cycles": len(report.cycles),
            "violations": len(report.violations),
        },
        "lock_check": dynlock.snapshot(),
    }


def render_report(report: AnalysisReport,
                  violations: Optional[List[Any]] = None) -> str:
    """The human CLI output.  *violations* overrides the raw list with a
    baseline/allow-filtered one (the wowlint CLI passes that in)."""
    if violations is None:
        violations = report.violations
    lines: List[str] = []
    lines.append("concurrency analysis: "
                 f"{report.functions} functions, {report.call_edges} call "
                 f"edges, {len(report.order_edges)} lock-order edges")
    lines.append("")
    lines.append("lock model:")
    for key in lockmodel.MUTEX_KEYS + (lockmodel.TABLE_LOCKS,
                                       lockmodel.CATALOG_RESOURCE_LOCK):
        spec = lockmodel.SPECS_BY_KEY[key]
        reach = report.reach.get(key)
        suffix = (f"  [may be held entering {reach} functions]"
                  if reach else "")
        lines.append(f"  {key:<17} {spec.description}{suffix}")
    lines.append("")
    lines.append("discovered lock order (outermost first):")
    ordered = report.ordered_locks
    if ordered:
        lines.append("  " + " -> ".join(ordered))
    else:
        lines.append("  (no nested acquisitions observed)")
    for edge in report.order_edges:
        lines.append("    " + edge.render())
    lines.append("")
    lines.append("checked invariants:")
    for inv in CHECKED_INVARIANTS:
        lines.append(f"  - {inv}")
    lines.append("")
    if report.cycles:
        lines.append("lock-order CYCLES:")
        for cycle in report.cycles:
            lines.append("  " + " -> ".join(cycle + [cycle[0]]))
    else:
        lines.append("lock order is cycle-free.")
    if report.unmodeled:
        lines.append("")
        lines.append("unmodeled lock-like contexts (extend lockmodel.LOCK_SPECS):")
        for path, line, name in report.unmodeled:
            lines.append(f"  {path}:{line}: with {name}")
    lines.append("")
    if violations:
        lines.append(f"{len(violations)} violation(s):")
        for v in violations:
            lines.append(v.render())
    else:
        lines.append("no violations.")
    dyn = dynlock.snapshot()
    if dyn["enabled"] or dyn["violations"]:
        lines.append("")
        lines.append(
            "dynamic detector: "
            f"{dyn['acquisitions']} acquisitions, "
            f"{dyn['lockset_runs']} locksets, "
            f"{len(dyn['violations'])} violation(s)")
        for violation in dyn["violations"]:
            lines.append(f"  [{violation.get('kind')}] "
                         f"{violation.get('message')}")
    return "\n".join(lines)


def run_cli(as_json: bool, package_root: Optional[str] = None,
            violations: Optional[List[Any]] = None) -> int:
    """Back end of ``python -m repro.analysis --concurrency [--json]``.
    Exit 1 on any (unsuppressed) static violation or order cycle."""
    report = cached_report(package_root)
    if violations is None:
        violations = report.violations
    if as_json:
        payload = report_to_dict(report, violations)
        payload["lock_check"] = dynlock.snapshot()
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(render_report(report, violations))
    return 1 if (violations or report.cycles) else 0
