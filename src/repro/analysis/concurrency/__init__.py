"""Concurrency correctness analyzer: static lock-order / latch-discipline
checking over an intra-package call graph, cross-checked by an opt-in
Eraser-style dynamic lockset detector.

* :mod:`lockmodel`  — the closed inventory of synchronization objects
* :mod:`callgraph`  — conservative AST call graph with lock events
* :mod:`lockorder`  — held-set propagation; rules WOW009 and WOW010
* :mod:`dynlock`    — the ``WOW_LOCK_CHECK=1`` runtime shim
* :mod:`report`     — CLI / metrics / JSON rendering, cached per process

The interprocedural core (callgraph + may/must-held propagation) is the
substrate future discipline rules build on — MVCC version-visibility,
WAL-scope pairing — which is why it lives in its own package rather than
inside the per-file wowlint rules.
"""

from __future__ import annotations

from repro.analysis.concurrency.callgraph import CallGraph, build_graph
from repro.analysis.concurrency.lockorder import (
    AnalysisReport,
    analyze_package,
    analyze_sources,
)
from repro.analysis.concurrency import dynlock, lockmodel, report

__all__ = [
    "AnalysisReport",
    "CallGraph",
    "analyze_package",
    "analyze_sources",
    "build_graph",
    "dynlock",
    "lockmodel",
    "report",
]
