"""Conservative intra-package call graph with lock events.

One :class:`FunctionNode` per top-level function or method in
``src/repro/`` (nested defs and lambdas are inlined into their enclosing
function: the closures this tree builds — system-table ``rows`` thunks,
executor generators — run under whatever their *caller* holds, which is
exactly what entry-held propagation models).  Each node carries an
ordered list of :class:`Site` events:

``acquire``   a ``with <modeled lock>:`` or ``<lock>.acquire()``
``wait``      a ``Condition.wait``/``wait_for`` on a modeled condition
``resource``  a ``LockManager.acquire(...)`` whose resource argument is
              statically known (table name literal or CATALOG_RESOURCE)
``call``      a call resolved to other nodes in the graph
``mutate``    a write to module-level shared mutable state (WOW010 input)

plus the *lexically* held mutex stack at each site.  Call resolution is
precision-over-recall: ``self.method``, module functions, imported
functions, constructors, and attribute chains whose receiver type is
inferable from ``self.x = ClassName(...)`` assignments / parameter
annotations / :data:`lockmodel.KNOWN_ATTR_TYPES`.  Unresolvable calls are
dropped rather than wildcarded — a missed edge can hide a real cycle,
but a wildcard edge would drown the report in false cycles; the known
dynamic dispatch points are restored explicitly by
:data:`lockmodel.DISPATCH_EDGES`.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.rules import (
    SharedMutableState,
    annotate_scopes,
    dotted_name,
    scope_of,
)
from repro.analysis.concurrency import lockmodel

NodeId = Tuple[str, str]  # (relpath, dotted scope)


@dataclass
class Site:
    """One lock-relevant event inside a function body."""

    kind: str  # "acquire" | "wait" | "resource" | "call" | "mutate"
    line: int
    col: int
    scope: str  # dotted qualname (nested closures keep their own scope)
    held: Tuple[str, ...]  # lexically held mutex keys, outermost first
    lock: Optional[str] = None
    callee: Optional[str] = None
    targets: Tuple[NodeId, ...] = ()
    name: Optional[str] = None  # mutate: the shared module-level name


@dataclass
class FunctionNode:
    id: NodeId
    class_name: Optional[str]
    line: int
    sites: List[Site] = field(default_factory=list)

    @property
    def relpath(self) -> str:
        return self.id[0]

    @property
    def scope(self) -> str:
        return self.id[1]


@dataclass
class ClassInfo:
    name: str
    relpath: str
    bases: Tuple[str, ...]
    methods: Dict[str, str] = field(default_factory=dict)  # name -> scope
    attr_types: Dict[str, str] = field(default_factory=dict)


@dataclass
class CallGraph:
    nodes: Dict[NodeId, FunctionNode] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    module_funcs: Dict[str, Dict[str, str]] = field(default_factory=dict)
    #: relpath -> local name -> ("module", relpath) | ("class", name)
    imports: Dict[str, Dict[str, Tuple[str, str]]] = field(default_factory=dict)
    #: shared module-level mutable names per relpath (WOW010 inventory)
    shared_state: Dict[str, Set[str]] = field(default_factory=dict)
    #: lockish `with` contexts not in the model: (relpath, line, name)
    unmodeled: List[Tuple[str, int, str]] = field(default_factory=list)

    # -- method lookup with single-inheritance fallback -------------------
    def resolve_method(self, class_name: str, method: str,
                       _depth: int = 0) -> Optional[NodeId]:
        info = self.classes.get(class_name)
        if info is None or _depth > 8:
            return None
        if method in info.methods:
            return (info.relpath, info.methods[method])
        for base in info.bases:
            found = self.resolve_method(base, method, _depth + 1)
            if found is not None:
                return found
        return None

    def attr_type(self, class_name: str, attr: str,
                  _depth: int = 0) -> Optional[str]:
        known = lockmodel.KNOWN_ATTR_TYPES.get((class_name, attr))
        if known is not None:
            return known
        info = self.classes.get(class_name)
        if info is None or _depth > 8:
            return None
        if attr in info.attr_types:
            return info.attr_types[attr]
        for base in info.bases:
            found = self.attr_type(base, attr, _depth + 1)
            if found is not None:
                return found
        return None


def _module_to_relpath(module: str) -> Optional[str]:
    """``repro.session.locks`` -> ``src/repro/session/locks.py`` (best
    effort; the caller checks the file actually parsed)."""
    if not module.startswith("repro"):
        return None
    return "src/" + module.replace(".", "/") + ".py"


def _resolve_relative(relpath: str, level: int, module: Optional[str]) -> Optional[str]:
    """Absolute ``repro.x.y`` form of a relative import in *relpath*."""
    parts = relpath[:-len(".py")].split("/")  # src/repro/session/manager
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    else:
        parts = parts[:-1]  # drop the module itself
    for _ in range(level - 1):
        if parts:
            parts = parts[:-1]
    base = ".".join(parts)
    if module:
        base = f"{base}.{module}" if base else module
    return base or None


# ---------------------------------------------------------------------------
# Pass 1: structural indexes
# ---------------------------------------------------------------------------


def _index_module(cg: CallGraph, relpath: str, tree: ast.Module) -> None:
    cg.module_funcs.setdefault(relpath, {})
    cg.imports.setdefault(relpath, {})
    if any(scope in relpath for scope in lockmodel.SHARED_STATE_SCOPES):
        cg.shared_state[relpath] = SharedMutableState._module_mutables(tree)
    for node in ast.iter_child_nodes(tree):
        if isinstance(node, ast.FunctionDef):
            cg.module_funcs[relpath][node.name] = node.name
        elif isinstance(node, ast.ClassDef):
            bases = tuple(
                b for b in (dotted_name(base) for base in node.bases)
                if b is not None
            )
            info = ClassInfo(node.name, relpath,
                             tuple(b.rsplit(".", 1)[-1] for b in bases))
            for item in node.body:
                if isinstance(item, ast.FunctionDef):
                    info.methods[item.name] = f"{node.name}.{item.name}"
            _harvest_attr_types(info, node)
            cg.classes[node.name] = info
        elif isinstance(node, ast.ImportFrom):
            module = node.module
            if node.level:
                module = _resolve_relative(relpath, node.level, node.module)
            if module is None or not module.startswith("repro"):
                continue
            for alias in node.names:
                local = alias.asname or alias.name
                as_module = _module_to_relpath(f"{module}.{alias.name}")
                cg.imports[relpath][local] = (
                    ("submodule", as_module or "")
                    if alias.name[:1].islower() else ("name", alias.name)
                )
                # record the source module too, so `name` resolves to a
                # function defined there even when the heuristic above
                # guessed "submodule"
                src = _module_to_relpath(module)
                if src is not None:
                    cg.imports[relpath].setdefault(
                        f"{local}@from", ("module", src))


def _harvest_attr_types(info: ClassInfo, cls: ast.ClassDef) -> None:
    """``self.x = ClassName(...)`` / ``self.x: ClassName`` anywhere in the
    class body sets the instance-attribute type map."""
    for node in ast.walk(cls):
        target: Optional[ast.AST] = None
        value: Optional[ast.AST] = None
        annotation: Optional[ast.AST] = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign):
            target, value, annotation = node.target, node.value, node.annotation
        if not (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            continue
        type_name: Optional[str] = None
        if annotation is not None:
            type_name = _annotation_name(annotation)
        if type_name is None and isinstance(value, ast.Call):
            ctor = dotted_name(value.func)
            if ctor is not None and ctor[:1].isupper():
                type_name = ctor.rsplit(".", 1)[-1]
        if type_name is not None:
            info.attr_types.setdefault(target.attr, type_name)


def _annotation_name(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.rsplit(".", 1)[-1].strip("'\" ")
    name = dotted_name(node)
    if name is not None and name.rsplit(".", 1)[-1][:1].isupper():
        return name.rsplit(".", 1)[-1]
    return None


# ---------------------------------------------------------------------------
# Pass 2: per-function event walk
# ---------------------------------------------------------------------------


class _FunctionWalker:
    """Walks one top-level function/method (inlining nested defs) and
    emits Sites with the lexical held-lock stack."""

    def __init__(self, cg: CallGraph, node: FunctionNode,
                 relpath: str, env: Dict[str, str]):
        self.cg = cg
        self.node = node
        self.relpath = relpath
        self.env = env  # local/param name -> class name

    # -- type inference ---------------------------------------------------
    def infer_type(self, expr: ast.AST, _depth: int = 0) -> Optional[str]:
        if _depth > 6:
            return None
        if isinstance(expr, ast.Name):
            return self.env.get(expr.id)
        if isinstance(expr, ast.Attribute):
            base = self.infer_type(expr.value, _depth + 1)
            if base is None:
                return None
            return self.cg.attr_type(base, expr.attr)
        if isinstance(expr, ast.Call):
            ctor = dotted_name(expr.func)
            if ctor is not None:
                leaf = ctor.rsplit(".", 1)[-1]
                if leaf in self.cg.classes:
                    return leaf
        return None

    # -- call resolution --------------------------------------------------
    def resolve_call(self, call: ast.Call) -> Tuple[Optional[str], Tuple[NodeId, ...]]:
        func = call.func
        name = dotted_name(func)
        imports = self.cg.imports.get(self.relpath, {})
        if isinstance(func, ast.Name):
            local = func.id
            # same-module function
            if local in self.cg.module_funcs.get(self.relpath, {}):
                return name, ((self.relpath, local),)
            # constructor (same module or imported class)
            if local in self.cg.classes:
                init = self.cg.resolve_method(local, "__init__")
                return (name, (init,)) if init is not None else (name, ())
            # imported function
            entry = imports.get(f"{local}@from")
            if entry is not None and entry[1] in self.cg.module_funcs:
                funcs = self.cg.module_funcs[entry[1]]
                if local in funcs:
                    return name, ((entry[1], local),)
            return name, ()
        if isinstance(func, ast.Attribute):
            # module attr:  planverify.verify_plan(...)
            if isinstance(func.value, ast.Name):
                entry = imports.get(func.value.id)
                if entry is not None and entry[0] == "submodule":
                    funcs = self.cg.module_funcs.get(entry[1], {})
                    if func.attr in funcs:
                        return name, ((entry[1], func.attr),)
            # typed receiver:  self.locks.acquire(...), manager.rows(...)
            recv_type = self.infer_type(func.value)
            if recv_type is not None:
                target = self.cg.resolve_method(recv_type, func.attr)
                if target is not None:
                    return name, (target,)
            return name, ()
        return name, ()

    # -- the walk ---------------------------------------------------------
    def walk_body(self, body: Sequence[ast.stmt], held: Tuple[str, ...]) -> None:
        for stmt in body:
            self.walk_stmt(stmt, held)

    def walk_stmt(self, stmt: ast.stmt, held: Tuple[str, ...]) -> None:
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            new_held = held
            for item in stmt.items:
                self.visit_expr(item.context_expr, held)
                key = lockmodel.identify_lock(item.context_expr, self.relpath)
                if key is not None:
                    self.emit("acquire", item.context_expr, held, lock=key)
                    if key not in new_held:
                        new_held = new_held + (key,)
                elif lockmodel.is_lockish(item.context_expr):
                    shown = dotted_name(item.context_expr) or "<expr>"
                    self.cg.unmodeled.append(
                        (self.relpath, item.context_expr.lineno, shown))
            self.walk_body(stmt.body, new_held)
            return
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # inline the closure: its body runs under the caller's locks,
            # which entry-held propagation models; lexically it inherits
            # the def site's held stack
            self._bind_locals(stmt)
            self.walk_body(stmt.body, held)
            return
        if isinstance(stmt, ast.ClassDef):
            return
        # local type bindings:  x = ClassName(...)  /  x = self.a.b
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 and isinstance(
                stmt.targets[0], ast.Name):
            inferred = self.infer_type(stmt.value)
            if inferred is not None:
                self.env[stmt.targets[0].id] = inferred
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self.visit_expr(child, held)
            elif isinstance(child, ast.stmt):
                self.walk_stmt(child, held)
            elif isinstance(child, (ast.ExceptHandler, ast.match_case)):
                for sub in ast.iter_child_nodes(child):
                    if isinstance(sub, ast.stmt):
                        self.walk_stmt(sub, held)
                    elif isinstance(sub, ast.expr):
                        self.visit_expr(sub, held)
        self._check_mutation(stmt, held)

    def visit_expr(self, expr: ast.expr, held: Tuple[str, ...]) -> None:
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                self._visit_call(node, held)
                self._check_mutation(node, held)

    def _visit_call(self, call: ast.Call, held: Tuple[str, ...]) -> None:
        func = call.func
        if isinstance(func, ast.Attribute):
            recv_key = lockmodel.identify_lock(func.value, self.relpath)
            if recv_key is not None:
                if func.attr in ("wait", "wait_for"):
                    self.emit("wait", call, held, lock=recv_key)
                    return
                if func.attr == "acquire":
                    self.emit("acquire", call, held, lock=recv_key)
                    return
                if func.attr in ("release", "notify", "notify_all"):
                    return
            # LockManager.acquire with a statically known resource
            if func.attr == "acquire":
                recv_type = self.infer_type(func.value)
                if recv_type == "LockManager" and call.args:
                    res = self._resource_key(call.args[1] if len(call.args) > 1
                                             else call.args[0], call)
                    if res is not None:
                        self.emit("resource", call, held, lock=res)
        callee, targets = self.resolve_call(call)
        if targets:
            self.emit("call", call, held, callee=callee, targets=targets)

    @staticmethod
    def _resource_key(arg: ast.AST, call: ast.Call) -> Optional[str]:
        """Abstract resource for a LockManager.acquire argument; None when
        the resource is dynamic (loop variable over a lockset)."""
        candidates = [arg] + [kw.value for kw in call.keywords
                              if kw.arg == "resource"]
        for node in candidates:
            name = dotted_name(node)
            if name is not None and name.rsplit(".", 1)[-1] == "CATALOG_RESOURCE":
                return lockmodel.CATALOG_RESOURCE_LOCK
            if isinstance(node, ast.Constant) and isinstance(node.value, str):
                if node.value == lockmodel.CATALOG_RESOURCE_VALUE:
                    return lockmodel.CATALOG_RESOURCE_LOCK
                return lockmodel.TABLE_LOCKS
        return None

    def _check_mutation(self, node: ast.AST, held: Tuple[str, ...]) -> None:
        shared = self.cg.shared_state.get(self.relpath)
        if not shared:
            return
        target = SharedMutableState._mutation_target(node)
        if target is not None and target in shared:
            self.emit("mutate", node, held, name=target)

    def emit(self, kind: str, node: ast.AST, held: Tuple[str, ...], **kw) -> None:
        self.node.sites.append(
            Site(
                kind=kind,
                line=getattr(node, "lineno", self.node.line),
                col=getattr(node, "col_offset", 0),
                scope=scope_of(node),
                held=held,
                **kw,
            )
        )

    def _bind_locals(self, fn: ast.FunctionDef) -> None:
        for arg in list(fn.args.args) + list(fn.args.kwonlyargs):
            if arg.annotation is not None:
                type_name = _annotation_name(arg.annotation)
                if type_name is not None:
                    self.env.setdefault(arg.arg, type_name)


def _walk_functions(cg: CallGraph, relpath: str, tree: ast.Module) -> None:
    def make_node(fn: ast.FunctionDef, class_name: Optional[str],
                  scope: str) -> None:
        node = FunctionNode((relpath, scope), class_name, fn.lineno)
        cg.nodes[node.id] = node
        env: Dict[str, str] = {}
        if class_name is not None:
            env["self"] = class_name
        walker = _FunctionWalker(cg, node, relpath, env)
        walker._bind_locals(fn)
        walker.walk_body(fn.body, ())

    for item in ast.iter_child_nodes(tree):
        if isinstance(item, ast.FunctionDef):
            make_node(item, None, item.name)
        elif isinstance(item, ast.ClassDef):
            for member in item.body:
                if isinstance(member, ast.FunctionDef):
                    make_node(member, item.name, f"{item.name}.{member.name}")


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def build_graph(sources: Dict[str, str]) -> CallGraph:
    """Build the call graph from {relpath: source}."""
    cg = CallGraph()
    trees: Dict[str, ast.Module] = {}
    for relpath in sorted(sources):
        try:
            tree = ast.parse(sources[relpath])
        except SyntaxError:
            continue
        annotate_scopes(tree)
        trees[relpath] = tree
        _index_module(cg, relpath, tree)
    for relpath, tree in trees.items():
        _walk_functions(cg, relpath, tree)
    _apply_dispatch_edges(cg)
    return cg


def _apply_dispatch_edges(cg: CallGraph) -> None:
    for src_path, src_scope, dst_path, dst_scope in lockmodel.DISPATCH_EDGES:
        src = cg.nodes.get((src_path, src_scope))
        dst = cg.nodes.get((dst_path, dst_scope))
        if src is None or dst is None:
            continue
        src.sites.append(
            Site(
                kind="call",
                line=src.line,
                col=0,
                scope=src_scope,
                held=(),
                callee=f"<dispatch:{dst_scope}>",
                targets=(dst.id,),
            )
        )


def collect_package_sources(package_root: str) -> Dict[str, str]:
    """{relpath: source} for every .py under *package_root* (the
    ``src/repro`` directory), with repo-root-relative posix paths."""
    sources: Dict[str, str] = {}
    root = os.path.abspath(package_root)
    # repo root = parent of src/
    repo_root = os.path.dirname(os.path.dirname(root))
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d != "__pycache__"]
        for fname in sorted(filenames):
            if not fname.endswith(".py"):
                continue
            full = os.path.join(dirpath, fname)
            rel = os.path.relpath(full, repo_root).replace(os.sep, "/")
            try:
                with open(full, "r", encoding="utf-8") as fh:
                    sources[rel] = fh.read()
            except OSError:
                continue
    return sources
