"""Interprocedural lock-order / latch-discipline checkers (WOW009/WOW010).

Two fixpoint propagations over the call graph:

* **may-held** — union over callers of (caller entry ∪ lexical stack at
  the call site).  "Can lock L be held when control reaches this
  function?"  Drives the order graph and the latch-discipline check:
  over-approximating here errs toward reporting, which is the right
  direction for a deadlock checker.
* **must-held** — intersection over callers.  "Is lock L *always* held
  on entry?"  Drives WOW010 guardedness: a mutation site is guarded iff
  some mutex is must-held (lexically or on every in-graph path).  The
  closed-world assumption is explicit: functions with no in-graph
  callers are entry points and start with nothing held.

Checks, all surfaced as wowlint Violations (baseline + ``# wowlint:
allow`` apply exactly as for the per-file rules):

WOW009 (a) cycles in the static lock-order graph — lock B acquired
           while A is held on one path and A while B is held on another;
       (b) a ``Condition.wait`` (the table-lock grant loop) or a
           table-lock acquisition reachable with the engine latch held —
           the PR 8 invariant;
       (c) CATALOG_RESOURCE acquired after a table lock at statically
           resolvable acquire sites.
WOW010     module-level shared state with both guarded and unguarded
           mutation sites — the lock is real but some path skips it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.analysis.rules import Violation
from repro.analysis.concurrency import lockmodel
from repro.analysis.concurrency.callgraph import (
    CallGraph,
    FunctionNode,
    NodeId,
    Site,
    build_graph,
    collect_package_sources,
)

_WOW009_FIXIT = (
    "restructure so the blocking operation happens outside the latch "
    "(compute under the latch, wait outside — see SessionManager.execute), "
    "or acquire the locks in the documented order (engine latch innermost, "
    "never around a table-lock wait; CATALOG_RESOURCE before table locks)"
)
_WOW010_FIXIT = (
    "hoist the mutation inside the owning `with <lock>:` block (or call it "
    "only from paths that already hold the lock); every other mutation "
    "site of this name is lock-guarded"
)


@dataclass
class OrderEdge:
    """first -> then: *then* was acquired while *first* was held."""

    first: str
    then: str
    relpath: str
    scope: str
    line: int

    def render(self) -> str:
        return (f"{self.first} -> {self.then}  "
                f"({self.relpath}:{self.line} in {self.scope})")


@dataclass
class AnalysisReport:
    """Everything the CLI / metrics snapshot / linter pass consume."""

    order_edges: List[OrderEdge] = field(default_factory=list)
    cycles: List[List[str]] = field(default_factory=list)
    violations: List[Violation] = field(default_factory=list)
    #: lock key -> may-held entry count (how many functions can run under it)
    reach: Dict[str, int] = field(default_factory=dict)
    unmodeled: List[Tuple[str, int, str]] = field(default_factory=list)
    functions: int = 0
    call_edges: int = 0

    @property
    def ordered_locks(self) -> List[str]:
        """Topological order of the mutex order graph (observed-first
        partial order; stable by name inside a rank).  Falls back to
        insertion order when a cycle makes topo-sort impossible."""
        keys = sorted({e.first for e in self.order_edges}
                      | {e.then for e in self.order_edges})
        deps: Dict[str, Set[str]] = {k: set() for k in keys}
        for edge in self.order_edges:
            deps[edge.then].add(edge.first)
        out: List[str] = []
        while deps:
            ready = sorted(k for k, d in deps.items() if not (d - set(out)))
            if not ready:
                out.extend(sorted(deps))  # cycle: report remainder as-is
                break
            out.extend(ready)
            for k in ready:
                del deps[k]
        return out


def _site_held(entry: FrozenSet[str], site: Site) -> FrozenSet[str]:
    return entry | frozenset(site.held)


def _propagate(
    cg: CallGraph,
) -> Tuple[Dict[NodeId, FrozenSet[str]], Dict[NodeId, FrozenSet[str]],
           Dict[Tuple[NodeId, str], Tuple[NodeId, int]]]:
    """(may-held entry, must-held entry, provenance) per node.

    Provenance maps (node, lock) -> (caller node, call line): the first
    witness call site that introduced *lock* into the node's may-held
    entry set — enough to reconstruct a path for the diagnostic."""
    callers: Dict[NodeId, List[Tuple[NodeId, Site]]] = {}
    for node in cg.nodes.values():
        for site in node.sites:
            if site.kind != "call":
                continue
            for target in site.targets:
                if target in cg.nodes:
                    callers.setdefault(target, []).append((node.id, site))

    may: Dict[NodeId, FrozenSet[str]] = {nid: frozenset() for nid in cg.nodes}
    provenance: Dict[Tuple[NodeId, str], Tuple[NodeId, int]] = {}
    worklist = list(cg.nodes)
    while worklist:
        nid = worklist.pop()
        node = cg.nodes[nid]
        entry = may[nid]
        for site in node.sites:
            if site.kind != "call":
                continue
            outgoing = _site_held(entry, site)
            for target in site.targets:
                if target not in may:
                    continue
                added = outgoing - may[target]
                if added:
                    may[target] = may[target] | added
                    for lock in added:
                        provenance.setdefault((target, lock), (nid, site.line))
                    worklist.append(target)

    # must-held: decreasing fixpoint; entry points pinned at frozenset()
    universe = frozenset(lockmodel.MUTEX_KEYS)
    must: Dict[NodeId, FrozenSet[str]] = {
        nid: (frozenset() if nid not in callers else universe)
        for nid in cg.nodes
    }
    changed = True
    while changed:
        changed = False
        for nid, incoming in callers.items():
            acc: Optional[FrozenSet[str]] = None
            for caller_id, site in incoming:
                held = _site_held(must[caller_id], site)
                acc = held if acc is None else (acc & held)
            acc = acc if acc is not None else frozenset()
            if acc != must[nid]:
                must[nid] = acc
                changed = True
    return may, must, provenance


def _witness(
    provenance: Dict[Tuple[NodeId, str], Tuple[NodeId, int]],
    cg: CallGraph,
    nid: NodeId,
    lock: str,
) -> str:
    """Human-readable call chain explaining how *lock* reaches *nid*."""
    steps: List[str] = []
    seen: Set[NodeId] = set()
    cur = nid
    while (cur, lock) in provenance and cur not in seen:
        seen.add(cur)
        caller, line = provenance[(cur, lock)]
        steps.append(f"{caller[1]} ({caller[0]}:{line})")
        cur = caller
    if not steps:
        return "held lexically in this function"
    return "held via " + " <- ".join(steps)


def analyze_graph(cg: CallGraph) -> AnalysisReport:
    report = AnalysisReport()
    report.functions = len(cg.nodes)
    report.unmodeled = sorted(set(cg.unmodeled))
    may, must, provenance = _propagate(cg)

    edges_seen: Dict[Tuple[str, str], OrderEdge] = {}
    latch = "engine_latch"

    for node in cg.nodes.values():
        entry_may = may[node.id]
        for site in node.sites:
            if site.kind == "call":
                report.call_edges += len(site.targets)
                continue
            held = _site_held(entry_may, site)
            if site.kind == "acquire" and site.lock in lockmodel.MUTEX_KEYS:
                for prior in held:
                    if prior == site.lock:
                        continue  # reentrant RLock re-acquire
                    key = (prior, site.lock)
                    if key not in edges_seen:
                        edge = OrderEdge(prior, site.lock, node.relpath,
                                         site.scope, site.line)
                        edges_seen[key] = edge
                        report.order_edges.append(edge)
            if site.kind == "wait" and latch in held and site.lock != latch:
                report.violations.append(Violation(
                    code="WOW009",
                    path=node.relpath,
                    line=site.line,
                    col=site.col,
                    scope=site.scope,
                    message=(
                        f"blocking `{site.lock}` wait reachable with the "
                        f"engine latch held ({_witness(provenance, cg, node.id, latch)}) "
                        "— every other session stalls behind this wait"
                    ),
                    fixit=_WOW009_FIXIT,
                ))
            if (site.kind == "resource" and site.lock == lockmodel.TABLE_LOCKS
                    and latch in held):
                report.violations.append(Violation(
                    code="WOW009",
                    path=node.relpath,
                    line=site.line,
                    col=site.col,
                    scope=site.scope,
                    message=(
                        "table lock acquired while the engine latch is held "
                        f"({_witness(provenance, cg, node.id, latch)}) — "
                        "lock waits must happen outside the latch"
                    ),
                    fixit=_WOW009_FIXIT,
                ))

        # (c) catalog-after-table, per-function acquire sequence
        saw_table: Optional[Site] = None
        for site in node.sites:
            if site.kind != "resource":
                continue
            if site.lock == lockmodel.TABLE_LOCKS and saw_table is None:
                saw_table = site
            elif (site.lock == lockmodel.CATALOG_RESOURCE_LOCK
                  and saw_table is not None):
                report.violations.append(Violation(
                    code="WOW009",
                    path=node.relpath,
                    line=site.line,
                    col=site.col,
                    scope=site.scope,
                    message=(
                        "CATALOG_RESOURCE acquired after a table lock "
                        f"(table lock at line {saw_table.line}) — locksets "
                        "must put the catalog pseudo-lock first"
                    ),
                    fixit=_WOW009_FIXIT,
                ))

    report.cycles = _find_cycles(report.order_edges)
    for cycle in report.cycles:
        # anchor the diagnostic at the first edge of the cycle
        nxt = cycle[1] if len(cycle) > 1 else cycle[0]
        first = next((e for e in report.order_edges
                      if e.first == cycle[0] and e.then == nxt),
                     report.order_edges[0])
        report.violations.append(Violation(
            code="WOW009",
            path=first.relpath,
            line=first.line,
            col=0,
            scope=first.scope,
            message=(
                "lock-order cycle: " + " -> ".join(cycle + [cycle[0]])
                + " — two threads taking these paths concurrently can "
                "deadlock beyond the table-lock detector's reach"
            ),
            fixit=_WOW009_FIXIT,
        ))

    report.violations.extend(_check_shared_state(cg, may, must))

    for lock in lockmodel.MUTEX_KEYS:
        report.reach[lock] = sum(1 for nid in cg.nodes if lock in may[nid])
    report.violations.sort(key=lambda v: (v.path, v.line, v.code))
    return report


def _find_cycles(edges: Sequence[OrderEdge]) -> List[List[str]]:
    """Elementary cycles in the order graph (DFS with path stack; the
    graph has single-digit nodes, so simplicity beats Johnson's)."""
    graph: Dict[str, Set[str]] = {}
    for e in edges:
        graph.setdefault(e.first, set()).add(e.then)
        graph.setdefault(e.then, set())
    cycles: List[List[str]] = []
    seen_cycles: Set[Tuple[str, ...]] = set()

    def dfs(start: str, cur: str, path: List[str], visited: Set[str]) -> None:
        for nxt in sorted(graph.get(cur, ())):
            if nxt == start and len(path) > 0:
                # canonicalise: rotate so the smallest key leads
                cyc = path[:]
                pivot = cyc.index(min(cyc))
                canon = tuple(cyc[pivot:] + cyc[:pivot])
                if canon not in seen_cycles:
                    seen_cycles.add(canon)
                    cycles.append(list(canon))
            elif nxt not in visited and nxt > start:
                visited.add(nxt)
                dfs(start, nxt, path + [nxt], visited)
                visited.discard(nxt)

    for start in sorted(graph):
        dfs(start, start, [start], {start})
    return cycles


def _check_shared_state(
    cg: CallGraph,
    may: Dict[NodeId, FrozenSet[str]],
    must: Dict[NodeId, FrozenSet[str]],
) -> List[Violation]:
    """WOW010: per shared module-level name, partition mutation sites
    into guarded (some mutex must-held, lexically or interprocedurally)
    and unguarded; report the unguarded ones when both kinds exist."""
    guarded: Dict[Tuple[str, str], List[Tuple[FunctionNode, Site]]] = {}
    unguarded: Dict[Tuple[str, str], List[Tuple[FunctionNode, Site]]] = {}
    mutexes = frozenset(lockmodel.MUTEX_KEYS)
    for node in cg.nodes.values():
        for site in node.sites:
            if site.kind != "mutate" or site.name is None:
                continue
            key = (node.relpath, site.name)
            effective = must[node.id] | frozenset(site.held)
            if effective & mutexes:
                guarded.setdefault(key, []).append((node, site))
            else:
                unguarded.setdefault(key, []).append((node, site))
    out: List[Violation] = []
    for key, sites in sorted(unguarded.items()):
        if key not in guarded:
            continue  # never guarded anywhere: WOW007's per-file territory
        relpath, name = key
        others = guarded[key]
        locks = sorted(
            frozenset().union(
                *((must[g_node.id] | frozenset(g_site.held))
                  for g_node, g_site in others)
            ) & mutexes
        )
        for node, site in sites:
            out.append(Violation(
                code="WOW010",
                path=relpath,
                line=site.line,
                col=site.col,
                scope=site.scope,
                message=(
                    f"shared `{name}` mutated with no lock on this path, but "
                    f"{len(others)} other site(s) mutate it under "
                    f"{locks or ['a lock']} — one unguarded writer races "
                    "every guarded one"
                ),
                fixit=_WOW010_FIXIT,
            ))
    return out


def analyze_sources(sources: Dict[str, str]) -> AnalysisReport:
    return analyze_graph(build_graph(sources))


def analyze_package(package_root: str) -> AnalysisReport:
    return analyze_sources(collect_package_sources(package_root))
