"""wowlint: file walking, rule dispatch, baseline application, CLI entry.

``lint_source`` lints one in-memory file (the unit the rule tests drive);
``lint_paths`` walks real paths, runs the project-level WOW006 pass, and
applies the baseline and inline suppressions.  ``main`` is the argparse
CLI behind ``python -m repro.analysis``.

Inline suppression: a ``# wowlint: allow WOW00x`` comment on the violating
line (or the line directly above it) suppresses that code there.  Use it
for single deliberate exceptions; use the baseline for pre-existing debt.
"""

from __future__ import annotations

import argparse
import ast
import json
import os
import re
import sys
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis import baseline as baseline_mod
from repro.analysis.rules import (
    RULE_CATALOG,
    RULES,
    Violation,
    annotate_scopes,
    check_batched_registry,
)

_ALLOW_RE = re.compile(r"#\s*wowlint:\s*allow\s+([A-Z0-9,\s]+)")

#: the two files WOW006 cross-references, relative to the repo root
_ALGEBRA_RELPATH = "src/repro/relational/algebra.py"
_REGISTRY_RELPATH = "tests/test_property_engine.py"

#: the concurrency project pass (WOW009/WOW010) needs the whole engine
#: call graph; it runs only when the lock-table module is in scope, so
#: linting a single unrelated file stays cheap and deterministic
_CONC_ANCHOR = "src/repro/session/locks.py"


@dataclass
class LintReport:
    """Everything one lint run produced, pre-rendered decisions included."""

    violations: List[Violation] = field(default_factory=list)  # non-baselined
    suppressed: List[Tuple[str, str, str]] = field(default_factory=list)
    stale: List[Tuple[str, str, str]] = field(default_factory=list)
    files_checked: int = 0
    parse_errors: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations and not self.parse_errors

    def render(self) -> str:
        lines: List[str] = []
        for v in sorted(self.violations, key=lambda v: (v.path, v.line, v.code)):
            lines.append(v.render())
        for err in self.parse_errors:
            lines.append(f"error: {err}")
        for code, path, scope in self.stale:
            lines.append(f"note: stale baseline entry {code} {path} {scope} (violation gone — remove it)")
        summary = (
            f"wowlint: {self.files_checked} files, "
            f"{len(self.violations)} new violations, "
            f"{len(self.suppressed)} baselined, {len(self.stale)} stale"
        )
        lines.append(summary)
        return "\n".join(lines)

    def render_json(self) -> str:
        """Machine-readable report (``--format=json``)."""
        payload = {
            "ok": self.ok,
            "files_checked": self.files_checked,
            "violations": [
                {
                    "code": v.code, "path": v.path, "line": v.line,
                    "col": v.col + 1, "scope": v.scope,
                    "message": v.message, "fixit": v.fixit,
                }
                for v in sorted(self.violations,
                                key=lambda v: (v.path, v.line, v.code))
            ],
            "baselined": len(self.suppressed),
            "stale_baseline_entries": [
                {"code": c, "path": p, "scope": s} for c, p, s in self.stale
            ],
            "parse_errors": list(self.parse_errors),
        }
        return json.dumps(payload, indent=2, sort_keys=True)

    def render_github(self) -> str:
        """GitHub Actions workflow commands (``--format=github``): every
        violation becomes a clickable annotation on the PR diff."""

        def esc(text: str) -> str:
            # workflow-command data: %, CR, LF must be URL-escaped
            return (text.replace("%", "%25")
                        .replace("\r", "%0D").replace("\n", "%0A"))

        lines: List[str] = []
        for v in sorted(self.violations, key=lambda v: (v.path, v.line, v.code)):
            lines.append(
                f"::error file={v.path},line={v.line},col={v.col + 1},"
                f"title={v.code}::{esc(v.message)} (fix: {esc(v.fixit)})"
            )
        for err in self.parse_errors:
            lines.append(f"::error title=wowlint::{esc(err)}")
        for code, path, scope in self.stale:
            lines.append(
                f"::warning file={path},title=stale baseline::"
                f"{esc(f'{code} {scope}: violation gone — remove the entry')}"
            )
        lines.append(
            f"wowlint: {self.files_checked} files, "
            f"{len(self.violations)} new violations, "
            f"{len(self.suppressed)} baselined, {len(self.stale)} stale"
        )
        return "\n".join(lines)


def _allowed_lines(source: str) -> Dict[int, Set[str]]:
    """line -> codes suppressed on that line (comment's own line and the next)."""
    allowed: Dict[int, Set[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        m = _ALLOW_RE.search(text)
        if not m:
            continue
        codes = {c.strip() for c in m.group(1).replace(",", " ").split() if c.strip()}
        allowed.setdefault(lineno, set()).update(codes)
        allowed.setdefault(lineno + 1, set()).update(codes)
    return allowed


def lint_source(source: str, relpath: str) -> List[Violation]:
    """Run every applicable per-file rule over *source* as *relpath*
    (posix-style, repo-relative — scoping keys off the path)."""
    applicable = [rule for rule in RULES if rule.applies(relpath)]
    if not applicable:
        return []
    tree = ast.parse(source)
    annotate_scopes(tree)
    allowed = _allowed_lines(source)
    out: List[Violation] = []
    for rule in applicable:
        for v in rule.check(tree, relpath):
            if v.code in allowed.get(v.line, ()):  # inline `# wowlint: allow`
                continue
            out.append(v)
    return out


def _iter_python_files(paths: Sequence[str]) -> Iterable[str]:
    for path in paths:
        if os.path.isfile(path):
            if path.endswith(".py"):
                yield path
        elif os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames if d not in {"__pycache__", ".git", ".venv"}
                )
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        yield os.path.join(dirpath, name)


def find_repo_root(start: str) -> Optional[str]:
    """Walk upward from *start* looking for pyproject.toml (the repo root
    marker); the baseline file and relpath normalization anchor there."""
    cur = os.path.abspath(start)
    if os.path.isfile(cur):
        cur = os.path.dirname(cur)
    while True:
        if os.path.isfile(os.path.join(cur, "pyproject.toml")):
            return cur
        parent = os.path.dirname(cur)
        if parent == cur:
            return None
        cur = parent


def _relpath(path: str, root: Optional[str]) -> str:
    abspath = os.path.abspath(path)
    if root and (abspath == root or abspath.startswith(root + os.sep)):
        rel = os.path.relpath(abspath, root)
    else:
        rel = path
    return rel.replace(os.sep, "/")


def lint_paths(
    paths: Sequence[str],
    baseline_path: Optional[str] = None,
    use_baseline: bool = True,
) -> LintReport:
    """Lint files/directories, run the WOW006 project pass, apply baseline."""
    root = None
    for p in paths:
        root = find_repo_root(p)
        if root:
            break
    report = LintReport()
    all_violations: List[Violation] = []
    seen: Set[str] = set()
    sources: Dict[str, str] = {}  # relpath -> source, for the project pass
    conc_sources: Dict[str, str] = {}  # src/repro/* sources, for WOW009/010
    for path in _iter_python_files(paths):
        relpath = _relpath(path, root)
        if relpath in seen:
            continue
        seen.add(relpath)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                source = fh.read()
        except OSError as exc:
            report.parse_errors.append(f"{relpath}: unreadable ({exc})")
            continue
        report.files_checked += 1
        if relpath in (_ALGEBRA_RELPATH, _REGISTRY_RELPATH):
            sources[relpath] = source
        if relpath.startswith("src/repro/"):
            conc_sources[relpath] = source
        try:
            all_violations.extend(lint_source(source, relpath))
        except SyntaxError as exc:
            report.parse_errors.append(f"{relpath}: syntax error at line {exc.lineno}")

    # Project pass: WOW006 only fires when the algebra file was in scope,
    # so linting an unrelated directory doesn't demand the registry.
    if _ALGEBRA_RELPATH in sources:
        all_violations.extend(
            check_batched_registry(
                _ALGEBRA_RELPATH,
                sources[_ALGEBRA_RELPATH],
                _REGISTRY_RELPATH,
                sources.get(_REGISTRY_RELPATH),
            )
        )

    # Project pass: the interprocedural concurrency rules (WOW009/WOW010)
    # run over the whole collected engine tree; inline `# wowlint: allow`
    # applies per file exactly as for the per-file rules.
    if _CONC_ANCHOR in conc_sources:
        all_violations.extend(
            concurrency_violations(conc_sources, skip_allowed=True)
        )

    if baseline_path is None and root:
        candidate = os.path.join(root, baseline_mod.BASELINE_FILENAME)
        if os.path.isfile(candidate):
            baseline_path = candidate
    entries: Set[Tuple[str, str, str]] = set()
    if use_baseline and baseline_path and os.path.isfile(baseline_path):
        with open(baseline_path, "r", encoding="utf-8") as fh:
            entries = baseline_mod.parse_baseline(fh.read())
    new, suppressed, stale = baseline_mod.apply_baseline(all_violations, entries)
    report.violations = new
    report.suppressed = suppressed
    report.stale = stale
    return report


def concurrency_violations(
    conc_sources: Dict[str, str], skip_allowed: bool = True
) -> List[Violation]:
    """WOW009/WOW010 from the interprocedural pass, with per-file
    ``# wowlint: allow`` suppression applied when *skip_allowed*."""
    from repro.analysis.concurrency import analyze_sources

    conc_report = analyze_sources(conc_sources)
    out: List[Violation] = []
    allowed_cache: Dict[str, Dict[int, Set[str]]] = {}
    for v in conc_report.violations:
        if skip_allowed and v.path in conc_sources:
            allowed = allowed_cache.get(v.path)
            if allowed is None:
                allowed = _allowed_lines(conc_sources[v.path])
                allowed_cache[v.path] = allowed
            if v.code in allowed.get(v.line, ()):
                continue
        out.append(v)
    return out


def _run_concurrency_cli(as_json: bool, baseline_path: Optional[str],
                         use_baseline: bool) -> int:
    """``python -m repro.analysis --concurrency [--json]``: print the
    discovered lock order / invariants / violations, exit 1 on any
    unsuppressed, non-baselined violation or order cycle."""
    from repro.analysis.concurrency import report as conc_report
    from repro.analysis.concurrency.callgraph import collect_package_sources

    rep = conc_report.cached_report()
    conc_sources = collect_package_sources(conc_report.PACKAGE_ROOT)
    filtered = concurrency_violations(conc_sources, skip_allowed=True)
    root = find_repo_root(os.getcwd()) or find_repo_root(
        conc_report.PACKAGE_ROOT)
    if baseline_path is None and root:
        candidate = os.path.join(root, baseline_mod.BASELINE_FILENAME)
        if os.path.isfile(candidate):
            baseline_path = candidate
    if use_baseline and baseline_path and os.path.isfile(baseline_path):
        with open(baseline_path, "r", encoding="utf-8") as fh:
            entries = baseline_mod.parse_baseline(fh.read())
        filtered, _, _ = baseline_mod.apply_baseline(filtered, entries)
    return conc_report.run_cli(as_json, violations=filtered)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "wowlint: engine-invariant linter (WOW001-WOW010) + "
            "plan-verifier and concurrency-analysis tooling"
        ),
    )
    parser.add_argument(
        "--check", nargs="+", metavar="PATH", help="lint these files/directories"
    )
    parser.add_argument(
        "--format",
        choices=("human", "json", "github"),
        default="human",
        help="report format: human (default), json, or GitHub Actions annotations",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="also fail (exit 1) on stale baseline entries",
    )
    parser.add_argument(
        "--concurrency",
        action="store_true",
        help="run the interprocedural concurrency analyzer over src/repro "
        "and print the lock order, checked invariants, and violations",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="with --concurrency: emit the report as JSON",
    )
    parser.add_argument(
        "--baseline", help=f"baseline file (default: {baseline_mod.BASELINE_FILENAME} at repo root)"
    )
    parser.add_argument(
        "--no-baseline", action="store_true", help="report all violations, ignoring the baseline"
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="regenerate the baseline from current violations and exit",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog and exit"
    )
    parser.add_argument(
        "--self-check",
        action="store_true",
        help="verify repro.analysis is stdlib-only and lints itself clean",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for code, title in sorted(RULE_CATALOG.items()):
            print(f"{code}  {title}")
        return 0

    if args.concurrency:
        return _run_concurrency_cli(
            args.json, args.baseline, use_baseline=not args.no_baseline
        )

    if args.self_check:
        from repro.analysis.selfcheck import run_self_check

        problems = run_self_check()
        if problems:
            for p in problems:
                print(f"self-check: {p}")
            return 1
        print("self-check: repro.analysis is stdlib-only and lints clean")
        return 0

    if not args.check:
        parser.print_usage()
        print("error: --check PATH... is required (or --list-rules / --self-check)")
        return 2

    if args.write_baseline:
        report = lint_paths(args.check, baseline_path=args.baseline, use_baseline=False)
        root = None
        for p in args.check:
            root = find_repo_root(p)
            if root:
                break
        target = args.baseline or os.path.join(
            root or os.getcwd(), baseline_mod.BASELINE_FILENAME
        )
        with open(target, "w", encoding="utf-8") as fh:
            fh.write(baseline_mod.format_baseline(report.violations))
        print(f"wrote {len({v.key() for v in report.violations})} entries to {target}")
        return 0

    report = lint_paths(
        args.check, baseline_path=args.baseline, use_baseline=not args.no_baseline
    )
    if args.format == "json":
        print(report.render_json())
    elif args.format == "github":
        print(report.render_github())
    else:
        print(report.render())
    ok = report.ok and not (args.strict and report.stale)
    return 0 if ok else 1
