"""Interaction-cost metrics shared by the forms UI and the baselines.

The reconstructed evaluation measures three quantities:

* **keystrokes** — every key a user presses, via :class:`KeystrokeMeter`
  (both the forms UI and the raw-SQL baseline count through this class, so
  Table 1 compares like with like);
* **cells transmitted** — counted by the renderer (Fig 3/4);
* **wall-clock time** — :class:`Timer`, used for engine-side latencies.

:class:`TerminalCostModel` converts (keystrokes, cells) into seconds at
1983 rates for the Fig 5 crossover: a competent typist and a 9600-baud
serial line.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional


class KeystrokeMeter:
    """Counts keystrokes, optionally per labelled task."""

    def __init__(self) -> None:
        self.total = 0
        self.by_task: Dict[str, int] = {}
        self._current_task: Optional[str] = None

    def start_task(self, name: str) -> None:
        """Begin attributing keystrokes to *name*.

        A repeated task name accumulates onto its existing count (a user
        returning to a task keeps its running total); it is never reset
        implicitly — use :meth:`reset` for a clean slate.
        """
        self._current_task = name
        self.by_task.setdefault(name, 0)

    def end_task(self) -> int:
        """Stop attributing; returns the finished task's count."""
        if self._current_task is None:
            return 0
        count = self.by_task[self._current_task]
        self._current_task = None
        return count

    def record(self, count: int = 1) -> None:
        """Count *count* keystrokes."""
        self.total += count
        if self._current_task is not None:
            self.by_task[self._current_task] += count

    def reset(self) -> None:
        self.total = 0
        self.by_task.clear()
        self._current_task = None


class Timer:
    """A tiny perf_counter stopwatch with lap recording.

    ``lap()`` measures *since the previous lap* (it restarts the lap
    clock, by design — that is what makes consecutive laps independent);
    ``elapsed()`` measures since ``start()`` and never mutates state, so
    total wall-clock time stays observable at any point.
    """

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self._origin: Optional[float] = None
        self.laps: List[float] = []

    def start(self) -> "Timer":
        self._start = time.perf_counter()
        self._origin = self._start
        return self

    def lap(self) -> float:
        """Seconds since start() or the previous lap(); recorded and
        returned.  Restarts the lap clock (documented behaviour)."""
        if self._start is None:
            raise RuntimeError("Timer.lap() before start()")
        elapsed = time.perf_counter() - self._start
        self.laps.append(elapsed)
        self._start = time.perf_counter()
        return elapsed

    def elapsed(self) -> float:
        """Seconds since start(), regardless of laps; does not mutate."""
        if self._origin is None:
            raise RuntimeError("Timer.elapsed() before start()")
        return time.perf_counter() - self._origin

    @property
    def mean(self) -> float:
        return sum(self.laps) / len(self.laps) if self.laps else 0.0


@dataclass
class TerminalCostModel:
    """Seconds of user-visible cost at 1983 terminal rates.

    Defaults: 2 keystrokes/second typing (a careful occasional user typing
    queries, not a touch-typist on prose) and 960 characters/second down a
    9600-baud line.
    """

    seconds_per_keystroke: float = 0.5
    seconds_per_cell: float = 1.0 / 960.0

    def cost(self, keystrokes: int, cells: int) -> float:
        """Total seconds for an interaction."""
        return keystrokes * self.seconds_per_keystroke + cells * self.seconds_per_cell
