"""The university registrar workload.

Schema::

    departments(id PK, name, building)
    students(id PK, name, major_id FK->departments, year, gpa)
    courses(id PK, title, dept_id FK->departments, credits)
    enrollments(student_id FK, course_id FK, term, grade;
                PK (student_id, course_id, term))

Plus the views a registrar's forms would sit on:

    senior_students      -- select-project, updatable, WITH CHECK OPTION
    cs_students          -- select-project with predicate default (major)
    transcript           -- join view (browse-only)
    dept_load            -- aggregate view (browse-only)
"""

from __future__ import annotations

import random
from typing import Optional

from repro.relational.database import Database

FIRST_NAMES = [
    "ada", "alan", "barbara", "edsger", "grace", "donald", "john", "dennis",
    "ken", "niklaus", "tony", "butler", "jim", "michael", "david", "susan",
    "frances", "margaret", "jean", "kathleen",
]
LAST_NAMES = [
    "lovelace", "turing", "liskov", "dijkstra", "hopper", "knuth", "backus",
    "ritchie", "thompson", "wirth", "hoare", "lampson", "gray", "stonebraker",
    "dewitt", "graham", "allen", "hamilton", "bartik", "booth",
]
DEPARTMENTS = [
    ("computer science", "evans hall"),
    ("mathematics", "cory hall"),
    ("physics", "leconte hall"),
    ("history", "dwinelle hall"),
    ("economics", "barrows hall"),
    ("biology", "life sciences"),
]
COURSE_WORDS = [
    "intro", "advanced", "seminar", "topics", "theory", "systems", "methods",
    "analysis", "design", "practice",
]
TERMS = ["1982F", "1983S", "1983F"]
GRADES = ["A", "B", "C", "D", "F", None]  # None = in progress


def build_university(
    db: Optional[Database] = None,
    students: int = 200,
    courses: int = 40,
    enrollments_per_student: int = 4,
    seed: int = 1983,
    create_views: bool = True,
) -> Database:
    """Create and populate the registrar database; returns it."""
    db = db or Database()
    rng = random.Random(seed)
    db.execute_script(
        """
        CREATE TABLE departments (
            id INT PRIMARY KEY, name TEXT NOT NULL, building TEXT);
        CREATE TABLE students (
            id INT PRIMARY KEY, name TEXT NOT NULL,
            major_id INT, year INT, gpa FLOAT,
            FOREIGN KEY (major_id) REFERENCES departments (id));
        CREATE TABLE courses (
            id INT PRIMARY KEY, title TEXT NOT NULL,
            dept_id INT, credits INT DEFAULT 3,
            FOREIGN KEY (dept_id) REFERENCES departments (id));
        CREATE TABLE enrollments (
            student_id INT NOT NULL, course_id INT NOT NULL,
            term TEXT NOT NULL, grade TEXT,
            PRIMARY KEY (student_id, course_id, term),
            FOREIGN KEY (student_id) REFERENCES students (id),
            FOREIGN KEY (course_id) REFERENCES courses (id));
        """
    )
    for dept_id, (name, building) in enumerate(DEPARTMENTS, start=1):
        db.insert("departments", {"id": dept_id, "name": name, "building": building})
    db.bulk_insert(
        "students",
        [
            {
                "id": student_id,
                "name": f"{rng.choice(FIRST_NAMES)} {rng.choice(LAST_NAMES)}",
                "major_id": rng.randint(1, len(DEPARTMENTS)),
                "year": rng.randint(1, 4),
                "gpa": round(rng.uniform(1.5, 4.0), 2),
            }
            for student_id in range(1, students + 1)
        ],
    )
    for course_id in range(1, courses + 1):
        dept_id = rng.randint(1, len(DEPARTMENTS))
        title = f"{rng.choice(COURSE_WORDS)} {DEPARTMENTS[dept_id - 1][0].split()[0]} {course_id}"
        db.insert(
            "courses",
            {
                "id": course_id,
                "title": title,
                "dept_id": dept_id,
                "credits": rng.choice([2, 3, 4]),
            },
        )
    seen = set()
    enrollment_rows = []
    for student_id in range(1, students + 1):
        for _ in range(enrollments_per_student):
            course_id = rng.randint(1, courses)
            term = rng.choice(TERMS)
            key = (student_id, course_id, term)
            if key in seen:
                continue
            seen.add(key)
            enrollment_rows.append(
                {
                    "student_id": student_id,
                    "course_id": course_id,
                    "term": term,
                    "grade": rng.choice(GRADES),
                }
            )
    db.bulk_insert("enrollments", enrollment_rows)
    if create_views:
        db.execute(
            "CREATE VIEW senior_students AS "
            "SELECT id, name, major_id, gpa FROM students WHERE year = 4 "
            "WITH CHECK OPTION"
        )
        db.execute(
            "CREATE VIEW cs_students AS "
            "SELECT id, name, year, gpa FROM students WHERE major_id = 1"
        )
        db.execute(
            "CREATE VIEW transcript AS "
            "SELECT s.id AS student_id, s.name AS student, c.title AS course, "
            "e.term AS term, e.grade AS grade "
            "FROM enrollments e JOIN students s ON e.student_id = s.id "
            "JOIN courses c ON e.course_id = c.id"
        )
        db.execute(
            "CREATE VIEW dept_load AS "
            "SELECT c.dept_id AS dept_id, COUNT(*) AS enrollment_count "
            "FROM enrollments e JOIN courses c ON e.course_id = c.id "
            "GROUP BY c.dept_id"
        )
    return db
