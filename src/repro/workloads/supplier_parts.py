"""Codd's classic suppliers–parts–shipments workload.

Schema::

    suppliers(id PK, name, status, city)
    parts(id PK, name, color, weight, city)
    shipments(supplier_id FK, part_id FK, qty; PK (supplier_id, part_id))

Views::

    london_suppliers   -- select-project, updatable, WITH CHECK OPTION
    red_parts          -- select-project, updatable
    heavy_red_parts    -- view over red_parts (view-on-view chain)
    supply_summary     -- aggregate view
"""

from __future__ import annotations

import random
from typing import Optional

from repro.relational.database import Database

CITIES = ["london", "paris", "athens", "oslo", "rome", "madrid"]
COLORS = ["red", "green", "blue", "yellow"]
PART_WORDS = ["nut", "bolt", "screw", "cam", "cog", "gear", "washer", "pin"]
SUPPLIER_WORDS = ["smith", "jones", "blake", "clark", "adams", "davis", "evans"]


def build_supplier_parts(
    db: Optional[Database] = None,
    suppliers: int = 30,
    parts: int = 60,
    shipments: int = 300,
    seed: int = 7,
    create_views: bool = True,
) -> Database:
    """Create and populate the suppliers-parts database; returns it."""
    db = db or Database()
    rng = random.Random(seed)
    db.execute_script(
        """
        CREATE TABLE suppliers (
            id INT PRIMARY KEY, name TEXT NOT NULL,
            status INT DEFAULT 10, city TEXT);
        CREATE TABLE parts (
            id INT PRIMARY KEY, name TEXT NOT NULL,
            color TEXT, weight FLOAT, city TEXT);
        CREATE TABLE shipments (
            supplier_id INT NOT NULL, part_id INT NOT NULL, qty INT NOT NULL,
            PRIMARY KEY (supplier_id, part_id),
            FOREIGN KEY (supplier_id) REFERENCES suppliers (id),
            FOREIGN KEY (part_id) REFERENCES parts (id));
        """
    )
    for supplier_id in range(1, suppliers + 1):
        db.insert(
            "suppliers",
            {
                "id": supplier_id,
                "name": f"{rng.choice(SUPPLIER_WORDS)}-{supplier_id}",
                "status": rng.choice([10, 20, 30]),
                "city": rng.choice(CITIES),
            },
        )
    for part_id in range(1, parts + 1):
        db.insert(
            "parts",
            {
                "id": part_id,
                "name": f"{rng.choice(PART_WORDS)}-{part_id}",
                "color": rng.choice(COLORS),
                "weight": round(rng.uniform(1.0, 50.0), 1),
                "city": rng.choice(CITIES),
            },
        )
    seen = set()
    inserted = 0
    while inserted < shipments:
        supplier_id = rng.randint(1, suppliers)
        part_id = rng.randint(1, parts)
        if (supplier_id, part_id) in seen:
            continue
        seen.add((supplier_id, part_id))
        db.insert(
            "shipments",
            {
                "supplier_id": supplier_id,
                "part_id": part_id,
                "qty": rng.randint(1, 1000),
            },
        )
        inserted += 1
        if len(seen) >= suppliers * parts:
            break
    if create_views:
        db.execute(
            "CREATE VIEW london_suppliers AS "
            "SELECT id, name, status FROM suppliers WHERE city = 'london' "
            "WITH CHECK OPTION"
        )
        db.execute(
            "CREATE VIEW red_parts AS "
            "SELECT id, name, weight, city FROM parts WHERE color = 'red'"
        )
        db.execute(
            "CREATE VIEW heavy_red_parts AS "
            "SELECT id, name, weight FROM red_parts WHERE weight > 25"
        )
        db.execute(
            "CREATE VIEW supply_summary AS "
            "SELECT supplier_id, COUNT(*) AS parts_supplied, SUM(qty) AS total_qty "
            "FROM shipments GROUP BY supplier_id"
        )
    return db
