"""Deterministic synthetic workloads (stand-ins for 1983 production data).

Three classic schemas, each with a seeded generator so every run of the
benchmarks sees identical data:

* :mod:`~repro.workloads.university` — registrar: departments, students,
  courses, enrollments (the motivating domain of most forms papers);
* :mod:`~repro.workloads.supplier_parts` — Codd's suppliers-parts-shipments;
* :mod:`~repro.workloads.library` — circulation: books, members, loans.
"""

from repro.workloads.library import build_library
from repro.workloads.supplier_parts import build_supplier_parts
from repro.workloads.university import build_university

__all__ = ["build_library", "build_supplier_parts", "build_university"]
