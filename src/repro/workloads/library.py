"""The library circulation workload.

Schema::

    books(id PK, title, author, year, available BOOL)
    members(id PK, name, joined DATE)
    loans(id PK, book_id FK, member_id FK, out_date DATE, due DATE,
          returned BOOL)

Views::

    overdue_loans   -- select-project with a BOOL predicate, updatable
    catalog         -- join of loans to books and members (browse-only)
"""

from __future__ import annotations

import datetime
import random
from typing import Optional

from repro.relational.database import Database

TITLE_WORDS = [
    "database", "systems", "relational", "windows", "forms", "design",
    "structures", "algorithms", "languages", "machines",
]
AUTHORS = [
    "codd", "date", "stonebraker", "gray", "ullman", "knuth", "wirth",
    "kernighan", "aho", "hopcroft",
]


def build_library(
    db: Optional[Database] = None,
    books: int = 80,
    members: int = 40,
    loans: int = 150,
    seed: int = 42,
    create_views: bool = True,
) -> Database:
    """Create and populate the library database; returns it."""
    db = db or Database()
    rng = random.Random(seed)
    db.execute_script(
        """
        CREATE TABLE books (
            id INT PRIMARY KEY, title TEXT NOT NULL, author TEXT,
            year INT, available BOOL DEFAULT TRUE);
        CREATE TABLE members (
            id INT PRIMARY KEY, name TEXT NOT NULL, joined DATE);
        CREATE TABLE loans (
            id INT PRIMARY KEY, book_id INT NOT NULL, member_id INT NOT NULL,
            out_date DATE, due DATE, returned BOOL DEFAULT FALSE,
            FOREIGN KEY (book_id) REFERENCES books (id),
            FOREIGN KEY (member_id) REFERENCES members (id));
        """
    )
    for book_id in range(1, books + 1):
        db.insert(
            "books",
            {
                "id": book_id,
                "title": f"{rng.choice(TITLE_WORDS)} {rng.choice(TITLE_WORDS)} vol {book_id}",
                "author": rng.choice(AUTHORS),
                "year": rng.randint(1950, 1983),
            },
        )
    base = datetime.date(1983, 1, 1)
    for member_id in range(1, members + 1):
        db.insert(
            "members",
            {
                "id": member_id,
                "name": f"member-{member_id:03d}",
                "joined": base - datetime.timedelta(days=rng.randint(0, 1000)),
            },
        )
    for loan_id in range(1, loans + 1):
        out_date = base + datetime.timedelta(days=rng.randint(0, 120))
        db.insert(
            "loans",
            {
                "id": loan_id,
                "book_id": rng.randint(1, books),
                "member_id": rng.randint(1, members),
                "out_date": out_date,
                "due": out_date + datetime.timedelta(days=21),
                "returned": rng.random() < 0.6,
            },
        )
    if create_views:
        db.execute(
            "CREATE VIEW overdue_loans AS "
            "SELECT id, book_id, member_id, due FROM loans "
            "WHERE returned = FALSE"
        )
        db.execute(
            "CREATE VIEW catalog AS "
            "SELECT l.id AS loan_id, b.title AS title, m.name AS borrower, "
            "l.due AS due, l.returned AS returned "
            "FROM loans l JOIN books b ON l.book_id = b.id "
            "JOIN members m ON l.member_id = m.id"
        )
    return db
