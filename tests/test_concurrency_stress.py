"""Multi-threaded chaos harness: concurrent sessions that survive abuse.

Eight worker sessions hammer one engine with a seeded mix of autocommit
DML, multi-statement transactions (some rolled back on purpose), reads
that force S->X upgrades, catalog-churning DDL, and deliberately
conflicting lock orders.  Every worker's operation stream is derived from
the test seed, so a failing seed reproduces the same workload; thread
interleaving still varies, which is the point — the invariants below must
hold under *any* interleaving:

* **zero lost updates** — `SUM(v)` over the counters table equals exactly
  the increments whose transactions committed;
* the audit table holds exactly the committed audit rows;
* `integrity_check()` is clean and the engine never degrades;
* every deadlock was resolved by aborting a victim (never by hanging —
  every worker thread is joined with a timeout);
* the session counters surface in `metrics_snapshot()["sessions"]` and
  the `_statements`/`_sessions` telemetry tables stay joinable.

`WOW_CHAOS_SEEDS` widens the seed matrix for CI (`=20` runs seeds 0..19);
the default three seeds keep the tier-1 run fast.  The crash variants at
the bottom mix in the PR 3 fault-injection harness: a mid-commit kill -9
under concurrent sessions must recover to a consistent, non-degraded
database.
"""

from __future__ import annotations

import os
import random
import shutil
import threading

import pytest

from repro.analysis.concurrency import dynlock
from repro.errors import WowError
from repro.relational.database import Database
from repro.relational.faults import FaultInjector, InjectedCrash
from repro.session import SessionConfig, SessionManager

N_WORKERS = 8
OPS_PER_WORKER = 25
COUNTER_ROWS = 4
JOIN_TIMEOUT = 60.0


def _seeds():
    value = os.environ.get("WOW_CHAOS_SEEDS")
    return list(range(int(value))) if value else [0, 1, 2]


def _crash_max_points(default=None):
    value = os.environ.get("CRASH_MAX_POINTS")
    return int(value) if value else default


def _hard_close(db):
    """Release file handles the way a dead process would: no flushing."""
    for pager in db._pagers.values():
        if pager._fd is not None:
            os.close(pager._fd)
            pager._fd = None
    if db.wal is not None and db.wal._fd is not None:
        os.close(db.wal._fd)
        db.wal._fd = None


def _setup_schema(db):
    db.execute("CREATE TABLE counters (id INT PRIMARY KEY, v INT)")
    values = ", ".join(f"({i}, 0)" for i in range(COUNTER_ROWS))
    db.execute(f"INSERT INTO counters VALUES {values}")
    db.execute("CREATE TABLE audit (id INT PRIMARY KEY, worker INT, op INT)")


class _Worker:
    """One session's seeded operation stream plus its committed-work ledger."""

    def __init__(self, manager, worker_id, seed):
        self.manager = manager
        self.worker = worker_id
        self.rng = random.Random(seed * 7919 + worker_id + 1)
        self.committed_increments = 0
        self.committed_audits = 0
        self.retryable_failures = 0
        self.crashed = False
        self.unexpected = []

    def run(self):
        try:
            session = self.manager.connect()
            try:
                for op in range(OPS_PER_WORKER):
                    self._one(session, op)
            finally:
                session.close()
        except InjectedCrash:
            self.crashed = True  # the "process" died; recovery is verified
        except Exception as exc:  # noqa: BLE001 - harness boundary
            self.unexpected.append(exc)

    # -- one operation ------------------------------------------------------

    def _one(self, session, op):
        roll = self.rng.random()
        try:
            if roll < 0.25:
                session.query("SELECT SUM(v) FROM counters")
            elif roll < 0.50:
                row = self.rng.randrange(COUNTER_ROWS)
                session.execute(
                    f"UPDATE counters SET v = v + 1 WHERE id = {row}"
                )
                self.committed_increments += 1
            elif roll < 0.62:
                session.execute(
                    f"INSERT INTO audit VALUES "
                    f"({self.worker * 1000 + op}, {self.worker}, {op})"
                )
                self.committed_audits += 1
            elif roll < 0.94:
                self._txn(session, op)
            else:
                self._ddl(session, op)
        except WowError as exc:
            # A retryable failure means the work provably did not commit
            # (the transaction was rolled back wholesale); losing it is
            # fine, mis-counting it would break the lost-update invariant.
            if not exc.retryable:
                raise
            self.retryable_failures += 1

    def _txn(self, session, op):
        """A multi-statement transaction: upgrade fuel (S then X on the
        same table) and randomized table order (cross-table deadlock fuel).
        Retried wholesale when aborted as a victim."""
        commit = self.rng.random() < 0.8
        rows = [
            self.rng.randrange(COUNTER_ROWS)
            for _ in range(self.rng.randrange(1, 4))
        ]
        audit_first = self.rng.random() < 0.5
        audit_id = 100_000 + self.worker * 1000 + op
        audit_sql = (
            f"INSERT INTO audit VALUES ({audit_id}, {self.worker}, {op})"
        )
        for _attempt in range(4):
            try:
                session.execute("BEGIN")
                session.query("SELECT COUNT(*) FROM counters")  # S first
                if audit_first:
                    session.execute(audit_sql)
                for row in rows:
                    session.execute(
                        f"UPDATE counters SET v = v + 1 WHERE id = {row}"
                    )
                if not audit_first:
                    session.execute(audit_sql)
                if commit:
                    session.execute("COMMIT")
                    self.committed_increments += len(rows)
                    self.committed_audits += 1
                else:
                    session.execute("ROLLBACK")
                return
            except WowError as exc:
                if not exc.retryable:
                    raise
                # the whole transaction was aborted server-side
                self.retryable_failures += 1
        # out of retries: the transaction never committed, counts nothing

    def _ddl(self, session, op):
        """Catalog churn: forces the catalog X lock to serialise against
        every open transaction, and bumps the generation the statement
        pipeline re-checks."""
        name = f"scratch_{self.worker}_{op}"
        session.execute(f"CREATE TABLE {name} (id INT PRIMARY KEY)")
        session.execute(f"DROP TABLE {name}")


def _run_workers(manager, seed):
    workers = [_Worker(manager, w, seed) for w in range(N_WORKERS)]
    threads = [
        threading.Thread(target=w.run, name=f"chaos-w{w.worker}", daemon=True)
        for w in workers
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=JOIN_TIMEOUT)
        assert not thread.is_alive(), (
            "worker hung — a lock wait neither timed out nor deadlock-aborted"
        )
    return workers


@pytest.fixture
def lock_check():
    """Run the chaos workload under the Eraser-style lockset detector:
    every latch/table-lock acquisition is order-checked, and any lock
    discipline violation surfaces both as a LockDisciplineError in a
    worker's ``unexpected`` list and in the snapshot asserted below."""
    dynlock.reset()
    previous = dynlock.enabled()
    dynlock.set_lock_check(True)
    try:
        yield
    finally:
        dynlock.set_lock_check(previous)
        dynlock.reset()


@pytest.mark.parametrize("seed", _seeds())
def test_chaos_invariants(seed, lock_check):
    db = Database()
    manager = SessionManager(
        db,
        SessionConfig(
            max_sessions=N_WORKERS,
            lock_timeout=0.5,
            max_retries=3,
            backoff_base=0.001,
            backoff_cap=0.02,
            retry_seed=seed,
        ),
    )
    _setup_schema(db)
    workers = _run_workers(manager, seed)

    assert not any(w.unexpected for w in workers), [
        w.unexpected for w in workers if w.unexpected
    ]

    # zero lost updates: the committed ledger matches the table exactly
    total = sum(w.committed_increments for w in workers)
    assert db.query("SELECT SUM(v) FROM counters") == [(total,)]
    audits = sum(w.committed_audits for w in workers)
    assert db.query("SELECT COUNT(*) FROM audit") == [(audits,)]

    report = db.integrity_check()
    assert report.ok, report.problems
    assert not db.read_only

    snap = db.metrics_snapshot()["sessions"]
    assert snap["statements"] > N_WORKERS
    assert snap["connects"] == N_WORKERS
    assert snap["disconnects"] == N_WORKERS
    # every deadlock was resolved by aborting a victim
    assert snap["aborts"] >= snap["lock_deadlocks"]

    # telemetry stays joinable: a live session's statements carry its id
    post = manager.connect()
    post.query("SELECT COUNT(*) FROM counters")
    joined = db.query(
        "SELECT COUNT(*) FROM _statements st "
        "JOIN _sessions s ON st.session = s.id"
    )
    assert joined[0][0] >= 1
    post.close()
    manager.close()

    # the dynamic lockset detector watched every acquisition: no thread
    # ever waited on a table lock under the latch, inverted a statement
    # lockset, or inverted the observed mutex order
    dyn = dynlock.snapshot()
    assert dyn["enabled"]
    assert dyn["acquisitions"] > 0
    assert dyn["lockset_runs"] > N_WORKERS
    assert dyn["violations"] == [], dyn["violations"]


def test_chaos_workload_is_seed_deterministic():
    """The op stream is a pure function of (seed, worker): two workers
    built from the same seed draw identical decisions."""
    a = _Worker(None, 3, seed=11)
    b = _Worker(None, 3, seed=11)
    assert [a.rng.random() for _ in range(50)] == [
        b.rng.random() for _ in range(50)
    ]
    c = _Worker(None, 4, seed=11)
    assert [a.rng.random() for _ in range(5)] != [
        c.rng.random() for _ in range(5)
    ]


# ---------------------------------------------------------------------------
# Crashes under concurrency
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("crash_offset", [5, 60])
def test_threaded_chaos_with_mid_run_crash(tmp_path, crash_offset):
    """Kill -9 lands while 8 sessions are mid-flight; the reopened
    database must be consistent and writable regardless of which worker's
    I/O call drew the short straw."""
    path = str(tmp_path / f"chaos_crash_{crash_offset}")
    shim = FaultInjector()  # count-only while setting up
    db = Database(path=path, fsync=True, io=shim)
    manager = SessionManager(
        db,
        SessionConfig(
            max_sessions=N_WORKERS,
            lock_timeout=0.3,
            max_retries=2,
            backoff_base=0.001,
            backoff_cap=0.02,
            retry_seed=crash_offset,
        ),
    )
    _setup_schema(db)
    db.checkpoint()  # schema is durable before the crash point is armed
    shim.crash_at = shim.io_calls + crash_offset

    workers = _run_workers(manager, seed=crash_offset)
    assert not any(w.unexpected for w in workers), [
        w.unexpected for w in workers if w.unexpected
    ]
    assert any(w.crashed for w in workers), (
        "the armed crash point was never reached — widen the offset"
    )
    _hard_close(db)

    reopened = Database(path=path)
    report = reopened.integrity_check()
    assert report.ok, report.problems
    assert not reopened.read_only
    rows = dict(reopened.query("SELECT id, v FROM counters"))
    assert sorted(rows) == list(range(COUNTER_ROWS))
    committed = sum(w.committed_increments for w in workers)
    ceiling = N_WORKERS * OPS_PER_WORKER * 3
    assert 0 <= sum(rows.values()) <= ceiling
    # a commit acknowledged before the crash point may or may not have
    # been the one that crashed; but recovery must never invent updates
    assert sum(rows.values()) <= committed + ceiling
    # the recovered database still takes writes
    reopened.execute("INSERT INTO audit VALUES (999999, -1, -1)")
    reopened.close()


def test_threaded_chaos_tiny_pool(tmp_path):
    """Eight sessions hammer a database whose buffer pool holds two pages.

    Every statement overflows the pool, so this run leans entirely on the
    no-steal discipline: a dirty or pinned page picked as an eviction
    victim raises StorageError inside the pager (surfacing in a worker's
    ``unexpected`` list), and a page silently stolen to disk would break
    the recovery comparison after reopen.
    """
    path = str(tmp_path / "chaos_tiny_pool")
    db = Database(path=path, fsync=True, pool_size=2, prefetch_pages=4)
    manager = SessionManager(
        db,
        SessionConfig(
            max_sessions=N_WORKERS,
            lock_timeout=0.3,
            max_retries=2,
            backoff_base=0.001,
            backoff_cap=0.02,
            retry_seed=7,
        ),
    )
    _setup_schema(db)
    # A heap wider than the pool: scanning it pins a prefetch window of 4
    # pages into a 2-page pool, so the pool *must* overflow (rather than
    # steal) to honour the promise read_pages made to the scan.
    db.execute("CREATE TABLE filler (id INT PRIMARY KEY, pad TEXT)")
    values = ", ".join(f"({i}, '{'x' * 200}')" for i in range(200))
    db.execute(f"INSERT INTO filler VALUES {values}")
    db.checkpoint()
    assert db.catalog.table("filler").heap.page_count() > 4
    assert db.query("SELECT COUNT(*) FROM filler") == [(200,)]
    workers = _run_workers(manager, seed=7)
    assert not any(w.unexpected for w in workers), [
        w.unexpected for w in workers if w.unexpected
    ]
    pool_stats = db.metrics_snapshot()["pager"]
    assert pool_stats.get("pool_overflows", 0) > 0, (
        "a two-page pool never overflowed — the pressure test exerted none"
    )
    expected = dict(db.query("SELECT id, v FROM counters"))
    db.close()

    reopened = Database(path=path)
    report = reopened.integrity_check()
    assert report.ok, report.problems
    assert dict(reopened.query("SELECT id, v FROM counters")) == expected
    reopened.close()


def test_two_session_crash_exhaustion(tmp_path):
    """Satellite: the PR 3 crash-point exhaustion harness over a
    deterministic two-session interleaving — one session commits while the
    other is still mid-transaction.  Every crash point must recover to one
    of the legal states, with the commit order respected: session 2's
    commit happens after session 1's, so t2 being durable implies t1 is."""
    path = str(tmp_path / "two_session_db")

    def run(shim):
        shutil.rmtree(path, ignore_errors=True)
        db = Database(path=path, fsync=True, io=shim)
        manager = SessionManager(db)
        try:
            db.execute("CREATE TABLE t1 (id INT PRIMARY KEY)")
            db.execute("CREATE TABLE t2 (id INT PRIMARY KEY)")
            s1, s2 = manager.connect(), manager.connect()
            s1.execute("BEGIN")
            s1.execute("INSERT INTO t1 VALUES (1)")
            s2.execute("BEGIN")
            s2.execute("INSERT INTO t2 VALUES (1)")
            s1.execute("COMMIT")  # s2 is mid-txn at this commit
            s2.execute("INSERT INTO t2 VALUES (2)")
            s2.execute("COMMIT")
            s1.close()
            s2.close()
            db.checkpoint()
            db.close()
        except InjectedCrash:
            _hard_close(db)
            raise

    def verify(shim):
        db = Database(path=path)
        report = db.integrity_check()
        assert report.ok, (shim.crash_at, report.problems)
        assert not db.read_only, shim.crash_at
        names = db.table_names()
        t1 = sorted(db.query("SELECT id FROM t1")) if "t1" in names else []
        t2 = sorted(db.query("SELECT id FROM t2")) if "t2" in names else []
        # transaction atomicity: all of a txn's rows or none of them
        assert t1 in ([], [(1,)]), (shim.crash_at, t1)
        assert t2 in ([], [(1,), (2,)]), (shim.crash_at, t2)
        # commit order: s2 committed strictly after s1
        if t2:
            assert t1 == [(1,)], (shim.crash_at, t1, t2)
        db.close()

    from repro.relational.faults import exhaust_crash_points

    points = exhaust_crash_points(
        run, verify, max_points=_crash_max_points()
    )
    assert points, "the workload produced no fault-injectable I/O"
