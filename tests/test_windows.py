"""Tests for the windowing substrate: screen, widgets, windows, manager."""

import pytest

from repro.errors import FocusError, GeometryError, WindowError
from repro.windows import (
    Attr,
    GridView,
    Key,
    KeyEvent,
    Label,
    Rect,
    Renderer,
    ScreenBuffer,
    StatusBar,
    TextField,
    Window,
    WindowManager,
)
from repro.windows.events import format_keys, parse_keys


class TestRect:
    def test_degenerate_rejected(self):
        with pytest.raises(GeometryError):
            Rect(0, 0, 0, 5)

    def test_contains(self):
        rect = Rect(2, 3, 4, 2)
        assert rect.contains(2, 3) and rect.contains(5, 4)
        assert not rect.contains(6, 3) and not rect.contains(2, 5)

    def test_intersect(self):
        a = Rect(0, 0, 10, 10)
        b = Rect(5, 5, 10, 10)
        assert a.intersect(b) == Rect(5, 5, 5, 5)
        assert a.intersect(Rect(20, 20, 2, 2)) is None

    def test_inset_and_move(self):
        assert Rect(0, 0, 10, 10).inset(1, 2) == Rect(1, 2, 8, 6)
        assert Rect(1, 1, 2, 2).moved(3, -1) == Rect(4, 0, 2, 2)


class TestKeyScripts:
    def test_parse_mixed(self):
        events = parse_keys("ab<ENTER><F2>c")
        assert [e.key for e in events] == ["a", "b", "ENTER", "F2", "c"]

    def test_literal_angle(self):
        events = parse_keys("a<<b")
        assert [e.key for e in events] == ["a", "<", "b"]

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError):
            parse_keys("<WARP>")

    def test_unterminated_rejected(self):
        with pytest.raises(ValueError):
            parse_keys("<ENTER")

    def test_roundtrip(self):
        script = "x<TAB>1<<2<ENTER>"
        assert format_keys(parse_keys(script)) == script


class TestScreenBuffer:
    def test_write_and_read(self):
        screen = ScreenBuffer(20, 5)
        screen.write(2, 1, "hello", Attr.BOLD)
        assert screen.row_text(1)[2:7] == "hello"
        assert screen.cell(2, 1).attr == Attr.BOLD

    def test_clipping_to_bounds(self):
        screen = ScreenBuffer(5, 2)
        screen.write(3, 0, "long-text")  # silently clipped
        assert screen.row_text(0) == "   lo"

    def test_clip_rect(self):
        screen = ScreenBuffer(10, 3)
        screen.set_clip(Rect(2, 1, 3, 1))
        screen.write(0, 1, "abcdefgh")
        assert screen.row_text(1) == "  cde     "
        screen.set_clip(None)

    def test_box(self):
        screen = ScreenBuffer(6, 4)
        screen.box(Rect(0, 0, 6, 4))
        assert screen.row_text(0) == "+----+"
        assert screen.row_text(3) == "+----+"
        assert screen.row_text(1)[0] == "|" and screen.row_text(1)[5] == "|"

    def test_fill_counts_writes(self):
        screen = ScreenBuffer(10, 10)
        screen.reset_stats()
        screen.fill(Rect(0, 0, 4, 3), "#")
        assert screen.cells_written == 12

    def test_diff(self):
        a = ScreenBuffer(8, 2)
        b = ScreenBuffer(8, 2)
        a.write(0, 0, "xy")
        changes = a.diff(b)
        assert len(changes) == 2
        assert changes[0][:2] == (0, 0)

    def test_diff_size_mismatch(self):
        with pytest.raises(GeometryError):
            ScreenBuffer(2, 2).diff(ScreenBuffer(3, 2))

    def test_find(self):
        screen = ScreenBuffer(20, 3)
        screen.write(5, 2, "needle")
        assert screen.find("needle") == (5, 2)
        assert screen.find("absent") is None

    def test_cell_out_of_range(self):
        with pytest.raises(GeometryError):
            ScreenBuffer(2, 2).cell(5, 0)


class TestTextField:
    def field(self, **kwargs):
        return TextField(0, 0, 10, **kwargs)

    def send(self, field, script):
        for event in parse_keys(script):
            field.handle_key(event)

    def test_typing(self):
        field = self.field()
        self.send(field, "abc")
        assert field.text == "abc" and field.cursor == 3

    def test_backspace_and_delete(self):
        field = self.field(text="abcd")
        self.send(field, "<BACKSPACE>")
        assert field.text == "abc"
        self.send(field, "<HOME><DELETE>")
        assert field.text == "bc"

    def test_cursor_movement_and_insert(self):
        field = self.field(text="ac")
        self.send(field, "<LEFT>b")
        assert field.text == "abc"
        self.send(field, "<END>d")
        assert field.text == "abcd"

    def test_read_only_swallows_edits(self):
        field = self.field(text="keep", read_only=True)
        self.send(field, "x<BACKSPACE>")
        assert field.text == "keep"

    def test_horizontal_scroll(self):
        field = TextField(0, 0, 5)
        self.send(field, "abcdefghij")
        assert field.scroll > 0
        screen = ScreenBuffer(5, 1)
        field.focused = True
        field.render(screen, 0, 0)
        assert "j" in screen.row_text(0)

    def test_on_change_fires(self):
        seen = []
        field = TextField(0, 0, 5, on_change=seen.append)
        self.send(field, "hi")
        assert seen == ["h", "hi"]

    def test_unhandled_key_bubbles(self):
        assert self.field().handle_key(KeyEvent(Key.F5)) is False


class TestGridView:
    def grid(self, height=5):
        g = GridView(Rect(0, 0, 30, height), [("id", 4), ("name", 10)])
        g.set_rows([(str(i), f"row{i}") for i in range(20)])
        return g

    def test_selection_moves_and_clamps(self):
        grid = self.grid()
        grid.handle_key(KeyEvent(Key.DOWN))
        assert grid.selected == 1
        grid.handle_key(KeyEvent(Key.UP))
        grid.handle_key(KeyEvent(Key.UP))
        assert grid.selected == 0

    def test_paging_and_home_end(self):
        grid = self.grid()
        grid.handle_key(KeyEvent(Key.PGDN))
        assert grid.selected == 4
        grid.handle_key(KeyEvent(Key.END))
        assert grid.selected == 19
        grid.handle_key(KeyEvent(Key.HOME))
        assert grid.selected == 0

    def test_scroll_follows_selection(self):
        grid = self.grid()
        for _ in range(10):
            grid.handle_key(KeyEvent(Key.DOWN))
        assert grid.scroll == 10 - grid.body_height + 1

    def test_on_select_callback(self):
        seen = []
        grid = GridView(Rect(0, 0, 20, 4), [("a", 5)], on_select=seen.append)
        grid.set_rows([("1",), ("2",)])
        grid.handle_key(KeyEvent(Key.DOWN))
        assert seen == [1]

    def test_on_activate(self):
        seen = []
        grid = GridView(Rect(0, 0, 20, 4), [("a", 5)], on_activate=seen.append)
        grid.set_rows([("1",), ("2",)])
        grid.handle_key(KeyEvent(Key.DOWN))
        grid.handle_key(KeyEvent(Key.ENTER))
        assert seen == [1]

    def test_render_header_and_selection(self):
        grid = self.grid()
        grid.focused = True
        screen = ScreenBuffer(30, 5)
        grid.render(screen, 0, 0)
        assert screen.row_text(0).startswith("id   name")
        assert screen.row_text(1).startswith("0    row0")

    def test_too_small_rejected(self):
        with pytest.raises(GeometryError):
            GridView(Rect(0, 0, 10, 1), [("a", 3)])

    def test_set_rows_clamps_selection(self):
        grid = self.grid()
        grid.select(19)
        grid.set_rows([("only",) ])
        assert grid.selected == 0


class TestWindow:
    def make(self):
        window = Window("Test", Rect(0, 0, 40, 10))
        window.add(Label(0, 0, "Name:"))
        f1 = window.add(TextField(7, 0, 10))
        f2 = window.add(TextField(7, 1, 10))
        return window, f1, f2

    def test_first_focusable_gets_focus(self):
        window, f1, _f2 = self.make()
        assert window.focused_widget is f1 and f1.focused

    def test_tab_cycles(self):
        window, f1, f2 = self.make()
        window.handle_key(KeyEvent(Key.TAB))
        assert window.focused_widget is f2
        window.handle_key(KeyEvent(Key.TAB))
        assert window.focused_widget is f1
        window.handle_key(KeyEvent(Key.BACKTAB))
        assert window.focused_widget is f2

    def test_keys_go_to_focused_widget(self):
        window, f1, f2 = self.make()
        window.handle_key(KeyEvent("x"))
        assert f1.text == "x" and f2.text == ""

    def test_focus_specific(self):
        window, _f1, f2 = self.make()
        window.focus(f2)
        assert f2.focused

    def test_focus_errors(self):
        window, _f1, _f2 = self.make()
        label = Label(0, 5, "static")
        with pytest.raises(FocusError):
            window.focus(label)
        window.add(label)
        with pytest.raises(FocusError):
            window.focus(label)

    def test_render_frame_and_title(self):
        window, _f1, _f2 = self.make()
        screen = ScreenBuffer(50, 12)
        window.render(screen)
        assert screen.find("Test") is not None
        assert screen.row_text(0).strip().startswith("+")

    def test_too_small_rejected(self):
        with pytest.raises(GeometryError):
            Window("x", Rect(0, 0, 3, 3))

    def test_min_resize_enforced(self):
        window, _f1, _f2 = self.make()
        with pytest.raises(GeometryError):
            window.resize(2, 2)


class TestWindowManager:
    def manager(self):
        wm = WindowManager(80, 24)
        w1 = Window("One", Rect(0, 0, 30, 10))
        w2 = Window("Two", Rect(20, 5, 30, 10))
        wm.open(w1)
        wm.open(w2)
        return wm, w1, w2

    def test_open_sets_active(self):
        wm, w1, w2 = self.manager()
        assert wm.active_window is w2 and w2.active and not w1.active

    def test_close_restores_previous(self):
        wm, w1, w2 = self.manager()
        wm.close(w2)
        assert wm.active_window is w1 and w1.active

    def test_double_open_rejected(self):
        wm, w1, _w2 = self.manager()
        with pytest.raises(WindowError):
            wm.open(w1)

    def test_close_unknown_rejected(self):
        wm, _w1, _w2 = self.manager()
        with pytest.raises(WindowError):
            wm.close(Window("ghost", Rect(0, 0, 10, 5)))

    def test_raise_and_cycle(self):
        wm, w1, w2 = self.manager()
        wm.raise_window(w1)
        assert wm.active_window is w1
        wm.cycle()
        assert wm.active_window is w2

    def test_f1_cycles_globally(self):
        wm, w1, _w2 = self.manager()
        wm.dispatch(KeyEvent(Key.F1))
        assert wm.active_window is w1

    def test_dispatch_reaches_topmost(self):
        wm, w1, w2 = self.manager()
        f = w2.add(TextField(0, 0, 8))
        wm.dispatch(KeyEvent("z"))
        assert f.text == "z"

    def test_overlap_topmost_wins(self):
        wm, w1, w2 = self.manager()
        wm.render_frame()
        # (25, 6) is inside both; w2 is on top, its frame/blank should rule.
        text = wm.screen_text()
        assert "Two" in text

    def test_tile(self):
        wm, w1, w2 = self.manager()
        wm.tile()
        assert w1.rect.x == 0 and w2.rect.x == 40
        assert w1.rect.height == 24

    def test_differential_render_cheaper_than_full(self):
        wm, _w1, w2 = self.manager()
        first = wm.render_frame()
        f = w2.add(TextField(0, 0, 8))
        wm.dispatch(KeyEvent("q"))
        second = wm.render_frame()
        assert second < first  # only the field area changed

    def test_full_mode_always_pays_whole_screen(self):
        wm = WindowManager(40, 10, differential=False)
        wm.open(Window("W", Rect(0, 0, 20, 5)))
        assert wm.render_frame() == 400
        assert wm.render_frame() == 400

    def test_no_change_frame_transmits_nothing(self):
        wm, _w1, _w2 = self.manager()
        wm.render_frame()
        assert wm.render_frame() == 0


class TestRenderer:
    def test_stats_accumulate(self):
        renderer = Renderer(10, 4)
        back = renderer.begin_frame()
        back.write(0, 0, "abc")
        n = renderer.flush()
        assert n == 3
        assert renderer.cells_transmitted == 3 and renderer.frames == 1
        renderer.reset_stats()
        assert renderer.cells_transmitted == 0

    def test_changed_cells_preview(self):
        renderer = Renderer(10, 4)
        back = renderer.begin_frame()
        back.write(0, 0, "ab")
        assert len(renderer.changed_cells()) == 2


class TestStatusBar:
    def test_message_rendering(self):
        bar = StatusBar(0, 0, 10)
        bar.set_message("saved")
        screen = ScreenBuffer(10, 1)
        bar.render(screen, 0, 0)
        assert screen.row_text(0) == "saved     "
