"""End-to-end tests: WowApp key-script driving, linking, and the baselines."""

import pytest

from repro.baselines import DumpBrowser, SqlCli
from repro.core import WowApp
from repro.errors import WowError
from repro.forms import Mode
from repro.relational.database import Database
from repro.windows.geometry import Rect


@pytest.fixture
def app(company):
    return WowApp(company)


class TestWowApp:
    def test_open_form_shows_first_record(self, app):
        app.open_form("emp")
        app.expect_on_screen("ada")
        app.expect_on_screen("BROWSE 1/4")

    def test_navigation_by_keys(self, app):
        app.open_form("emp")
        app.send_keys("<DOWN><DOWN>")
        app.expect_on_screen("cyd")
        app.send_keys("<UP>")
        app.expect_on_screen("bob")

    def test_edit_workflow_by_keys(self, app, company):
        form = app.open_form("emp")
        # F2 edit, TAB to name, clear it, retype, save.
        app.send_keys("<F2><TAB><END>")
        app.send_keys("<BACKSPACE>" * 3)
        app.send_keys("zoe<F2>")
        assert form.controller.mode is Mode.BROWSE
        assert company.query("SELECT name FROM emp WHERE id = 10") == [("zoe",)]
        app.expect_on_screen("zoe")

    def test_insert_workflow_by_keys(self, app, company):
        app.open_form("emp")
        app.send_keys("<F3>")
        app.send_keys("42<TAB>guy<TAB>2<TAB>55<F2>")
        assert company.execute("SELECT COUNT(*) FROM emp").scalar() == 5
        app.expect_on_screen("record inserted")

    def test_query_workflow_by_keys(self, app):
        form = app.open_form("emp")
        app.send_keys("<F4><TAB><TAB><TAB>>95<ENTER>")
        assert form.controller.record_count == 2
        app.expect_on_screen("[filtered]")

    def test_delete_by_keys(self, app, company):
        app.open_form("emp")
        app.send_keys("<END><F6>")
        assert company.execute("SELECT COUNT(*) FROM emp").scalar() == 3

    def test_escape_cancels_edit(self, app, company):
        form = app.open_form("emp")
        app.send_keys("<F2>")
        app.send_keys("<TAB>xxx<ESC>")
        assert form.controller.mode is Mode.BROWSE
        assert company.query("SELECT name FROM emp WHERE id = 10") == [("ada",)]

    def test_keystrokes_counted(self, app):
        app.open_form("emp")
        app.send_keys("<DOWN><DOWN><UP>")
        assert app.keys.total == 3

    def test_two_windows_and_f1_cycling(self, app):
        emp = app.open_form("emp", x=0, y=0)
        dept = app.open_form("dept", x=45, y=0)
        assert app.active_window is dept
        app.send_keys("<F1>")
        assert app.active_window is emp

    def test_master_detail_link(self, app):
        dept = app.open_form("dept", x=45, y=0)
        emp = app.open_form("emp", x=0, y=8)
        app.link(dept, emp, on=[("id", "dept_id")])
        assert emp.controller.record_count == 2  # dept 1: ada, cyd
        # Move the master (emp window is active; switch to dept first).
        app.wm.raise_window(dept)
        app.send_keys("<DOWN>")  # dept 2 = sales
        assert emp.controller.record_count == 1  # bob
        app.send_keys("<DOWN>")  # dept 3 = hr, nobody
        assert emp.controller.record_count == 0

    def test_unlink(self, app):
        dept = app.open_form("dept")
        emp = app.open_form("emp")
        link = app.link(dept, emp, on=[("id", "dept_id")])
        link.unlink()
        assert emp.controller.record_count == 4

    def test_browser_window(self, app):
        browser = app.open_browser("emp", Rect(0, 0, 70, 12))
        app.expect_on_screen("ada")
        app.send_keys("<DOWN>")
        assert browser.current_row[1] == "bob"

    def test_browser_refresh_after_dml(self, app, company):
        browser = app.open_browser("emp", Rect(0, 0, 70, 12))
        company.execute("DELETE FROM emp WHERE id = 13")
        app.send_keys("<F5>")
        assert len(browser.rows) == 3

    def test_close_window(self, app):
        emp = app.open_form("emp")
        dept = app.open_form("dept")
        app.close(dept)
        assert app.active_window is emp

    def test_expect_on_screen_raises(self, app):
        app.open_form("emp")
        with pytest.raises(WowError):
            app.expect_on_screen("certainly-not-there")

    def test_form_on_view_via_app(self, app, company):
        form = app.open_form("eng_emps")
        assert form.controller.record_count == 2
        app.send_keys("<F2><TAB><TAB><END>")
        app.send_keys("<BACKSPACE>" * 5)
        app.send_keys("142<F2>")
        assert company.execute("SELECT salary FROM emp WHERE id = 10").scalar() == 142.0


class TestSqlCli:
    def test_select_and_metering(self, company):
        cli = SqlCli(company)
        sql = "SELECT name FROM emp WHERE id = 10"
        result = cli.run(sql)
        assert result.rows == [("ada",)]
        assert cli.keys.total == len(sql) + 1
        assert cli.output_chars > 0

    def test_render_table_format(self, company):
        cli = SqlCli(company)
        result = cli.run("SELECT id, name FROM dept ORDER BY id")
        text = cli.render_result(result)
        assert "id" in text and "eng" in text and "(3 rows)" in text

    def test_dml_render(self, company):
        cli = SqlCli(company)
        cli.run("UPDATE emp SET salary = 1 WHERE id = 10")
        assert "(1 rows affected)" in cli.render_result(cli.last_result)

    def test_error_reported_not_raised(self, company):
        cli = SqlCli(company)
        assert cli.run("SELECT * FROM nope") is None
        assert "CatalogError" in cli.last_error

    def test_history(self, company):
        cli = SqlCli(company)
        cli.run("SELECT id FROM dept")
        cli.run("SELECT id FROM emp")
        assert len(cli.history) == 2


class TestDumpBrowser:
    def test_navigation(self, company):
        browser = DumpBrowser(company, "emp")
        assert browser.current_row()[0] == 10
        browser.command("n")
        assert browser.current_row()[0] == 11
        browser.command("l")
        assert browser.current_row()[0] == 13
        browser.command("f")
        assert browser.current_row()[0] == 10

    def test_search(self, company):
        browser = DumpBrowser(company, "emp")
        browser.command("/name=cyd")
        assert browser.current_row()[0] == 12

    def test_search_not_found(self, company):
        browser = DumpBrowser(company, "emp")
        browser.command("/name=nobody")
        assert browser.message == "not found"

    def test_update(self, company):
        browser = DumpBrowser(company, "emp")
        browser.command("u salary=42")
        assert company.execute("SELECT salary FROM emp WHERE id = 10").scalar() == 42.0

    def test_insert_and_delete(self, company):
        browser = DumpBrowser(company, "emp")
        browser.command("i id=70,name=tmp,salary=5")
        assert company.execute("SELECT COUNT(*) FROM emp").scalar() == 5
        browser.command("/id=70")
        browser.command("x")
        assert company.execute("SELECT COUNT(*) FROM emp").scalar() == 4

    def test_filter(self, company):
        browser = DumpBrowser(company, "emp")
        browser.command("q salary > 95")
        assert len(browser.rows) == 2
        browser.command("q")
        assert len(browser.rows) == 4

    def test_metering(self, company):
        browser = DumpBrowser(company, "emp")
        before = browser.output_chars
        browser.command("n")
        assert browser.keys.total == 2  # 'n' + ENTER
        assert browser.output_chars > before  # re-printed the record

    def test_errors_become_messages(self, company):
        browser = DumpBrowser(company, "emp")
        browser.command("zzz")
        assert "error" in browser.message
        browser.command("u ghost=1")
        assert "error" in browser.message

    def test_works_on_views(self, company):
        browser = DumpBrowser(company, "eng_emps")
        assert len(browser.rows) == 2
        browser.command("u salary=60")
        assert company.execute("SELECT salary FROM emp WHERE id = 10").scalar() == 60.0


class TestWorkloads:
    def test_university_deterministic(self):
        from repro.workloads import build_university

        db1 = build_university(students=20, courses=10)
        db2 = build_university(students=20, courses=10)
        assert db1.query("SELECT * FROM students ORDER BY id") == db2.query(
            "SELECT * FROM students ORDER BY id"
        )

    def test_university_views_work(self):
        from repro.workloads import build_university

        db = build_university(students=30, courses=10)
        assert db.execute("SELECT COUNT(*) FROM transcript").scalar() > 0
        seniors = db.execute("SELECT COUNT(*) FROM senior_students").scalar()
        direct = db.execute("SELECT COUNT(*) FROM students WHERE year = 4").scalar()
        assert seniors == direct

    def test_supplier_parts_view_chain(self):
        from repro.workloads import build_supplier_parts

        db = build_supplier_parts(suppliers=10, parts=20, shipments=50)
        heavy = db.query("SELECT weight FROM heavy_red_parts")
        assert all(w > 25 for (w,) in heavy)

    def test_library_fk_integrity(self):
        from repro.workloads import build_library
        from repro.errors import ForeignKeyError

        db = build_library(books=10, members=5, loans=20)
        with pytest.raises(ForeignKeyError):
            db.insert("loans", {"id": 999, "book_id": 12345, "member_id": 1})
