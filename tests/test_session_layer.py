"""Session layer: lock manager semantics, session lifecycle, retry
policy, degradation, telemetry, and the wire protocol.

Thread-using tests are deterministic where the design allows it (the
deadlock victim is always the youngest session id; backoff jitter is
seeded) and bounded everywhere else: every helper thread is joined with a
timeout and asserted dead, so a regression hangs a test for seconds, not
forever.
"""

from __future__ import annotations

import socket
import threading

import pytest

from repro.errors import (
    BusyError,
    CatalogError,
    LockTimeoutError,
    ReadOnlyError,
    SerializationError,
    SessionError,
    StatementTimeoutError,
    TransactionError,
)
from repro.relational.database import Database
from repro.relational.txn import UndoEntry
from repro.session import (
    CATALOG_RESOURCE,
    EXCLUSIVE,
    SHARED,
    DatabaseServer,
    LockManager,
    RemoteSession,
    SessionConfig,
    SessionManager,
)
from repro.session.server import FRAME_HEADER, MAX_FRAME_BYTES, recv_frame, send_frame

JOIN_TIMEOUT = 20.0


def run_thread(fn):
    """Run *fn* in a thread; returns (thread, box) where box collects
    the result under ``"value"`` or the exception under ``"error"``."""
    box = {}

    def target():
        try:
            box["value"] = fn()
        except BaseException as exc:  # noqa: BLE001 - test harness boundary
            box["error"] = exc

    thread = threading.Thread(target=target, daemon=True)
    thread.start()
    return thread, box


def join_dead(thread):
    thread.join(timeout=JOIN_TIMEOUT)
    assert not thread.is_alive(), "helper thread hung"


def wait_until(predicate, timeout=JOIN_TIMEOUT):
    deadline = threading.Event()
    import time

    end = time.monotonic() + timeout
    while time.monotonic() < end:
        if predicate():
            return
        deadline.wait(0.002)
    raise AssertionError("condition never became true")


# ---------------------------------------------------------------------------
# LockManager
# ---------------------------------------------------------------------------


class TestLockManager:
    def test_shared_locks_coexist(self):
        lm = LockManager()
        lm.acquire(1, "t", SHARED, 1.0)
        lm.acquire(2, "t", SHARED, 1.0)
        assert lm.held(1) == [("t", SHARED)]
        assert lm.held(2) == [("t", SHARED)]
        assert lm.stats["waits"] == 0

    def test_reacquire_is_idempotent(self):
        lm = LockManager()
        lm.acquire(1, "t", EXCLUSIVE, 1.0)
        lm.acquire(1, "t", EXCLUSIVE, 1.0)
        lm.acquire(1, "t", SHARED, 1.0)  # X already covers S
        assert lm.held(1) == [("t", EXCLUSIVE)]
        assert lm.stats["acquired"] == 1

    def test_upgrade_when_sole_holder(self):
        lm = LockManager()
        lm.acquire(1, "t", SHARED, 1.0)
        lm.acquire(1, "t", EXCLUSIVE, 1.0)
        assert lm.held(1) == [("t", EXCLUSIVE)]
        assert lm.stats["upgrades"] == 1

    def test_exclusive_blocks_until_release(self):
        lm = LockManager()
        lm.acquire(1, "t", EXCLUSIVE, 1.0)
        thread, box = run_thread(lambda: lm.acquire(2, "t", SHARED, 10.0))
        wait_until(lambda: lm.stats["waits"] == 1)
        assert thread.is_alive()
        lm.release_all(1)
        join_dead(thread)
        assert "error" not in box
        assert lm.held(2) == [("t", SHARED)]

    def test_lock_timeout(self):
        lm = LockManager()
        lm.acquire(1, "t", EXCLUSIVE, 1.0)
        with pytest.raises(LockTimeoutError) as exc_info:
            lm.acquire(2, "t", SHARED, 0.02)
        assert exc_info.value.retryable
        assert lm.stats["timeouts"] == 1
        assert lm.held(2) == []

    def test_deadlock_dooms_youngest(self):
        lm = LockManager()
        lm.acquire(1, "a", EXCLUSIVE, 1.0)
        lm.acquire(2, "b", EXCLUSIVE, 1.0)
        t1, box1 = run_thread(lambda: lm.acquire(1, "b", EXCLUSIVE, 30.0))
        t2, box2 = run_thread(lambda: lm.acquire(2, "a", EXCLUSIVE, 30.0))
        # session 2 is the youngest member of the cycle: always the victim
        join_dead(t2)
        assert isinstance(box2.get("error"), SerializationError)
        assert box2["error"].retryable
        lm.release_all(2)
        join_dead(t1)
        assert "error" not in box1
        assert lm.stats["deadlocks"] == 1

    def test_release_all_clears_doom(self):
        lm = LockManager()
        lm._doomed.add(3)
        lm.release_all(3)
        lm.acquire(3, "t", SHARED, 1.0)  # must not abort on stale doom
        assert lm.held(3) == [("t", SHARED)]

    def _ring(self, lm, n):
        """Build an n-session wait ring: session i holds resource i and
        requests resource i+1 (mod n).  Returns [(thread, box), ...] in
        session order; the last request closes the cycle."""
        for sid in range(1, n + 1):
            lm.acquire(sid, f"r{sid}", EXCLUSIVE, 1.0)
        waiters = []
        for sid in range(1, n + 1):
            nxt = sid % n + 1
            thread, box = run_thread(
                lambda s=sid, r=f"r{nxt}": lm.acquire(s, r, EXCLUSIVE, 30.0)
            )
            waiters.append((thread, box))
            wait_until(lambda count=sid: lm.stats["waits"] >= count)
        return waiters

    def _drain_ring(self, lm, waiters, victim):
        """After *victim* aborts, release sessions in reverse id order so
        every survivor's grant unblocks the next; assert none errored."""
        lm.release_all(victim)
        for sid in range(victim - 1, 0, -1):
            thread, box = waiters[sid - 1]
            join_dead(thread)
            assert "error" not in box, f"session {sid} should survive"
            lm.release_all(sid)

    def test_three_cycle_dooms_youngest(self):
        lm = LockManager()
        waiters = self._ring(lm, 3)
        thread, box = waiters[2]  # session 3: youngest member
        join_dead(thread)
        assert isinstance(box.get("error"), SerializationError)
        assert box["error"].retryable
        assert lm.stats["deadlocks"] == 1
        self._drain_ring(lm, waiters, victim=3)

    def test_four_cycle_dooms_youngest(self):
        lm = LockManager()
        waiters = self._ring(lm, 4)
        thread, box = waiters[3]  # session 4
        join_dead(thread)
        assert isinstance(box.get("error"), SerializationError)
        assert lm.stats["deadlocks"] == 1
        self._drain_ring(lm, waiters, victim=4)

    def test_victim_choice_is_order_independent(self):
        # the victim is max(cycle) no matter which waiter's wait-loop pass
        # detects the cycle: park the *older* session first, then let the
        # younger one close the cycle (so session 1 triggers detection on
        # a later pass), and vice versa — the youngest dies both times
        for first_waiter in (1, 2):
            lm = LockManager()
            lm.acquire(1, "a", EXCLUSIVE, 1.0)
            lm.acquire(2, "b", EXCLUSIVE, 1.0)
            order = [1, 2] if first_waiter == 1 else [2, 1]
            boxes = {}
            threads = {}
            for sid in order:
                resource = "b" if sid == 1 else "a"
                threads[sid], boxes[sid] = run_thread(
                    lambda s=sid, r=resource: lm.acquire(s, r, EXCLUSIVE, 30.0)
                )
                wait_until(
                    lambda count=len(threads): lm.stats["waits"] >= count
                )
            join_dead(threads[2])
            assert isinstance(boxes[2].get("error"), SerializationError)
            lm.release_all(2)
            join_dead(threads[1])
            assert "error" not in boxes[1]

    def test_waiter_outside_cycle_survives(self):
        # session 3 waits on a cycle member's resource but is not part of
        # the cycle: it must never be doomed, and proceeds once the chain
        # unwinds
        lm = LockManager()
        lm.acquire(1, "a", EXCLUSIVE, 1.0)
        lm.acquire(2, "b", EXCLUSIVE, 1.0)
        t3, box3 = run_thread(lambda: lm.acquire(3, "a", SHARED, 30.0))
        wait_until(lambda: lm.stats["waits"] >= 1)
        t1, box1 = run_thread(lambda: lm.acquire(1, "b", EXCLUSIVE, 30.0))
        wait_until(lambda: lm.stats["waits"] >= 2)
        t2, box2 = run_thread(lambda: lm.acquire(2, "a", EXCLUSIVE, 30.0))
        # cycle is {1, 2}; 3 is younger than both but outside the cycle
        join_dead(t2)
        assert isinstance(box2.get("error"), SerializationError)
        lm.release_all(2)
        join_dead(t1)
        assert "error" not in box1
        lm.release_all(1)
        join_dead(t3)
        assert "error" not in box3
        assert lm.held(3) == [("a", SHARED)]
        assert lm.stats["deadlocks"] == 1


# ---------------------------------------------------------------------------
# Sessions over one engine
# ---------------------------------------------------------------------------


@pytest.fixture
def mgr(db):
    manager = SessionManager(
        db, SessionConfig(max_sessions=4, lock_timeout=5.0, retry_seed=7)
    )
    yield manager
    manager.close()


def _seed(db):
    db.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
    db.execute("INSERT INTO t VALUES (1, 10), (2, 20)")


class TestSessions:
    def test_autocommit_visible_across_sessions(self, db, mgr):
        _seed(db)
        db.execute("GRANT INSERT ON t TO alice")
        db.execute("GRANT SELECT ON t TO bob")
        s1, s2 = mgr.connect("alice"), mgr.connect("bob")
        s1.execute("INSERT INTO t VALUES (3, 30)")
        assert s2.query("SELECT v FROM t WHERE id = 3") == [(30,)]

    def test_writer_blocks_reader_until_commit(self, db, mgr):
        _seed(db)
        s1, s2 = mgr.connect(), mgr.connect()
        s1.execute("BEGIN")
        s1.execute("UPDATE t SET v = 11 WHERE id = 1")
        thread, box = run_thread(
            lambda: s2.query("SELECT v FROM t WHERE id = 1")
        )
        wait_until(lambda: mgr.locks.stats["waits"] >= 1)
        assert thread.is_alive(), "reader must wait for the writer's X lock"
        s1.execute("COMMIT")
        join_dead(thread)
        # no dirty read: the reader saw the committed value, after commit
        assert box["value"] == [(11,)]

    def test_rollback_discards_and_releases(self, db, mgr):
        _seed(db)
        s1, s2 = mgr.connect(), mgr.connect()
        s1.execute("BEGIN")
        s1.execute("DELETE FROM t WHERE id = 2")
        s1.execute("ROLLBACK")
        assert not s1.in_txn
        assert mgr.locks.held(s1.id) == []
        assert s2.query("SELECT COUNT(*) FROM t") == [(2,)]

    def test_savepoints_swap_per_session(self, db, mgr):
        _seed(db)
        s1 = mgr.connect()
        s1.execute("BEGIN")
        s1.execute("UPDATE t SET v = 99 WHERE id = 1")
        s1.execute("SAVEPOINT sp")
        s1.execute("DELETE FROM t WHERE id = 2")
        s1.execute("ROLLBACK TO SAVEPOINT sp")
        s1.execute("COMMIT")
        assert s1.query("SELECT COUNT(*) FROM t") == [(2,)]
        assert s1.query("SELECT v FROM t WHERE id = 1") == [(99,)]

    def test_upgrade_deadlock_aborts_youngest(self, db, mgr):
        _seed(db)
        s1, s2 = mgr.connect(), mgr.connect()
        for s in (s1, s2):
            s.execute("BEGIN")
            s.query("SELECT COUNT(*) FROM t")  # both now hold S on t
        t1, box1 = run_thread(
            lambda: s1.execute("UPDATE t SET v = v + 1 WHERE id = 1")
        )
        t2, box2 = run_thread(
            lambda: s2.execute("UPDATE t SET v = v + 1 WHERE id = 2")
        )
        join_dead(t1)
        join_dead(t2)
        # both upgrades S->X can only proceed by aborting the youngest
        assert "error" not in box1
        assert isinstance(box2.get("error"), SerializationError)
        assert not s2.in_txn, "victim transaction must be rolled back"
        assert mgr.locks.held(s2.id) == []
        s1.execute("COMMIT")
        assert s1.query("SELECT v FROM t WHERE id = 1") == [(11,)]
        assert s1.query("SELECT v FROM t WHERE id = 2") == [(20,)]
        snap = db.metrics_snapshot()["sessions"]
        assert snap["lock_deadlocks"] == 1
        assert snap["aborts"] == 1

    def test_lock_timeout_aborts_whole_txn(self, db):
        mgr = SessionManager(db, SessionConfig(lock_timeout=0.02))
        _seed(db)
        s1, s2 = mgr.connect(), mgr.connect()
        s1.execute("BEGIN")
        s1.execute("UPDATE t SET v = 0 WHERE id = 1")
        s2.execute("BEGIN")
        with pytest.raises(LockTimeoutError):
            s2.execute("UPDATE t SET v = 1 WHERE id = 1")
        assert not s2.in_txn
        assert mgr.locks.held(s2.id) == []
        s1.execute("COMMIT")
        # the survivor's work went through untouched
        assert s1.query("SELECT v FROM t WHERE id = 1") == [(0,)]
        mgr.close()

    def test_ddl_serialises_against_open_txn(self, db):
        mgr = SessionManager(db, SessionConfig(lock_timeout=0.02))
        _seed(db)
        s1, s2 = mgr.connect(), mgr.connect()
        s1.execute("BEGIN")
        s1.query("SELECT COUNT(*) FROM t")  # holds catalog S to txn end
        with pytest.raises(LockTimeoutError):
            s2.execute("CREATE TABLE u (id INT PRIMARY KEY)")  # catalog X
        s1.execute("COMMIT")
        s2.execute("CREATE TABLE u (id INT PRIMARY KEY)")
        assert "u" in db.table_names()
        mgr.close()

    def test_busy_admission_and_release(self, db, mgr):
        sessions = [mgr.connect() for _ in range(4)]
        with pytest.raises(BusyError) as exc_info:
            mgr.connect()
        assert exc_info.value.retryable
        assert mgr.stats["busy_rejections"] == 1
        sessions[0].close()
        replacement = mgr.connect()  # freed slot is reusable
        assert replacement.id not in (s.id for s in sessions)

    def test_closed_session_refuses_statements(self, db, mgr):
        session = mgr.connect()
        session.close()
        session.close()  # idempotent
        with pytest.raises(SessionError):
            session.execute("SELECT 1")

    def test_close_with_open_txn_rolls_back(self, db, mgr):
        _seed(db)
        s1 = mgr.connect()
        s1.execute("BEGIN")
        s1.execute("DELETE FROM t WHERE id = 1")
        s1.close()
        s2 = mgr.connect()
        assert s2.query("SELECT COUNT(*) FROM t") == [(2,)]


class TestRetryPolicy:
    def test_autocommit_retries_with_seeded_backoff(self, db, mgr):
        _seed(db)
        session = mgr.connect()
        real_execute = mgr.execute
        failures = {"left": 2}

        def flaky(sess, sql):
            if failures["left"] > 0:
                failures["left"] -= 1
                raise LockTimeoutError("synthetic contention")
            return real_execute(sess, sql)

        mgr.execute = flaky
        sleeps = []
        session._sleep = sleeps.append
        assert session.query("SELECT COUNT(*) FROM t") == [(2,)]
        assert session.stats["retries"] == 2
        assert len(sleeps) == 2
        # jitter is seeded: the exact backoffs are reproducible, and each
        # is within [span/2, span] of the exponential schedule
        config = mgr.config
        for attempt, slept in enumerate(sleeps, start=1):
            span = min(
                config.backoff_cap, config.backoff_base * 2 ** (attempt - 1)
            )
            assert span * 0.5 <= slept <= span

    def test_retry_budget_exhausts(self, db, mgr):
        session = mgr.connect()
        mgr.execute = lambda sess, sql: (_ for _ in ()).throw(
            LockTimeoutError("always busy")
        )
        with pytest.raises(LockTimeoutError):
            session.execute("SELECT 1")
        assert session.stats["retries"] == mgr.config.max_retries

    def test_no_retry_inside_explicit_txn(self, db, mgr):
        _seed(db)
        session = mgr.connect()
        session.execute("BEGIN")
        real_execute = mgr.execute
        calls = {"n": 0}

        def fail_once(sess, sql):
            calls["n"] += 1
            raise SerializationError("deadlock victim")

        mgr.execute = fail_once
        with pytest.raises(SerializationError):
            session.execute("UPDATE t SET v = 0 WHERE id = 1")
        assert calls["n"] == 1, "in-txn statements must not auto-retry"
        assert session.stats["retries"] == 0
        mgr.execute = real_execute

    def test_statement_timeout_is_not_retryable(self, db):
        mgr = SessionManager(
            db, SessionConfig(statement_max_rows=5, max_retries=3)
        )
        _seed(db)
        db.execute(
            "INSERT INTO t VALUES (3,1),(4,1),(5,1),(6,1),(7,1),(8,1)"
        )
        session = mgr.connect()
        with pytest.raises(StatementTimeoutError) as exc_info:
            session.query("SELECT * FROM t")
        assert not exc_info.value.retryable
        assert session.stats["retries"] == 0
        assert mgr.stats["statement_timeouts"] == 1
        # the session survives and small statements still run
        assert session.query("SELECT v FROM t WHERE id = 1") == [(10,)]
        mgr.close()


class TestDegradation:
    def test_undo_failure_degrades_to_read_only(self, db, mgr):
        _seed(db)
        session = mgr.connect()
        session.execute("BEGIN")
        session.execute("INSERT INTO t VALUES (9, 90)")

        class BoomTable:
            name = "t"

            def insert(self, row):
                raise RuntimeError("heap write failed mid-undo")

        # poison the undo log: rolling back will fail partway
        session.txn._entries.append(
            UndoEntry("delete", BoomTable(), row=(99, 0))
        )
        with pytest.raises(TransactionError):
            session.execute("ROLLBACK")
        assert db.read_only, "partial undo must degrade the engine"
        assert session.txn.stats["undo_failures"] == 1
        assert db.metrics_snapshot()["txn"]["undo_failures"] == 1
        with pytest.raises(ReadOnlyError):
            db.execute("INSERT INTO t VALUES (10, 100)")

    def test_checkpoint_refuses_dirty_session_txn(self, tmp_path):
        db = Database(path=str(tmp_path / "ckpt_db"))
        mgr = SessionManager(db)
        _seed(db)
        session = mgr.connect()
        session.execute("BEGIN")
        session.execute("INSERT INTO t VALUES (3, 30)")
        with pytest.raises(TransactionError):
            db.checkpoint()  # no-steal: dirty session undo may not flush
        session.execute("COMMIT")
        db.checkpoint()
        mgr.close()
        db.close()

    def test_wal_scopes_keep_commit_groups_separate(self, tmp_path):
        path = str(tmp_path / "scoped_db")
        db = Database(path=path)
        mgr = SessionManager(db)
        db.execute("CREATE TABLE a (id INT PRIMARY KEY)")
        db.execute("CREATE TABLE b (id INT PRIMARY KEY)")
        s1, s2 = mgr.connect(), mgr.connect()
        s1.execute("BEGIN")
        s1.execute("INSERT INTO a VALUES (1)")
        s2.execute("BEGIN")
        s2.execute("INSERT INTO b VALUES (2)")
        s1.execute("COMMIT")  # must not drag s2's pending frames along
        s2.execute("ROLLBACK")
        mgr.close()
        db.close()
        reopened = Database(path=path)
        assert reopened.query("SELECT COUNT(*) FROM a") == [(1,)]
        assert reopened.query("SELECT COUNT(*) FROM b") == [(0,)]
        assert reopened.integrity_check().ok
        reopened.close()


class TestTelemetry:
    def test_statements_carry_session_and_cache_attribution(self, db, mgr):
        _seed(db)
        db.execute("GRANT SELECT ON t TO carol")
        session = mgr.connect("carol")
        session.query("SELECT v FROM t WHERE id = 1")
        session.query("SELECT v FROM t WHERE id = 1")
        records = [
            r for r in db.statement_log.records()
            if r.sql and r.sql.startswith("SELECT v FROM t")
        ]
        assert [r.session for r in records] == [session.id, session.id]
        assert [r.cache for r in records] == ["miss", "hit"]

    def test_sessions_table_joins_statements(self, db, mgr):
        _seed(db)
        db.execute("GRANT SELECT, UPDATE ON t TO dave")
        session = mgr.connect("dave")
        session.execute("BEGIN")
        session.execute("UPDATE t SET v = 0 WHERE id = 1")
        rows = db.query(
            "SELECT id, user_name, in_txn, locks FROM _sessions"
        )
        assert rows == [
            (session.id, "dave", 1, f"{CATALOG_RESOURCE}:S,t:X")
        ]
        joined = db.query(
            "SELECT s.user_name, COUNT(*) FROM _statements st "
            "JOIN _sessions s ON st.session = s.id GROUP BY s.user_name"
        )
        assert joined == [("dave", 2)]
        session.execute("COMMIT")

    def test_metrics_snapshot_sessions_section(self, db, mgr):
        session = mgr.connect()
        session.query("SELECT 1")
        snap = db.metrics_snapshot()["sessions"]
        assert snap["enabled"] == 1
        assert snap["active"] == 1
        assert snap["statements"] == 1
        assert snap["max_sessions"] == 4
        for key in ("lock_acquired", "lock_waits", "lock_deadlocks",
                    "lock_timeouts", "lock_upgrades"):
            assert key in snap

    def test_sessions_disabled_snapshot(self, db):
        assert db.metrics_snapshot()["sessions"] == {"enabled": 0}


# ---------------------------------------------------------------------------
# Wire protocol and server
# ---------------------------------------------------------------------------


class TestFrames:
    def test_roundtrip_and_eof(self):
        a, b = socket.socketpair()
        with a, b:
            send_frame(a, {"op": "ping", "n": 1})
            assert recv_frame(b) == {"op": "ping", "n": 1}
            a.close()
            assert recv_frame(b) is None  # clean EOF

    def test_oversized_frame_rejected(self):
        a, b = socket.socketpair()
        with a, b:
            a.sendall(FRAME_HEADER.pack(MAX_FRAME_BYTES + 1))
            with pytest.raises(ValueError):
                recv_frame(b)

    def test_torn_frame_raises(self):
        a, b = socket.socketpair()
        with a, b:
            a.sendall(FRAME_HEADER.pack(100) + b'{"op":')
            a.close()
            with pytest.raises(ConnectionError):
                recv_frame(b)


class TestServer:
    def test_execute_roundtrip(self):
        db = Database()
        with DatabaseServer(db, port=0) as server:
            host, port = server.address
            with RemoteSession(host, port, user="erin") as remote:
                remote.execute("CREATE TABLE r (id INT PRIMARY KEY, v INT)")
                result = remote.execute("INSERT INTO r VALUES (1, 5), (2, 6)")
                assert result.rowcount == 2
                assert remote.query("SELECT v FROM r WHERE id = 2") == [(6,)]
                assert remote.ping()
                metrics = remote.metrics()
                assert metrics["active"] == 1
                assert metrics["statements"] >= 3
        db.close()

    def test_error_frames_rebuild_exceptions(self):
        db = Database()
        with DatabaseServer(db, port=0) as server:
            host, port = server.address
            with RemoteSession(host, port) as remote:
                with pytest.raises(CatalogError):
                    remote.query("SELECT * FROM missing")
                # the connection survives an error frame
                assert remote.ping()
        db.close()

    def test_busy_server_refuses_with_retryable_frame(self):
        db = Database()
        config = SessionConfig(max_sessions=1)
        with DatabaseServer(db, port=0, config=config) as server:
            host, port = server.address
            with RemoteSession(host, port):
                with pytest.raises(BusyError) as exc_info:
                    RemoteSession(host, port, connect_retries=0)
                assert exc_info.value.retryable
        db.close()

    def test_connect_retry_after_slot_frees(self):
        db = Database()
        config = SessionConfig(max_sessions=1)
        with DatabaseServer(db, port=0, config=config) as server:
            host, port = server.address
            first = RemoteSession(host, port)

            def connect_patiently():
                # retries hello with backoff until the slot frees
                return RemoteSession(host, port, connect_retries=50, seed=3)

            thread, box = run_thread(connect_patiently)
            wait_until(
                lambda: server.manager.stats["busy_rejections"] >= 1
            )
            first.close()
            join_dead(thread)
            assert "error" not in box
            box["value"].close()
        db.close()
